"""DAO-level contracts behind the v1 write surface.

Per-record revisions (schema v3), idempotency receipts (stored verbatim,
never bumping the mutation counter) and the v3 migration of files
written by earlier schema generations.
"""

import sqlite3

import numpy as np
import pytest

from repro.registry.dao import (
    RECEIPT_PENDING,
    _SCHEMA_VERSION,
    InMemoryDAO,
    SqliteDAO,
)
from repro.registry.entities import PERecord, WorkflowRecord


@pytest.fixture(params=["memory", "sqlite"])
def dao(request, tmp_path):
    if request.param == "memory":
        return InMemoryDAO()
    return SqliteDAO(tmp_path / "reg.db")


def make_pe(name="p", code="def p(): pass", owners=(1,)) -> PERecord:
    return PERecord(
        pe_id=0,
        pe_name=name,
        description="d",
        pe_code=code,
        desc_embedding=np.ones(4, dtype=np.float32),
        owners=set(owners),
    )


class TestRevisions:
    def test_insert_starts_at_one_and_update_bumps(self, dao):
        record = dao.insert_pe(make_pe())
        assert record.revision == 1
        assert dao.get_pe(record.pe_id).revision == 1
        record.description = "changed"
        dao.update_pe(record)
        assert record.revision == 2
        assert dao.get_pe(record.pe_id).revision == 2
        dao.update_pe(record)
        assert dao.get_pe(record.pe_id).revision == 3

    def test_bulk_insert_sets_revision_one(self, dao):
        records = dao.insert_pes([make_pe(f"b{i}") for i in range(5)])
        assert all(r.revision == 1 for r in records)
        assert all(dao.get_pe(r.pe_id).revision == 1 for r in records)

    def test_bulk_insert_is_one_mutation_event(self, dao):
        before = dao.mutation_counter()
        dao.insert_pes([make_pe(f"m{i}") for i in range(7)])
        assert dao.mutation_counter() == before + 1

    def test_workflow_revisions(self, dao):
        record = dao.insert_workflow(
            WorkflowRecord(
                workflow_id=0,
                workflow_name="w",
                entry_point="w",
                description="",
                workflow_code="def w(): pass",
                owners={1},
            )
        )
        assert record.revision == 1
        record.description = "annotated"
        dao.update_workflow(record)
        assert dao.get_workflow(record.workflow_id).revision == 2


class TestReceipts:
    def test_round_trip_verbatim(self, dao):
        body = {"apiVersion": "v1", "op": "register", "items": [{"peId": 3}]}
        assert dao.get_write_receipt(1, "k") is None
        dao.save_write_receipt(1, "k", "fp-abc", 201, body)
        fingerprint, status, stored = dao.get_write_receipt(1, "k")
        assert (fingerprint, status) == ("fp-abc", 201)
        assert stored == body

    def test_receipts_scoped_per_user(self, dao):
        dao.save_write_receipt(1, "k", "fp1", 201, {"who": "one"})
        dao.save_write_receipt(2, "k", "fp2", 200, {"who": "two"})
        assert dao.get_write_receipt(1, "k")[2] == {"who": "one"}
        assert dao.get_write_receipt(2, "k")[2] == {"who": "two"}
        assert dao.get_write_receipt(3, "k") is None

    def test_saving_a_receipt_never_bumps_the_counter(self, dao):
        dao.insert_pe(make_pe())
        before = dao.mutation_counter()
        dao.save_write_receipt(1, "k", "fp", 200, {"removed": True})
        assert dao.mutation_counter() == before


class TestReceiptClaims:
    """The INSERT OR IGNORE claim protocol serializing multi-process writers."""

    def test_first_claim_wins(self, dao):
        assert dao.claim_write_receipt(1, "k", "fp", 10.0) is True
        assert dao.claim_write_receipt(1, "k", "fp", 11.0) is False

    def test_claim_leaves_a_pending_receipt(self, dao):
        dao.claim_write_receipt(1, "k", "fp", 10.0)
        fingerprint, status, body = dao.get_write_receipt(1, "k")
        assert fingerprint == "fp"
        assert status == RECEIPT_PENDING
        assert body == {}

    def test_release_frees_only_pending_claims(self, dao):
        dao.claim_write_receipt(1, "k", "fp", 10.0)
        dao.release_write_receipt(1, "k")
        assert dao.get_write_receipt(1, "k") is None
        assert dao.claim_write_receipt(1, "k", "fp", 12.0) is True
        # once finalized, release is a no-op — the receipt is durable
        dao.finalize_write_receipt(1, "k", "fp", 201, {"done": True}, 13.0)
        dao.release_write_receipt(1, "k")
        assert dao.get_write_receipt(1, "k")[1] == 201

    def test_finalize_overwrites_the_pending_row(self, dao):
        dao.claim_write_receipt(1, "k", "fp", 10.0)
        dao.finalize_write_receipt(1, "k", "fp", 201, {"peId": 9}, 11.0)
        fingerprint, status, body = dao.get_write_receipt(1, "k")
        assert (fingerprint, status, body) == ("fp", 201, {"peId": 9})

    def test_claims_scoped_per_user(self, dao):
        assert dao.claim_write_receipt(1, "k", "fp", 10.0) is True
        assert dao.claim_write_receipt(2, "k", "fp", 10.0) is True


class TestReceiptPruning:
    def _finalized(self, dao, key, created_at, user=1):
        dao.save_write_receipt(user, key, f"fp-{key}", 201, {"k": key}, created_at)

    def test_ttl_expires_old_receipts(self, dao):
        self._finalized(dao, "old", created_at=100.0)
        self._finalized(dao, "new", created_at=180.0)
        removed = dao.prune_write_receipts(200.0, ttl=50.0)
        assert removed == 1
        assert dao.get_write_receipt(1, "old") is None
        assert dao.get_write_receipt(1, "new") is not None

    def test_receipt_inside_window_survives(self, dao):
        self._finalized(dao, "fresh", created_at=199.0)
        assert dao.prune_write_receipts(200.0, ttl=50.0) == 0
        assert dao.get_write_receipt(1, "fresh") is not None

    def test_cap_keeps_the_newest(self, dao):
        for n in range(5):
            self._finalized(dao, f"k{n}", created_at=float(n))
        removed = dao.prune_write_receipts(100.0, cap=2)
        assert removed == 3
        assert dao.get_write_receipt(1, "k0") is None
        assert dao.get_write_receipt(1, "k2") is None
        assert dao.get_write_receipt(1, "k3") is not None
        assert dao.get_write_receipt(1, "k4") is not None

    def test_pending_claims_are_never_pruned(self, dao):
        dao.claim_write_receipt(1, "inflight", "fp", 0.0)
        self._finalized(dao, "done", created_at=0.0)
        dao.prune_write_receipts(1_000_000.0, ttl=1.0, cap=0)
        # the finalized receipt is gone, the in-flight claim survives
        assert dao.get_write_receipt(1, "done") is None
        assert dao.get_write_receipt(1, "inflight")[1] == RECEIPT_PENDING

    def test_no_limits_means_no_pruning(self, dao):
        self._finalized(dao, "ancient", created_at=0.0)
        assert dao.prune_write_receipts(1_000_000.0) == 0
        assert dao.get_write_receipt(1, "ancient") is not None

    def test_pre_v4_receipts_expire_first(self, dao):
        # receipts saved without a timestamp (migrated rows) stamp 0 —
        # the epoch — so any TTL retires them ahead of stamped ones
        dao.save_write_receipt(1, "legacy", "fp", 200, {"old": True})
        self._finalized(dao, "stamped", created_at=500.0)
        dao.prune_write_receipts(501.0, ttl=100.0)
        assert dao.get_write_receipt(1, "legacy") is None
        assert dao.get_write_receipt(1, "stamped") is not None


class TestMigrationToV3:
    """Files written at schema v2 gain revisions + the new tables."""

    @pytest.fixture()
    def v2_file(self, tmp_path):
        """A registry written by the v2-era code: join tables and the
        mutation counter exist, but no revision columns and none of the
        v3 tables."""
        path = tmp_path / "v2.db"
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE users (
                user_id INTEGER PRIMARY KEY AUTOINCREMENT,
                user_name TEXT UNIQUE NOT NULL,
                password_hash TEXT NOT NULL
            );
            CREATE TABLE pes (
                pe_id INTEGER PRIMARY KEY AUTOINCREMENT,
                pe_name TEXT NOT NULL,
                description TEXT NOT NULL DEFAULT '',
                description_origin TEXT NOT NULL DEFAULT 'user',
                pe_code TEXT NOT NULL,
                pe_source TEXT NOT NULL DEFAULT '',
                pe_imports TEXT NOT NULL DEFAULT '[]',
                code_embedding BLOB,
                desc_embedding BLOB,
                owners TEXT NOT NULL DEFAULT '[]'
            );
            CREATE TABLE workflows (
                workflow_id INTEGER PRIMARY KEY AUTOINCREMENT,
                workflow_name TEXT NOT NULL,
                entry_point TEXT NOT NULL,
                description TEXT NOT NULL DEFAULT '',
                workflow_code TEXT NOT NULL,
                workflow_source TEXT NOT NULL DEFAULT '',
                pe_ids TEXT NOT NULL DEFAULT '[]',
                desc_embedding BLOB,
                owners TEXT NOT NULL DEFAULT '[]'
            );
            CREATE TABLE pe_owners (
                pe_id INTEGER NOT NULL,
                user_id INTEGER NOT NULL,
                PRIMARY KEY (pe_id, user_id)
            ) WITHOUT ROWID;
            CREATE TABLE workflow_owners (
                workflow_id INTEGER NOT NULL,
                user_id INTEGER NOT NULL,
                PRIMARY KEY (workflow_id, user_id)
            ) WITHOUT ROWID;
            CREATE TABLE workflow_pes (
                workflow_id INTEGER NOT NULL,
                pe_id INTEGER NOT NULL,
                PRIMARY KEY (workflow_id, pe_id)
            ) WITHOUT ROWID;
            CREATE TABLE registry_meta (
                key TEXT PRIMARY KEY,
                value INTEGER NOT NULL
            ) WITHOUT ROWID;
            INSERT INTO registry_meta VALUES ('mutation_counter', 4);
            """
        )
        conn.execute(
            "INSERT INTO pes (pe_name, pe_code, owners) VALUES"
            " ('old', 'eA==', '[1]')"
        )
        conn.execute("INSERT INTO pe_owners VALUES (1, 1)")
        conn.execute("PRAGMA user_version = 2")
        conn.commit()
        conn.close()
        return path

    def test_v2_file_steps_up_and_keeps_data(self, v2_file):
        dao = SqliteDAO(v2_file)
        record = dao.get_pe(1)
        assert record is not None and record.pe_name == "old"
        assert record.revision == 1  # existing rows backfill at 1
        assert dao.mutation_counter() == 4  # counter survives
        record.description = "touched"
        dao.update_pe(record)
        assert dao.get_pe(1).revision == 2
        # the v3 tables exist and work
        dao.save_write_receipt(1, "k", "fp", 200, {"ok": True})
        assert dao.get_write_receipt(1, "k")[2] == {"ok": True}
        assert dao.load_ivf_states() == ({}, {})
        version = dao._conn.execute("PRAGMA user_version").fetchone()[0]
        assert version == _SCHEMA_VERSION

    def test_migration_is_idempotent_across_reopens(self, v2_file):
        SqliteDAO(v2_file).close()
        dao = SqliteDAO(v2_file)  # second open: no duplicate-column error
        assert dao.get_pe(1).revision == 1
