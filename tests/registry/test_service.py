"""Tests for the registry business rules (§3.1 ownership semantics)."""

import pytest

from repro.errors import (
    AuthenticationError,
    DuplicateError,
    NotFoundError,
    ValidationError,
)
from repro.registry import InMemoryDAO, RegistryService
from tests.registry.test_dao import make_pe, make_wf


@pytest.fixture()
def service():
    return RegistryService(InMemoryDAO())


@pytest.fixture()
def users(service):
    alice = service.register_user("alice", "pw-a")
    bob = service.register_user("bob", "pw-b")
    return alice, bob


class TestAuth:
    def test_register_and_authenticate(self, service):
        service.register_user("zz46", "password")
        user = service.authenticate("zz46", "password")
        assert user.user_name == "zz46"

    def test_password_stored_hashed(self, service):
        user = service.register_user("zz46", "password")
        assert user.password_hash != "password"

    def test_wrong_password_rejected(self, service):
        service.register_user("zz46", "password")
        with pytest.raises(AuthenticationError, match="invalid login"):
            service.authenticate("zz46", "wrong")

    def test_unknown_user_rejected(self, service):
        with pytest.raises(AuthenticationError):
            service.authenticate("ghost", "x")

    def test_duplicate_user_rejected(self, service):
        service.register_user("zz46", "a")
        with pytest.raises(DuplicateError, match="already exists"):
            service.register_user("zz46", "b")

    def test_empty_name_or_password_rejected(self, service):
        with pytest.raises(ValidationError):
            service.register_user("", "pw")
        with pytest.raises(ValidationError):
            service.register_user("x", "")


class TestPEOwnership:
    def test_add_and_get(self, service, users):
        alice, _ = users
        stored = service.add_pe(alice, make_pe("Prod"))
        assert service.get_pe_by_id(alice, stored.pe_id).pe_name == "Prod"
        assert service.get_pe_by_name(alice, "Prod").pe_id == stored.pe_id

    def test_reregistration_adds_owner_not_duplicate(self, service, users):
        """The §3.1 rule: same identity -> additional owner."""
        alice, bob = users
        first = service.add_pe(alice, make_pe("Shared", code="c2FtZQ=="))
        second = service.add_pe(bob, make_pe("Shared", code="c2FtZQ=="))
        assert first.pe_id == second.pe_id
        assert second.owners == {alice.user_id, bob.user_id}
        assert len(service.dao.all_pes()) == 1

    def test_same_name_different_code_is_new_entry(self, service, users):
        alice, _ = users
        first = service.add_pe(alice, make_pe("X", code="YWFh"))
        second = service.add_pe(alice, make_pe("X", code="YmJi"))
        assert first.pe_id != second.pe_id

    def test_privacy_other_users_pes_invisible(self, service, users):
        alice, bob = users
        stored = service.add_pe(alice, make_pe("Private"))
        with pytest.raises(NotFoundError):
            service.get_pe_by_id(bob, stored.pe_id)
        with pytest.raises(NotFoundError):
            service.get_pe_by_name(bob, "Private")
        assert service.user_pes(bob) == []

    def test_remove_dissociates_until_ownerless(self, service, users):
        alice, bob = users
        service.add_pe(alice, make_pe("Shared", code="c2FtZQ=="))
        stored = service.add_pe(bob, make_pe("Shared", code="c2FtZQ=="))
        service.remove_pe(alice, stored.pe_id)
        assert service.dao.get_pe(stored.pe_id) is not None  # bob still owns
        service.remove_pe(bob, stored.pe_id)
        assert service.dao.get_pe(stored.pe_id) is None  # gone

    def test_remove_by_name(self, service, users):
        alice, _ = users
        service.add_pe(alice, make_pe("Gone"))
        service.remove_pe_by_name(alice, "Gone")
        with pytest.raises(NotFoundError):
            service.get_pe_by_name(alice, "Gone")


class TestWorkflowOwnership:
    def test_add_and_get(self, service, users):
        alice, _ = users
        stored = service.add_workflow(alice, make_wf("isPrime"))
        assert service.get_workflow_by_name(alice, "isPrime").workflow_id == stored.workflow_id

    def test_dedup_by_identity(self, service, users):
        alice, bob = users
        first = service.add_workflow(alice, make_wf("wf", code="c2FtZQ=="))
        second = service.add_workflow(bob, make_wf("wf", code="c2FtZQ=="))
        assert first.workflow_id == second.workflow_id
        assert second.owners == {alice.user_id, bob.user_id}

    def test_privacy(self, service, users):
        alice, bob = users
        stored = service.add_workflow(alice, make_wf("secret"))
        with pytest.raises(NotFoundError):
            service.get_workflow_by_id(bob, stored.workflow_id)

    def test_remove_until_ownerless(self, service, users):
        alice, bob = users
        service.add_workflow(alice, make_wf("wf", code="c2FtZQ=="))
        stored = service.add_workflow(bob, make_wf("wf", code="c2FtZQ=="))
        service.remove_workflow_by_name(alice, "wf")
        assert service.dao.get_workflow(stored.workflow_id) is not None
        service.remove_workflow(bob, stored.workflow_id)
        assert service.dao.get_workflow(stored.workflow_id) is None


class TestAssociations:
    def test_link_pe_to_workflow(self, service, users):
        alice, _ = users
        pe = service.add_pe(alice, make_pe("P"))
        wf = service.add_workflow(alice, make_wf("W"))
        service.link_pe_to_workflow(alice, wf.workflow_id, pe.pe_id)
        pes = service.workflow_pes(alice, wf.workflow_id)
        assert [p.pe_name for p in pes] == ["P"]

    def test_link_is_idempotent(self, service, users):
        alice, _ = users
        pe = service.add_pe(alice, make_pe("P"))
        wf = service.add_workflow(alice, make_wf("W"))
        service.link_pe_to_workflow(alice, wf.workflow_id, pe.pe_id)
        linked = service.link_pe_to_workflow(alice, wf.workflow_id, pe.pe_id)
        assert linked.pe_ids == [pe.pe_id]

    def test_link_requires_owned_pe(self, service, users):
        alice, bob = users
        pe = service.add_pe(bob, make_pe("BobsPE"))
        wf = service.add_workflow(alice, make_wf("W"))
        with pytest.raises(NotFoundError):
            service.link_pe_to_workflow(alice, wf.workflow_id, pe.pe_id)

    def test_workflow_pes_by_name(self, service, users):
        alice, _ = users
        pe = service.add_pe(alice, make_pe("P"))
        service.add_workflow(alice, make_wf("W", pe_ids=[pe.pe_id]))
        assert [p.pe_id for p in service.workflow_pes_by_name(alice, "W")] == [pe.pe_id]

    def test_many_to_many_pe_in_two_workflows(self, service, users):
        alice, _ = users
        pe = service.add_pe(alice, make_pe("Shared"))
        wf1 = service.add_workflow(alice, make_wf("W1", code="YQ=="))
        wf2 = service.add_workflow(alice, make_wf("W2", code="Yg=="))
        service.link_pe_to_workflow(alice, wf1.workflow_id, pe.pe_id)
        service.link_pe_to_workflow(alice, wf2.workflow_id, pe.pe_id)
        assert service.workflow_pes(alice, wf1.workflow_id)[0].pe_id == pe.pe_id
        assert service.workflow_pes(alice, wf2.workflow_id)[0].pe_id == pe.pe_id
