"""Persisted index slabs: zero-rebuild cold start and freshness rules."""

import numpy as np

from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.service import RegistryService
from repro.search import KIND_CODE, KIND_DESC, KIND_WORKFLOW, VectorIndex
from tests.registry.test_dao import make_pe, make_wf

DIM = 8


def unit(rng):
    vec = rng.standard_normal(DIM).astype(np.float32)
    return vec / np.linalg.norm(vec)


class CallCountingDAO:
    """Transparent proxy counting full-corpus deserialization calls."""

    def __init__(self, inner):
        self.inner = inner
        self.all_pes_calls = 0
        self.all_workflows_calls = 0

    def __getattr__(self, name):
        attr = getattr(self.inner, name)
        if name == "all_pes":
            def wrapped(*a, **kw):
                self.all_pes_calls += 1
                return attr(*a, **kw)
            return wrapped
        if name == "all_workflows":
            def wrapped(*a, **kw):
                self.all_workflows_calls += 1
                return attr(*a, **kw)
            return wrapped
        return attr


def populate(dao, rng, n_pes=12, n_workflows=3):
    service = RegistryService(dao)
    alice = service.register_user("alice", "pw")
    bob = service.register_user("bob", "pw")
    for user, count in ((alice, n_pes), (bob, 4)):
        for i in range(count):
            service.add_pe(
                user,
                make_pe(
                    f"{user.user_name}PE{i}",
                    code=f"{user.user_name}:{i}".encode().hex(),
                    description=f"element {i} of {user.user_name}",
                    desc_embedding=unit(rng),
                    code_embedding=unit(rng),
                ),
            )
    for i in range(n_workflows):
        # make_wf does not plumb embeddings through; set them directly
        wf = make_wf(f"aliceFlow{i}", code=f"wf:{i}".encode().hex())
        wf.desc_embedding = unit(rng)
        service.add_workflow(alice, wf)
    return service, alice, bob


class TestSqliteColdStart:
    def test_warm_attach_skips_all_corpus_deserialization(self, tmp_path):
        rng = np.random.default_rng(11)
        path = tmp_path / "registry.db"
        service, alice, _ = populate(SqliteDAO(path), rng)
        first = service.attach_index(VectorIndex())
        assert first == "rebuilt"  # first boot pays the pass, persists
        service.dao.close()

        counted = CallCountingDAO(SqliteDAO(path))
        restarted = RegistryService(counted)
        mode = restarted.attach_index(VectorIndex())
        assert mode == "fresh"
        assert counted.all_pes_calls == 0
        assert counted.all_workflows_calls == 0

    def test_warm_attach_restores_identical_shards(self, tmp_path):
        rng = np.random.default_rng(12)
        path = tmp_path / "registry.db"
        service, alice, bob = populate(SqliteDAO(path), rng)
        cold = VectorIndex()
        service.attach_index(cold)
        service.dao.close()

        restarted = RegistryService(SqliteDAO(path))
        warm = VectorIndex()
        assert restarted.attach_index(warm) == "fresh"
        cold_shards = cold.export_shards()
        warm_shards = warm.export_shards()
        assert set(cold_shards) == set(warm_shards)
        for key in cold_shards:
            np.testing.assert_array_equal(
                cold_shards[key][0], warm_shards[key][0]
            )
            # bitwise: persisted vectors round-trip exactly
            assert np.array_equal(cold_shards[key][1], warm_shards[key][1])

    def test_warm_attach_serves_identical_results(self, tmp_path):
        rng = np.random.default_rng(13)
        path = tmp_path / "registry.db"
        service, alice, _ = populate(SqliteDAO(path), rng)
        cold = VectorIndex()
        service.attach_index(cold)
        query = unit(rng)
        owned = service.owned_pe_ids(alice)
        reference = cold.search_among(alice.user_id, KIND_DESC, owned, query, 5)
        service.dao.close()

        restarted = RegistryService(SqliteDAO(path))
        warm = VectorIndex()
        restarted.attach_index(warm)
        user = restarted.get_user("alice")
        got = warm.search_among(
            user.user_id, KIND_DESC, restarted.owned_pe_ids(user), query, 5
        )
        assert got is not None and reference is not None
        assert got[0] == reference[0]
        assert np.array_equal(got[1], reference[1])

    def test_journaled_mutation_keeps_snapshot_fresh(self, tmp_path):
        rng = np.random.default_rng(14)
        path = tmp_path / "registry.db"
        service, alice, _ = populate(SqliteDAO(path), rng)
        service.attach_index(VectorIndex())
        assert service.shard_persistence()["fresh"]
        # a post-persist write appends its rows to the delta journal
        # inline, so the persisted state tracks the live index without
        # a re-export — and the next cold start replays it
        service.add_pe(
            alice, make_pe("Late", code="bGF0ZQ==", desc_embedding=unit(rng))
        )
        report = service.shard_persistence()
        assert report["fresh"]
        assert report["journal"]["rows"] > 0
        service.dao.close()

        counted = CallCountingDAO(SqliteDAO(path))
        restarted = RegistryService(counted)
        index = VectorIndex()
        assert restarted.attach_index(index) == "fresh"
        assert counted.all_pes_calls == 0
        user = restarted.get_user("alice")
        late = restarted.get_pe_by_name(user, "Late")
        assert index.contains(user.user_id, KIND_DESC, late.pe_id)

    def test_journaled_remove_replays_on_attach(self, tmp_path):
        rng = np.random.default_rng(15)
        path = tmp_path / "registry.db"
        service, alice, _ = populate(SqliteDAO(path), rng)
        service.attach_index(VectorIndex())
        victim = service.user_pes(alice)[0]
        service.remove_pe(alice, victim.pe_id)
        assert service.shard_persistence()["fresh"]
        service.dao.close()

        restarted = RegistryService(SqliteDAO(path))
        index = VectorIndex()
        assert restarted.attach_index(index) == "fresh"
        user = restarted.get_user("alice")
        assert not index.contains(user.user_id, KIND_DESC, victim.pe_id)

    def test_attach_without_persist_leaves_no_snapshot(self, tmp_path):
        rng = np.random.default_rng(16)
        path = tmp_path / "registry.db"
        service, _, _ = populate(SqliteDAO(path), rng)
        assert service.attach_index(VectorIndex(), persist=False) == "rebuilt"
        assert service.dao.index_shards_meta()["counter"] is None
        service.dao.close()

        restarted = RegistryService(SqliteDAO(path))
        assert restarted.attach_index(VectorIndex(), persist=False) == "rebuilt"

    def test_persist_skipped_when_registry_mutates_mid_export(self, tmp_path):
        rng = np.random.default_rng(17)
        service, alice, _ = populate(SqliteDAO(tmp_path / "r.db"), rng)
        index = VectorIndex()
        service.attach_index(index, persist=False)

        real_export = index.export_shards

        def mutating_export(*a, **kw):
            service.add_pe(
                alice,
                make_pe("Race", code="cmFjZQ==", desc_embedding=unit(rng)),
            )
            return real_export(*a, **kw)

        index.export_shards = mutating_export
        assert service.persist_shards() is False
        assert service.dao.index_shards_meta()["counter"] is None
        index.export_shards = real_export
        assert service.persist_shards() is True
        assert service.shard_persistence()["fresh"]

    def test_foreign_write_never_stamped_fresh(self, tmp_path):
        """A write from another process (second DAO connection) between
        index sync and persist must block the save — the in-memory index
        never saw that record, so a snapshot stamped with the bumped
        counter would serve stale results as 'fresh' forever."""
        rng = np.random.default_rng(23)
        path = tmp_path / "registry.db"
        service, alice, _ = populate(SqliteDAO(path), rng)
        service.attach_index(VectorIndex(), persist=False)

        foreign = SqliteDAO(path)  # another process's connection
        foreign.insert_pe(
            make_pe(
                "Foreign",
                code="Zm9yZWlnbg==",
                desc_embedding=unit(rng),
                owners={alice.user_id},
            )
        )
        foreign.close()

        assert service.persist_shards() is False
        assert service.dao.index_shards_meta()["counter"] is None

    def test_corrupt_vector_blob_forces_rebuild(self, tmp_path):
        """A truncated vectors blob must be ignored (rebuild), not crash
        attach with a reshape error."""
        rng = np.random.default_rng(24)
        path = tmp_path / "registry.db"
        service, _, _ = populate(SqliteDAO(path), rng)
        service.attach_index(VectorIndex())
        service.dao._conn.execute(
            "UPDATE index_shards SET vectors = X'00112233'"
        )
        service.dao._conn.commit()
        shards, discarded = service.dao.load_index_shards()
        assert shards == {} and discarded > 0
        service.dao.close()
        restarted = RegistryService(SqliteDAO(path))
        assert restarted.attach_index(VectorIndex()) == "rebuilt"

    def test_torn_snapshot_is_ignored(self, tmp_path):
        rng = np.random.default_rng(18)
        path = tmp_path / "registry.db"
        service, _, _ = populate(SqliteDAO(path), rng)
        service.attach_index(VectorIndex())
        # simulate a crash mid-save: code rows stamped past their shard
        service.dao._conn.execute(
            "UPDATE index_shards SET mutation_counter = mutation_counter + 1"
            " WHERE kind = ?",
            (KIND_CODE,),
        )
        service.dao._conn.commit()
        shards, discarded = service.dao.load_index_shards()
        assert discarded == 0  # every row still decodes
        service.dao.close()
        counted = CallCountingDAO(SqliteDAO(path))
        restarted = RegistryService(counted)
        # only the torn code shards (tip ≠ stamp) rebuild; desc and
        # workflow slabs replay untouched
        assert restarted.attach_index(VectorIndex()) == "partial"
        assert counted.all_pes_calls == 0

    def test_schema_v1_file_migrates_and_rebuilds(self, tmp_path):
        # a pre-v2 file has no slab tables; opening it must create them
        # at version 2 and the first attach must rebuild + persist
        import sqlite3

        path = tmp_path / "old.db"
        dao = SqliteDAO(path)
        dao.close()
        conn = sqlite3.connect(path)
        conn.executescript(
            "DROP TABLE index_shards; DROP TABLE registry_meta;"
            "PRAGMA user_version = 1;"
        )
        conn.close()
        reopened = SqliteDAO(path)
        assert reopened.mutation_counter() == 0
        rng = np.random.default_rng(19)
        service, _, _ = populate(reopened, rng)
        assert service.attach_index(VectorIndex()) == "rebuilt"
        assert service.shard_persistence()["fresh"]


class TestInMemoryCounter:
    def test_counter_tracks_every_write(self):
        dao = InMemoryDAO()
        service = RegistryService(dao)
        alice = service.register_user("alice", "pw")
        assert dao.mutation_counter() == 0  # users don't stale shards
        rng = np.random.default_rng(20)
        record = make_pe("A", desc_embedding=unit(rng))
        service.add_pe(alice, record)
        after_add = dao.mutation_counter()
        assert after_add > 0
        service.remove_pe(alice, record.pe_id)
        assert dao.mutation_counter() > after_add

    def test_snapshot_roundtrip_and_freshness(self):
        dao = InMemoryDAO()
        service = RegistryService(dao)
        alice = service.register_user("alice", "pw")
        rng = np.random.default_rng(21)
        for i in range(5):
            service.add_pe(
                alice,
                make_pe(
                    f"PE{i}",
                    code=f"c{i}".encode().hex(),
                    desc_embedding=unit(rng),
                ),
            )
        index = VectorIndex()
        assert service.attach_index(index) == "rebuilt"
        assert service.shard_persistence()["fresh"]
        # a second service over the same live DAO attaches fresh
        twin = RegistryService(dao)
        assert twin.attach_index(VectorIndex()) == "fresh"

    def test_workflow_shards_roundtrip(self):
        dao = InMemoryDAO()
        service = RegistryService(dao)
        alice = service.register_user("alice", "pw")
        rng = np.random.default_rng(22)
        wf = make_wf("flow")
        wf.desc_embedding = unit(rng)
        service.add_workflow(alice, wf)
        service.attach_index(VectorIndex())
        twin = RegistryService(dao)
        index = VectorIndex()
        assert twin.attach_index(index) == "fresh"
        assert index.contains(alice.user_id, KIND_WORKFLOW, wf.workflow_id)
