"""Persisted HNSW graph state: warm restores, stale/torn rejection.

The HNSW backend's graph (per-row level assignment + base-layer
adjacency) persists next to the slab snapshot in its own state store
(``hnsw_states``), each shard stamped with the same per-shard
mutation stamp its slab carries (``RegistryService.persist_shards``
saves every companion; ``attach_approx_backend`` routes the restore by
the backend's ``state_store``).  A warm cold start then skips the
O(N²) lazy graph build entirely; any mismatch — registry mutated since
the stamp (stale) or a torn/corrupt row from a crash mid-save —
discards exactly that shard's graph, which is always correct (it
rebuilds lazily).
"""

import numpy as np
import pytest

from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.entities import PERecord
from repro.registry.service import RegistryService
from repro.search.backend import HNSWBackend, IVFFlatBackend
from repro.search.index import KIND_DESC, VectorIndex

N = 200
DIM = 32
HNSW_OPTS = dict(m=8, m0=24, ef_search=4, min_build_rows=16)


def unit(rng) -> np.ndarray:
    vec = rng.standard_normal(DIM).astype(np.float32)
    return vec / np.linalg.norm(vec)


def populate(service: RegistryService, user, n: int = N) -> None:
    rng = np.random.default_rng(7)
    records = [
        PERecord(
            pe_id=0,
            pe_name=f"pe{i}",
            description=f"element {i}",
            pe_code=f"def pe{i}(): pass",
            desc_embedding=unit(rng),
            code_embedding=unit(rng),
        )
        for i in range(n)
    ]
    service.register_pes_bulk(user, records)


@pytest.fixture()
def stack(tmp_path):
    """A populated SQLite registry with a built HNSW backend."""
    path = tmp_path / "reg.db"
    dao = SqliteDAO(path)
    service = RegistryService(dao, index=VectorIndex())
    user = service.register_user("u", "p")
    populate(service, user)
    hnsw = HNSWBackend(service.index, **HNSW_OPTS)
    assert service.attach_approx_backend(hnsw) == "untrained"
    return path, dao, service, user, hnsw


def reopen(path, *, attach_hnsw: bool = True):
    dao = SqliteDAO(path)
    service = RegistryService(dao)
    mode = service.attach_index(VectorIndex(), persist=False)
    hnsw = HNSWBackend(service.index, **HNSW_OPTS)
    state = service.attach_approx_backend(hnsw) if attach_hnsw else None
    return dao, service, hnsw, mode, state


class TestWarmRestore:
    def test_restored_backend_skips_build_and_matches(self, stack):
        path, dao, service, user, hnsw = stack
        rng = np.random.default_rng(11)
        query = unit(rng)
        first = hnsw.search(user.user_id, KIND_DESC, query, k=5)
        assert hnsw.builds == 1 and hnsw.approx_queries == 1
        assert service.persist_shards() is True
        stamps, states = dao.load_hnsw_states()
        assert states
        assert set(stamps.values()) == {dao.mutation_counter()}

        dao2, service2, hnsw2, mode, state = reopen(path)
        assert mode == "fresh"
        assert state == "restored"
        second = hnsw2.search(user.user_id, KIND_DESC, query, k=5)
        # zero graph rebuilds on the warm path, and the restored graph
        # reproduces the original route-and-expand result exactly
        assert hnsw2.builds == 0 and hnsw2.approx_queries == 1
        assert second[0] == first[0]
        assert np.array_equal(second[1], first[1])

    def test_stats_report_restored_entries(self, stack):
        path, dao, service, user, hnsw = stack
        hnsw.search(
            user.user_id, KIND_DESC, unit(np.random.default_rng(3)), k=5
        )
        service.persist_shards()
        _, _, hnsw2, _, state = reopen(path)
        assert state == "restored"
        shard_stats = hnsw2.stats()[f"{user.user_id}/{KIND_DESC}"]
        assert shard_stats["hnswEntries"] > 0

    def test_states_live_in_their_own_store(self, stack):
        """The HNSW snapshot never clobbers (or reads) the IVF one."""
        path, dao, service, user, hnsw = stack
        ivf = IVFFlatBackend(
            service.index, nlist=8, nprobe=2, min_train_rows=16
        )
        assert service.attach_approx_backend(ivf) == "untrained"
        query = unit(np.random.default_rng(21))
        hnsw.search(user.user_id, KIND_DESC, query, k=5)
        ivf.search(user.user_id, KIND_DESC, query, k=5)
        assert service.persist_shards() is True
        assert dao.load_hnsw_states()[1]
        assert dao.load_ivf_states()[1]
        dao2, service2, hnsw2, mode, state = reopen(path)
        assert state == "restored"
        ivf2 = IVFFlatBackend(
            service2.index, nlist=8, nprobe=2, min_train_rows=16
        )
        assert service2.attach_approx_backend(ivf2) == "restored"
        assert hnsw2.builds == 0 and ivf2.trainings == 0


class TestStaleAndTorn:
    def test_mutation_after_persist_marks_stale(self, stack):
        path, dao, service, user, hnsw = stack
        hnsw.search(
            user.user_id, KIND_DESC, unit(np.random.default_rng(5)), k=5
        )
        assert service.persist_shards() is True
        # one more write lands after the snapshot
        service.add_pe(
            user,
            PERecord(
                pe_id=0,
                pe_name="late",
                description="late arrival",
                pe_code="def late(): pass",
                desc_embedding=unit(np.random.default_rng(6)),
            ),
        )
        dao2, service2, hnsw2, mode, state = reopen(path)
        # the delta journal carried the late write, so the slab itself
        # replays fresh — but the graph state was stamped before it
        assert mode == "fresh"
        assert state == "stale"
        # the stale graph never serves: the next query rebuilds
        hnsw2.search(
            user.user_id, KIND_DESC, unit(np.random.default_rng(8)), k=5
        )
        assert hnsw2.builds == 1

    def test_torn_snapshot_is_ignored(self, stack):
        import sqlite3

        path, dao, service, user, hnsw = stack
        rng = np.random.default_rng(9)
        # build two shard graphs so the snapshot holds two rows
        from repro.search.index import KIND_CODE

        hnsw.search(user.user_id, KIND_DESC, unit(rng), k=5)
        hnsw.search(user.user_id, KIND_CODE, unit(rng), k=5)
        assert service.persist_shards() is True
        dao.close()
        conn = sqlite3.connect(path)
        assert (
            conn.execute("SELECT COUNT(*) FROM hnsw_states").fetchone()[0]
            == 2
        )
        conn.execute(
            "UPDATE hnsw_states SET mutation_counter = mutation_counter + 1"
            " WHERE kind = ?",
            (KIND_CODE,),
        )
        conn.commit()
        conn.close()
        dao2, service2, hnsw2, mode, state = reopen(path)
        stamps, states = dao2.load_hnsw_states()
        assert len(states) == 2  # both rows still decode
        assert mode == "fresh"  # the slab snapshot itself is intact
        # per-shard stamps: only the overwritten code row is torn; the
        # intact desc graph still restores
        assert state == "restored"
        hnsw2.search(
            user.user_id, KIND_DESC, unit(np.random.default_rng(12)), k=5
        )
        assert hnsw2.builds == 0  # desc serves from the restored graph
        hnsw2.search(
            user.user_id, KIND_CODE, unit(np.random.default_rng(13)), k=5
        )
        assert hnsw2.builds == 1  # the torn code shard rebuilds lazily

    def test_corrupt_blob_forces_rebuild(self, stack):
        import sqlite3

        path, dao, service, user, hnsw = stack
        hnsw.search(
            user.user_id, KIND_DESC, unit(np.random.default_rng(4)), k=5
        )
        assert service.persist_shards() is True
        dao.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE hnsw_states SET neighbors = X'00'")
        conn.commit()
        conn.close()
        dao2, _, _, _, state = reopen(path)
        assert dao2.load_hnsw_states() == ({}, {})
        assert state == "untrained"


class TestInMemoryRoundTrip:
    def test_states_round_trip_through_inmemory_dao(self):
        dao = InMemoryDAO()
        service = RegistryService(dao, index=VectorIndex())
        user = service.register_user("m", "p")
        populate(service, user, n=64)
        hnsw = HNSWBackend(service.index, **HNSW_OPTS)
        service.attach_approx_backend(hnsw)
        hnsw.search(
            user.user_id, KIND_DESC, unit(np.random.default_rng(0)), k=5
        )
        assert service.persist_shards() is True
        stamps, states = dao.load_hnsw_states()
        assert set(stamps.values()) == {dao.mutation_counter()}
        exported = hnsw.export_states()
        assert set(states) == set(exported)
        for key in exported:
            assert np.array_equal(states[key][0], exported[key][0])
            assert np.array_equal(states[key][1], exported[key][1])


class TestServerColdStart:
    def test_laminar_server_restores_hnsw_on_startup(
        self, tmp_path, fast_bundle
    ):
        from repro.net.transport import Request
        from repro.server import LaminarServer

        path = tmp_path / "server.db"
        options = {"hnsw": {"m": 4, "m0": 8, "min_build_rows": 8}}
        server1 = LaminarServer(
            dao=SqliteDAO(path), models=fast_bundle, backend_options=options
        )
        server1.dispatch(
            Request("POST", "/auth/register", {"userName": "s", "password": "p"})
        )
        token = server1.dispatch(
            Request("POST", "/auth/login", {"userName": "s", "password": "p"})
        ).body["token"]
        items = [
            {"peName": f"cold{i}", "peCode": f"def cold{i}(): pass",
             "description": f"cold start element {i}"}
            for i in range(12)
        ]
        server1.dispatch(
            Request(
                "POST", "/v1/registry/s/pes:bulk", {"items": items}, token=token
            )
        )
        search_body = {
            "query": "cold start element", "queryType": "semantic",
            "kind": "pe", "k": 3, "backend": "hnsw",
        }
        first = server1.dispatch(
            Request("POST", "/v1/registry/s/search", search_body, token=token)
        )
        assert first.status == 200
        assert server1.backends["hnsw"].builds >= 1
        assert server1.registry.persist_shards() is True

        server2 = LaminarServer(
            dao=SqliteDAO(path), models=fast_bundle, backend_options=options
        )
        assert server2.backends["hnsw"]._states  # restored, not lazy
        token2 = server2.dispatch(
            Request("POST", "/auth/login", {"userName": "s", "password": "p"})
        ).body["token"]
        second = server2.dispatch(
            Request("POST", "/v1/registry/s/search", search_body, token=token2)
        )
        assert second.status == 200
        assert server2.backends["hnsw"].builds == 0  # warm: no rebuild
        assert second.body["hits"] == first.body["hits"]
