"""SQL-side text-search candidate filtering: parity and scoping.

The DAO's ``*_owned_by_matching`` queries must return a *superset* of
every record the Python scorer would match — extra candidates are fine
(the scorer drops them), missing ones are a correctness bug — while
never crossing tenant boundaries.  The endpoint-level tests assert the
final hits are exactly the historical full-scan results.
"""

import pytest

from repro.net.transport import Request
from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.service import RegistryService
from repro.search.text_search import (
    candidate_patterns,
    text_search_pes,
    text_search_workflows,
)
from repro.server import LaminarServer
from tests.registry.test_dao import make_pe, make_wf

#: names/descriptions exercising camelCase, snake_case, hyphens, LIKE
#: metacharacters, unicode and lookalike cross-matches
CORPUS = [
    ("isPrime", "checks whether numbers are prime"),
    ("VoTableReader", "reads a vo-table from disk"),
    ("read_ra_dec", "parse right-ascension and declination"),
    ("Percent%Escape", "literal percent_sign and under_score"),
    ("CaféReader", "reads café menus"),
    ("Plain", "nothing remarkable"),
    ("primality", "prime-adjacent naming"),
]

QUERIES = [
    "prime",
    "isPrime",
    "is prime",
    "vo table",
    "VoTable",
    "ra dec",
    "percent%",
    "under_score",
    "café",
    "zzz-no-match",
    "%",
    "   ",
    "e is p",  # substring only of the *normalized* expansion
]


def fill(dao):
    service = RegistryService(dao)
    alice = service.register_user("alice", "pw")
    bob = service.register_user("bob", "pw")
    for i, (name, description) in enumerate(CORPUS):
        service.add_pe(
            alice,
            make_pe(name, code=f"a{i}".encode().hex(), description=description),
        )
        wf = make_wf(
            f"{name}Flow", code=f"w{i}".encode().hex(), description=description
        )
        service.add_workflow(alice, wf)
    # bob's records must never appear in alice's candidates
    service.add_pe(
        bob, make_pe("primeBob", code="Ym9i".encode().hex(),
                     description="bob's prime element")
    )
    return service, alice, bob


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    dao = (
        InMemoryDAO()
        if request.param == "memory"
        else SqliteDAO(tmp_path / "text.db")
    )
    return fill(dao)


class TestCandidateSuperset:
    @pytest.mark.parametrize("query", QUERIES)
    def test_pe_candidates_cover_all_scorer_matches(self, backend, query):
        service, alice, _ = backend
        full = service.dao.pes_owned_by(alice.user_id)
        expected = text_search_pes(query, full)
        candidates = service.text_candidate_pes(alice, query)
        got = text_search_pes(query, candidates)
        assert [m.to_json() for m in got] == [m.to_json() for m in expected]

    @pytest.mark.parametrize("query", QUERIES)
    def test_workflow_candidates_cover_all_scorer_matches(self, backend, query):
        service, alice, _ = backend
        full = service.dao.workflows_owned_by(alice.user_id)
        expected = text_search_workflows(query, full)
        candidates = service.text_candidate_workflows(alice, query)
        got = text_search_workflows(query, candidates)
        assert [m.to_json() for m in got] == [m.to_json() for m in expected]

    def test_candidates_stay_owner_scoped(self, backend):
        service, alice, bob = backend
        for query in ("prime", "bob"):
            names = {
                pe.pe_name for pe in service.text_candidate_pes(alice, query)
            }
            assert "primeBob" not in names

    def test_filter_reduces_materialization(self, backend):
        service, alice, _ = backend
        candidates = service.text_candidate_pes(alice, "prime")
        assert len(candidates) < len(service.dao.pes_owned_by(alice.user_id))
        assert {pe.pe_name for pe in candidates} >= {"isPrime", "primality"}

    def test_unfilterable_query_falls_back_to_full_listing(self, backend):
        service, alice, _ = backend
        assert candidate_patterns("///") is None
        full = service.dao.pes_owned_by(alice.user_id)
        got = service.text_candidate_pes(alice, "///")
        assert [pe.pe_id for pe in got] == [pe.pe_id for pe in full]


class TestPatternCap:
    """The 64-pattern LIKE cap is gone: oversized pattern sets now
    filter through chunked OR groups (``SqliteDAO._LIKE_CHUNK``)
    instead of silently degrading to the full owned listing."""

    def test_oversized_pattern_set_still_filters(self, backend):
        service, alice, _ = backend
        query = " ".join(f"word{i}" for i in range(100))
        patterns = candidate_patterns(query)
        assert patterns is not None and len(patterns) > 64
        got = service.dao.pes_owned_by_matching(alice.user_id, patterns)
        # none of the junk tokens occur in the corpus: the chunked
        # filter must prove that, not hand back everything
        assert got == []

    def test_oversized_pattern_set_keeps_matches(self, backend):
        service, alice, _ = backend
        query = " ".join(f"word{i}" for i in range(100)) + " prime"
        patterns = candidate_patterns(query)
        assert patterns is not None and len(patterns) > 64
        got = service.dao.pes_owned_by_matching(alice.user_id, patterns)
        names = {pe.pe_name for pe in got}
        # the one real token must survive whichever chunk it lands in
        assert names >= {"isPrime", "primality"}
        assert len(got) < len(service.dao.pes_owned_by(alice.user_id))


class TestEndpointParity:
    @pytest.fixture()
    def server(self, fast_bundle):
        server = LaminarServer(models=fast_bundle)
        for user in ("alice", "bob"):
            server.dispatch(
                Request(
                    "POST",
                    "/auth/register",
                    {"userName": user, "password": "pw"},
                )
            )
        token = server.dispatch(
            Request(
                "POST",
                "/auth/login",
                {"userName": "alice", "password": "pw"},
            )
        ).body["token"]
        alice = server.registry.get_user("alice")
        for i, (name, description) in enumerate(CORPUS):
            server.registry.add_pe(
                alice,
                make_pe(
                    name, code=f"a{i}".encode().hex(), description=description
                ),
            )
            server.registry.add_workflow(
                alice,
                make_wf(
                    f"{name}Flow",
                    code=f"w{i}".encode().hex(),
                    description=description,
                ),
            )
        return server, alice, token

    @pytest.mark.parametrize("search_type", ["workflow", "both"])
    @pytest.mark.parametrize("query", ["prime", "vo table", "nothing"])
    def test_text_endpoint_matches_full_scan(self, server, search_type, query):
        app, alice, token = server
        response = app.dispatch(
            Request(
                "GET",
                f"/registry/alice/search/{query}/type/{search_type}",
                {"queryType": "text"},
                token=token,
            )
        )
        assert response.status == 200
        expected = []
        if search_type == "both":
            expected += text_search_pes(query, app.registry.user_pes(alice))
        expected += text_search_workflows(
            query, app.registry.user_workflows(alice)
        )
        if search_type == "both":
            expected.sort(key=lambda m: (-m.score, m.kind, m.entity_id))
        assert response.body["hits"] == [m.to_json() for m in expected]
