"""Delta-journal integrity: torn chains, crash artifacts, foreign writers.

Every failure mode a journaled registry can wake up to — a chain whose
counters stopped increasing (crash mid-compaction), a truncated journal
row (torn WAL page), a stamp the journal never saw (foreign-process
writer on the same file) — must discard and rebuild exactly the
affected shard.  The other tenants' slabs replay untouched, with zero
full-corpus deserialization.  Both DAOs enforce the same contract.
"""

import numpy as np
import pytest

from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.service import RegistryService
from repro.search import KIND_CODE, KIND_DESC, VectorIndex
from tests.registry.test_dao import make_pe

DIM = 8


def unit(rng):
    vec = rng.standard_normal(DIM).astype(np.float32)
    return vec / np.linalg.norm(vec)


class RecordingDAO:
    """Transparent proxy recording per-owner and full-corpus loads."""

    def __init__(self, inner):
        self.inner = inner
        self.all_pes_calls = 0
        self.all_workflows_calls = 0
        self.pes_owned_by_users = []

    def __getattr__(self, name):
        attr = getattr(self.inner, name)
        if name == "all_pes":
            def wrapped(*a, **kw):
                self.all_pes_calls += 1
                return attr(*a, **kw)
            return wrapped
        if name == "all_workflows":
            def wrapped(*a, **kw):
                self.all_workflows_calls += 1
                return attr(*a, **kw)
            return wrapped
        if name == "pes_owned_by":
            def wrapped(user_id, *a, **kw):
                self.pes_owned_by_users.append(int(user_id))
                return attr(user_id, *a, **kw)
            return wrapped
        return attr


@pytest.fixture(params=["inmemory", "sqlite"])
def dao_factory(request, tmp_path):
    """Reopenable DAO constructor: same backing store on every call."""
    if request.param == "inmemory":
        dao = InMemoryDAO()
        return lambda: dao
    path = tmp_path / "registry.db"
    return lambda: SqliteDAO(path)


def build(dao_factory, rng, n=6):
    """A journaling service over two users' populated shards."""
    service = RegistryService(dao_factory())
    alice = service.register_user("alice", "pw")
    bob = service.register_user("bob", "pw")
    service.attach_index(VectorIndex())
    for user in (alice, bob):
        for i in range(n):
            service.add_pe(
                user,
                make_pe(
                    f"{user.user_name}PE{i}",
                    code=f"{user.user_name}:{i}".encode().hex(),
                    description=f"element {i}",
                    desc_embedding=unit(rng),
                    code_embedding=unit(rng),
                ),
            )
    assert service.shard_persistence()["fresh"]
    return service, alice, bob


def reattach(dao_factory):
    counted = RecordingDAO(dao_factory())
    restarted = RegistryService(counted)
    index = VectorIndex()
    mode = restarted.attach_index(index)
    return restarted, counted, index, mode


class TestTornChains:
    def test_non_increasing_chain_rebuilds_only_that_shard(
        self, dao_factory
    ):
        """Crash mid-compaction leaves a base slab stamped *past* part
        of its chain: replay refuses the non-increasing counters and
        rebuilds that shard alone."""
        rng = np.random.default_rng(31)
        service, alice, bob = build(dao_factory, rng)
        # an orphaned pre-compaction delta: counter below the chain tip
        service.dao.append_index_delta(
            alice.user_id, KIND_DESC, "add",
            np.array([1], dtype=np.int64),
            unit(rng).reshape(1, -1),
            counter=1,
        )
        if hasattr(service.dao, "close"):
            service.dao.close()

        fresh_dao = dao_factory()
        shards, discarded = fresh_dao.load_index_shards()
        assert discarded == 1
        assert (alice.user_id, KIND_DESC) not in shards
        assert (alice.user_id, KIND_CODE) in shards
        assert (bob.user_id, KIND_DESC) in shards
        if hasattr(fresh_dao, "close"):
            fresh_dao.close()

        restarted, counted, index, mode = reattach(dao_factory)
        assert mode == "partial"
        assert counted.all_pes_calls == 0
        assert counted.pes_owned_by_users == [alice.user_id]
        # the rebuilt shard serves every record again
        user = restarted.get_user("alice")
        for record in restarted.user_pes(user):
            assert index.contains(user.user_id, KIND_DESC, record.pe_id)

    def test_partial_journal_row_rebuilds_only_that_shard(self, tmp_path):
        """A truncated delta blob (torn WAL page) poisons one chain."""
        rng = np.random.default_rng(32)
        path = tmp_path / "registry.db"
        factory = lambda: SqliteDAO(path)
        service, alice, bob = build(factory, rng)
        service.dao._conn.execute(
            "UPDATE index_deltas SET vectors = X'0011'"
            " WHERE user_id = ? AND kind = ?",
            (alice.user_id, KIND_CODE),
        )
        service.dao._conn.commit()
        service.dao.close()

        shards, discarded = factory().load_index_shards()
        assert discarded == 1
        assert (alice.user_id, KIND_CODE) not in shards
        assert (alice.user_id, KIND_DESC) in shards

        restarted, counted, index, mode = reattach(factory)
        assert mode == "partial"
        assert counted.all_pes_calls == 0
        assert counted.pes_owned_by_users == [alice.user_id]
        user = restarted.get_user("alice")
        for record in restarted.user_pes(user):
            assert index.contains(user.user_id, KIND_CODE, record.pe_id)

    def test_stamp_past_chain_tip_rebuilds_only_that_shard(self, tmp_path):
        """A stamp the journal never reached (counter bumped, append
        lost in a crash) marks exactly that shard stale."""
        rng = np.random.default_rng(33)
        path = tmp_path / "registry.db"
        factory = lambda: SqliteDAO(path)
        service, alice, bob = build(factory, rng)
        service.dao._conn.execute(
            "UPDATE shard_stamps SET mutation_counter = mutation_counter + 1"
            " WHERE user_id = ? AND kind = ?",
            (bob.user_id, KIND_DESC),
        )
        service.dao._conn.commit()
        service.dao.close()

        shards, discarded = factory().load_index_shards()
        assert discarded == 0  # the chain itself replays fine

        restarted, counted, index, mode = reattach(factory)
        assert mode == "partial"
        assert counted.all_pes_calls == 0
        assert counted.pes_owned_by_users == [bob.user_id]


class TestForeignWriters:
    def test_unjournaled_writer_stales_only_its_shards(self, dao_factory):
        """A second service over the same store with *no* index attached
        stamps shards without journaling — the cold start must treat
        exactly those shards as stale."""
        rng = np.random.default_rng(34)
        service, alice, bob = build(dao_factory, rng)
        foreign = RegistryService(dao_factory())  # no attach: no journal
        foreign_user = foreign.get_user("bob")
        foreign.add_pe(
            foreign_user,
            make_pe(
                "Foreign",
                code="Zm9yZWlnbg==",
                description="landed behind the journal's back",
                desc_embedding=unit(rng),
            ),
        )
        if hasattr(service.dao, "close"):
            service.dao.close()
            foreign.dao.close()

        restarted, counted, index, mode = reattach(dao_factory)
        assert mode == "partial"
        assert counted.all_pes_calls == 0
        assert counted.pes_owned_by_users == [bob.user_id]
        user = restarted.get_user("bob")
        landed = restarted.get_pe_by_name(user, "Foreign")
        assert index.contains(user.user_id, KIND_DESC, landed.pe_id)
        # alice's untouched slabs replayed bitwise from the journal
        cold = RegistryService(dao_factory())
        reference = VectorIndex()
        cold._rebuild_full(reference)
        got = index.export_shards()
        want = reference.export_shards()
        assert set(got) == set(want)
        for key in want:
            np.testing.assert_array_equal(got[key][0], want[key][0])
            assert np.array_equal(got[key][1], want[key][1])

    def test_cross_process_wal_interleaving(self, tmp_path):
        """Writes from two live connections on one WAL file interleave;
        the journaling service's shards stay fresh, the foreign
        connection's stamps force a rebuild of its shards only."""
        rng = np.random.default_rng(35)
        path = tmp_path / "registry.db"
        factory = lambda: SqliteDAO(path)
        service, alice, bob = build(factory, rng)
        foreign = SqliteDAO(path)  # another process's connection
        for i in range(3):
            foreign.insert_pe(
                make_pe(
                    f"Foreign{i}",
                    code=f"foreign:{i}".encode().hex(),
                    description=f"foreign write {i}",
                    desc_embedding=unit(rng),
                    owners={bob.user_id},
                )
            )
            # the journaling service keeps writing between foreign commits
            service.add_pe(
                alice,
                make_pe(
                    f"Interleaved{i}",
                    code=f"inter:{i}".encode().hex(),
                    description=f"interleaved write {i}",
                    desc_embedding=unit(rng),
                ),
            )
        foreign.close()
        service.dao.close()

        restarted, counted, index, mode = reattach(factory)
        assert mode == "partial"
        assert counted.all_pes_calls == 0
        # bob's shards carry the foreign stamps; alice's post-interleave
        # journal rows ran at a lagged counter (the tracked counter never
        # re-reads after a foreign write — a re-read would stamp shards
        # that are missing the foreign rows as fresh), so her desc shard
        # conservatively rebuilds too.  Both rebuilds are per-owner —
        # the untouched code slabs replay and all_pes never runs.
        assert sorted(counted.pes_owned_by_users) == [
            alice.user_id,
            bob.user_id,
        ]
        user = restarted.get_user("bob")
        for i in range(3):
            landed = restarted.get_pe_by_name(user, f"Foreign{i}")
            assert index.contains(user.user_id, KIND_DESC, landed.pe_id)
        alice2 = restarted.get_user("alice")
        for i in range(3):
            kept = restarted.get_pe_by_name(alice2, f"Interleaved{i}")
            assert index.contains(alice2.user_id, KIND_DESC, kept.pe_id)


class TestCompaction:
    def test_inline_compaction_folds_chain_and_stays_fresh(
        self, dao_factory
    ):
        rng = np.random.default_rng(36)
        service = RegistryService(dao_factory())
        alice = service.register_user("alice", "pw")
        service.attach_index(VectorIndex())
        service.compact_after_deltas = 3
        for i in range(8):
            service.add_pe(
                alice,
                make_pe(
                    f"PE{i}",
                    code=f"c:{i}".encode().hex(),
                    description=f"element {i}",
                    desc_embedding=unit(rng),
                ),
            )
        report = service.shard_persistence()
        assert report["fresh"]
        assert report["journal"]["compactions"] > 0
        # compaction keeps every chain within the configured bound
        meta = service.dao.shard_chain_meta()
        for stats in meta.values():
            assert stats["chainLen"] <= service.compact_after_deltas
        if hasattr(service.dao, "close"):
            service.dao.close()

        restarted, counted, index, mode = reattach(dao_factory)
        assert mode == "fresh"
        assert counted.all_pes_calls == 0
        assert counted.pes_owned_by_users == []
        user = restarted.get_user("alice")
        assert len(restarted.user_pes(user)) == 8
        for record in restarted.user_pes(user):
            assert index.contains(user.user_id, KIND_DESC, record.pe_id)
