"""JSON-owners -> join-table migration of pre-existing SQLite files.

Registry files written before schema v1 stored ownership only as a JSON
``owners`` column (and the PE<->workflow association as a JSON
``pe_ids`` column).  Opening such a file with :class:`SqliteDAO` must
backfill the normalized ``pe_owners`` / ``workflow_owners`` /
``workflow_pes`` tables exactly once, after which the owner-scoped
queries return precisely what the historical filter-in-Python listing
returned.
"""

import json
import sqlite3

import numpy as np
import pytest

from repro.registry.dao import SqliteDAO
from repro.registry.entities import UserRecord
from repro.registry.service import RegistryService

_LEGACY_SCHEMA = """
CREATE TABLE users (
    user_id INTEGER PRIMARY KEY AUTOINCREMENT,
    user_name TEXT UNIQUE NOT NULL,
    password_hash TEXT NOT NULL
);
CREATE TABLE pes (
    pe_id INTEGER PRIMARY KEY AUTOINCREMENT,
    pe_name TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    description_origin TEXT NOT NULL DEFAULT 'user',
    pe_code TEXT NOT NULL,
    pe_source TEXT NOT NULL DEFAULT '',
    pe_imports TEXT NOT NULL DEFAULT '[]',
    code_embedding BLOB,
    desc_embedding BLOB,
    owners TEXT NOT NULL DEFAULT '[]'
);
CREATE TABLE workflows (
    workflow_id INTEGER PRIMARY KEY AUTOINCREMENT,
    workflow_name TEXT NOT NULL,
    entry_point TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    workflow_code TEXT NOT NULL,
    workflow_source TEXT NOT NULL DEFAULT '',
    pe_ids TEXT NOT NULL DEFAULT '[]',
    desc_embedding BLOB,
    owners TEXT NOT NULL DEFAULT '[]'
);
"""


@pytest.fixture()
def legacy_db(tmp_path):
    """A registry file exactly as the pre-v1 code would have written it."""
    path = tmp_path / "legacy.db"
    conn = sqlite3.connect(path)
    conn.executescript(_LEGACY_SCHEMA)
    conn.execute(
        "INSERT INTO users (user_name, password_hash) VALUES ('alice', 'h1')"
    )
    conn.execute(
        "INSERT INTO users (user_name, password_hash) VALUES ('bob', 'h2')"
    )
    vec = np.arange(4, dtype=np.float32).tobytes()
    for name, owners in (("Solo", [1]), ("Shared", [1, 2]), ("Bobs", [2])):
        conn.execute(
            "INSERT INTO pes (pe_name, pe_code, desc_embedding, owners)"
            " VALUES (?, 'eA==', ?, ?)",
            (name, vec, json.dumps(owners)),
        )
    conn.execute(
        "INSERT INTO workflows (workflow_name, entry_point, workflow_code,"
        " pe_ids, owners) VALUES ('wf', 'wf', 'eA==', ?, ?)",
        (json.dumps([1, 2]), json.dumps([1])),
    )
    conn.commit()
    assert conn.execute("PRAGMA user_version").fetchone()[0] == 0
    conn.close()
    return path


def legacy_user_pes(dao, user_id):
    """The seed implementation: filter the full listing in Python."""
    return [r for r in dao.all_pes() if user_id in r.owners]


def legacy_user_workflows(dao, user_id):
    return [r for r in dao.all_workflows() if user_id in r.owners]


class TestMigration:
    def test_join_tables_backfilled_on_open(self, legacy_db):
        dao = SqliteDAO(legacy_db)
        rows = dao._conn.execute(
            "SELECT pe_id, user_id FROM pe_owners ORDER BY pe_id, user_id"
        ).fetchall()
        assert [(r["pe_id"], r["user_id"]) for r in rows] == [
            (1, 1),
            (2, 1),
            (2, 2),
            (3, 2),
        ]
        links = dao._conn.execute(
            "SELECT workflow_id, pe_id FROM workflow_pes ORDER BY pe_id"
        ).fetchall()
        assert [(r["workflow_id"], r["pe_id"]) for r in links] == [
            (1, 1),
            (1, 2),
        ]
        assert (
            dao._conn.execute("PRAGMA user_version").fetchone()[0] >= 1
        )
        dao.close()

    def test_migration_runs_once(self, legacy_db):
        SqliteDAO(legacy_db).close()
        dao = SqliteDAO(legacy_db)
        # a second open over a migrated file must not duplicate rows
        count = dao._conn.execute(
            "SELECT COUNT(*) FROM pe_owners"
        ).fetchone()[0]
        assert count == 4
        dao.close()

    def test_owner_queries_match_legacy_listing(self, legacy_db):
        dao = SqliteDAO(legacy_db)
        for user_id in (1, 2, 3):
            legacy = legacy_user_pes(dao, user_id)
            scoped = dao.pes_owned_by(user_id)
            assert [r.to_json() for r in scoped] == [
                r.to_json() for r in legacy
            ]
            assert dao.pe_ids_owned_by(user_id) == [r.pe_id for r in legacy]
            legacy_wf = legacy_user_workflows(dao, user_id)
            assert [r.to_json() for r in dao.workflows_owned_by(user_id)] == [
                r.to_json() for r in legacy_wf
            ]
        dao.close()

    def test_service_parity_after_migration(self, legacy_db):
        service = RegistryService(SqliteDAO(legacy_db))
        alice = UserRecord(1, "alice", "h1")
        listed = service.user_pes(alice)
        assert [r.pe_id for r in listed] == [1, 2]
        assert service.owned_pe_ids(alice) == [1, 2]
        resolved = service.resolve_pes(alice, [2, 1, 3])
        # id 3 belongs to bob only: resolve keeps order, drops non-owned
        assert [r.pe_id for r in resolved] == [2, 1]
        service.dao.close()

    def test_deletes_after_migration_maintain_join_tables(self, legacy_db):
        dao = SqliteDAO(legacy_db)
        dao.delete_pe(2)
        assert dao.pe_ids_owned_by(1) == [1]
        assert dao.pe_ids_owned_by(2) == [3]
        # the migrated workflow link row was cleaned up too
        assert dao.get_workflow(1).pe_ids == [1]
        rows = dao._conn.execute(
            "SELECT pe_id FROM workflow_pes WHERE workflow_id=1"
        ).fetchall()
        assert [r["pe_id"] for r in rows] == [1]
        dao.close()
