"""Persisted IVF training state: warm restores, stale/torn rejection.

The IVF backend's trained centroids + inverted lists persist next to
the slab snapshot, each shard stamped with the *same* per-shard
mutation stamp its slab carries (``RegistryService.persist_shards``
saves both; ``attach_approx_backend`` restores on attach).  A warm
cold start then skips the lazy k-means retrain entirely; any mismatch
— registry mutated since the stamp (stale) or a torn/corrupt row from
a crash mid-save — discards exactly that shard's state, which is
always correct (it retrains lazily).
"""

import numpy as np
import pytest

from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.entities import PERecord
from repro.registry.service import RegistryService
from repro.search.backend import IVFFlatBackend
from repro.search.index import KIND_DESC, VectorIndex

N = 200
DIM = 32
IVF_OPTS = dict(nlist=8, nprobe=2, min_train_rows=16)


def unit(rng) -> np.ndarray:
    vec = rng.standard_normal(DIM).astype(np.float32)
    return vec / np.linalg.norm(vec)


def populate(service: RegistryService, user, n: int = N) -> None:
    rng = np.random.default_rng(7)
    records = [
        PERecord(
            pe_id=0,
            pe_name=f"pe{i}",
            description=f"element {i}",
            pe_code=f"def pe{i}(): pass",
            desc_embedding=unit(rng),
            code_embedding=unit(rng),
        )
        for i in range(n)
    ]
    service.register_pes_bulk(user, records)


@pytest.fixture()
def stack(tmp_path):
    """A populated SQLite registry with a trained IVF backend."""
    path = tmp_path / "reg.db"
    dao = SqliteDAO(path)
    service = RegistryService(dao, index=VectorIndex())
    user = service.register_user("u", "p")
    populate(service, user)
    ivf = IVFFlatBackend(service.index, **IVF_OPTS)
    assert service.attach_approx_backend(ivf) == "untrained"
    return path, dao, service, user, ivf


def reopen(path, *, attach_ivf: bool = True):
    dao = SqliteDAO(path)
    service = RegistryService(dao)
    mode = service.attach_index(VectorIndex(), persist=False)
    ivf = IVFFlatBackend(service.index, **IVF_OPTS)
    state = service.attach_approx_backend(ivf) if attach_ivf else None
    return dao, service, ivf, mode, state


class TestWarmRestore:
    def test_restored_backend_skips_training_and_matches(self, stack):
        path, dao, service, user, ivf = stack
        rng = np.random.default_rng(11)
        query = unit(rng)
        first = ivf.search(user.user_id, KIND_DESC, query, k=5)
        assert ivf.trainings == 1 and ivf.approx_queries == 1
        assert service.persist_shards() is True
        stamps, states = dao.load_ivf_states()
        assert states
        assert set(stamps.values()) == {dao.mutation_counter()}

        dao2, service2, ivf2, mode, state = reopen(path)
        assert mode == "fresh"
        assert state == "restored"
        second = ivf2.search(user.user_id, KIND_DESC, query, k=5)
        # zero k-means retrains on the warm path, and the restored
        # lists reproduce the original probe-and-rerank result exactly
        assert ivf2.trainings == 0 and ivf2.approx_queries == 1
        assert second[0] == first[0]
        assert np.array_equal(second[1], first[1])

    def test_stats_report_restored_lists(self, stack):
        path, dao, service, user, ivf = stack
        ivf.search(user.user_id, KIND_DESC, unit(np.random.default_rng(3)), k=5)
        service.persist_shards()
        _, _, ivf2, _, state = reopen(path)
        assert state == "restored"
        shard_stats = ivf2.stats()[f"{user.user_id}/{KIND_DESC}"]
        assert shard_stats["ivfLists"] > 0


class TestStaleAndTorn:
    def test_mutation_after_persist_marks_stale(self, stack):
        path, dao, service, user, ivf = stack
        ivf.search(user.user_id, KIND_DESC, unit(np.random.default_rng(5)), k=5)
        assert service.persist_shards() is True
        # one more write lands after the snapshot
        service.add_pe(
            user,
            PERecord(
                pe_id=0,
                pe_name="late",
                description="late arrival",
                pe_code="def late(): pass",
                desc_embedding=unit(np.random.default_rng(6)),
            ),
        )
        dao2, service2, ivf2, mode, state = reopen(path)
        # the delta journal carried the late write, so the slab itself
        # replays fresh — but the IVF state was stamped before it
        assert mode == "fresh"
        assert state == "stale"
        # the stale lists never serve: the next query retrains
        ivf2.search(user.user_id, KIND_DESC, unit(np.random.default_rng(8)), k=5)
        assert ivf2.trainings == 1

    def test_torn_snapshot_is_ignored(self, stack):
        import sqlite3

        path, dao, service, user, ivf = stack
        rng = np.random.default_rng(9)
        # train two shards so the snapshot holds two rows
        from repro.search.index import KIND_CODE

        ivf.search(user.user_id, KIND_DESC, unit(rng), k=5)
        ivf.search(user.user_id, KIND_CODE, unit(rng), k=5)
        assert service.persist_shards() is True
        dao.close()
        conn = sqlite3.connect(path)
        assert conn.execute("SELECT COUNT(*) FROM ivf_states").fetchone()[0] == 2
        conn.execute(
            "UPDATE ivf_states SET mutation_counter = mutation_counter + 1"
            " WHERE kind = ?",
            (KIND_CODE,),
        )
        conn.commit()
        conn.close()
        dao2, service2, ivf2, mode, state = reopen(path)
        stamps, states = dao2.load_ivf_states()
        assert len(states) == 2  # both rows still decode
        assert mode == "fresh"  # the slab snapshot itself is intact
        # per-shard stamps: only the overwritten code row is torn; the
        # intact desc state still restores
        assert state == "restored"
        ivf2.search(user.user_id, KIND_DESC, unit(np.random.default_rng(12)), k=5)
        assert ivf2.trainings == 0  # desc serves from the restored lists
        ivf2.search(user.user_id, KIND_CODE, unit(np.random.default_rng(13)), k=5)
        assert ivf2.trainings == 1  # the torn code shard retrains lazily

    def test_corrupt_blob_forces_retrain(self, stack):
        import sqlite3

        path, dao, service, user, ivf = stack
        ivf.search(user.user_id, KIND_DESC, unit(np.random.default_rng(4)), k=5)
        assert service.persist_shards() is True
        dao.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE ivf_states SET members = X'00'")
        conn.commit()
        conn.close()
        dao2, _, _, _, state = reopen(path)
        assert dao2.load_ivf_states() == ({}, {})
        assert state == "untrained"


class TestAdoptionSanity:
    def test_adopt_rejects_inconsistent_states(self, stack):
        path, dao, service, user, ivf = stack
        shard_key = (user.user_id, KIND_DESC)
        centroids = np.zeros((2, DIM), dtype=np.float32)
        # member lists that do not cover the live slab exactly
        bogus = {shard_key: (centroids, [np.array([0, 1], dtype=np.int64)])}
        assert ivf.adopt_states(bogus) == 0
        # wrong centroid width
        bad_dim = {
            shard_key: (
                np.zeros((2, DIM + 1), dtype=np.float32),
                [np.arange(N, dtype=np.int64)],
            )
        }
        assert ivf.adopt_states(bad_dim) == 0
        # out-of-range member rows
        out_of_range = {
            shard_key: (
                centroids,
                [np.arange(N, dtype=np.int64) + 5],
            )
        }
        assert ivf.adopt_states(out_of_range) == 0

    def test_export_excludes_stale_shards(self, stack):
        path, dao, service, user, ivf = stack
        ivf.search(user.user_id, KIND_DESC, unit(np.random.default_rng(2)), k=5)
        assert ivf.export_states()
        # mutate the shard: the trained state no longer matches
        service.add_pe(
            user,
            PERecord(
                pe_id=0,
                pe_name="mutator",
                description="shifts rows",
                pe_code="def mutator(): pass",
                desc_embedding=unit(np.random.default_rng(1)),
            ),
        )
        assert ivf.export_states() == {}


class TestInMemoryRoundTrip:
    def test_states_round_trip_through_inmemory_dao(self):
        dao = InMemoryDAO()
        service = RegistryService(dao, index=VectorIndex())
        user = service.register_user("m", "p")
        populate(service, user, n=64)
        ivf = IVFFlatBackend(service.index, **IVF_OPTS)
        service.attach_approx_backend(ivf)
        ivf.search(user.user_id, KIND_DESC, unit(np.random.default_rng(0)), k=5)
        assert service.persist_shards() is True
        stamps, states = dao.load_ivf_states()
        assert set(stamps.values()) == {dao.mutation_counter()}
        exported = ivf.export_states()
        assert set(states) == set(exported)
        for key in exported:
            assert np.array_equal(states[key][0], exported[key][0])
            assert len(states[key][1]) == len(exported[key][1])
            for stored_list, live_list in zip(states[key][1], exported[key][1]):
                assert np.array_equal(stored_list, live_list)


class TestServerColdStart:
    def test_laminar_server_restores_ivf_on_startup(self, tmp_path, fast_bundle):
        from repro.net.transport import Request
        from repro.server import LaminarServer

        path = tmp_path / "server.db"
        options = {"ivf": {"nlist": 4, "nprobe": 1, "min_train_rows": 8}}
        server1 = LaminarServer(
            dao=SqliteDAO(path), models=fast_bundle, backend_options=options
        )
        server1.dispatch(
            Request("POST", "/auth/register", {"userName": "s", "password": "p"})
        )
        token = server1.dispatch(
            Request("POST", "/auth/login", {"userName": "s", "password": "p"})
        ).body["token"]
        items = [
            {"peName": f"cold{i}", "peCode": f"def cold{i}(): pass",
             "description": f"cold start element {i}"}
            for i in range(12)
        ]
        server1.dispatch(
            Request(
                "POST", "/v1/registry/s/pes:bulk", {"items": items}, token=token
            )
        )
        search_body = {
            "query": "cold start element", "queryType": "semantic",
            "kind": "pe", "k": 3, "backend": "ivf",
        }
        first = server1.dispatch(
            Request("POST", "/v1/registry/s/search", search_body, token=token)
        )
        assert first.status == 200
        assert server1.backends["ivf"].trainings >= 1
        assert server1.registry.persist_shards() is True

        server2 = LaminarServer(
            dao=SqliteDAO(path), models=fast_bundle, backend_options=options
        )
        assert server2.backends["ivf"]._states  # restored, not lazy
        token2 = server2.dispatch(
            Request("POST", "/auth/login", {"userName": "s", "password": "p"})
        ).body["token"]
        second = server2.dispatch(
            Request("POST", "/v1/registry/s/search", search_body, token=token2)
        )
        assert second.status == 200
        assert server2.backends["ivf"].trainings == 0  # warm: no retrain
        assert second.body["hits"] == first.body["hits"]
