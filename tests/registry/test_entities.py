"""Tests for registry entities and their JSON projections (Table 2)."""

import numpy as np

from repro.registry.entities import (
    PERecord,
    UserRecord,
    WorkflowRecord,
    hash_password,
)


class TestPasswordHashing:
    def test_deterministic(self):
        assert hash_password("secret") == hash_password("secret")

    def test_salt_changes_digest(self):
        assert hash_password("secret", "s1") != hash_password("secret", "s2")

    def test_not_plaintext(self):
        assert "secret" not in hash_password("secret")


class TestUserRecord:
    def test_json_hides_password_by_default(self):
        user = UserRecord(1, "zz46", "deadbeef")
        body = user.to_json()
        assert body == {"userId": 1, "userName": "zz46"}

    def test_json_can_include_password_hash(self):
        user = UserRecord(1, "zz46", "deadbeef")
        assert user.to_json(include_password=True)["password"] == "deadbeef"


class TestPERecord:
    def _record(self, **kw):
        return PERecord(
            pe_id=3,
            pe_name="IsPrime",
            description="checks primality",
            pe_code="Y29kZQ==",
            pe_source="class IsPrime: ...",
            pe_imports=["numpy"],
            owners={1, 2},
            **kw,
        )

    def test_table2_properties_in_json(self):
        body = self._record().to_json()
        for key in ("peId", "peName", "description", "peCode", "peImports"):
            assert key in body

    def test_embeddings_excluded_by_default(self):
        body = self._record().to_json()
        assert "codeEmbedding" not in body

    def test_embeddings_as_float_lists(self):
        vec = np.array([0.1, 0.2], dtype=np.float32)
        body = self._record(desc_embedding=vec).to_json(include_embeddings=True)
        assert isinstance(body["descEmbedding"], list)
        assert body["codeEmbedding"] is None

    def test_from_json_round_trip(self):
        vec = np.array([1.0, 0.0, -1.0], dtype=np.float32)
        original = self._record(code_embedding=vec)
        body = original.to_json(include_embeddings=True)
        restored = PERecord.from_json(body)
        assert restored.pe_name == original.pe_name
        assert restored.owners == original.owners
        np.testing.assert_allclose(restored.code_embedding, vec)

    def test_identity_key_depends_on_code(self):
        a = self._record()
        b = self._record()
        assert a.identity_key() == b.identity_key()
        c = PERecord(
            pe_id=9, pe_name="IsPrime", description="", pe_code="ZGlmZg=="
        )
        assert c.identity_key() != a.identity_key()


class TestWorkflowRecord:
    def _record(self):
        return WorkflowRecord(
            workflow_id=2,
            workflow_name="IsPrimeWorkflow",
            entry_point="isPrime",
            description="prints primes",
            workflow_code="d29ya2Zsb3c=",
            pe_ids=[1, 2, 3],
            owners={1},
        )

    def test_json_round_trip(self):
        body = self._record().to_json()
        restored = WorkflowRecord.from_json(body)
        assert restored.entry_point == "isPrime"
        assert restored.pe_ids == [1, 2, 3]
        assert restored.owners == {1}

    def test_identity_key_uses_entry_point_and_code(self):
        a, b = self._record(), self._record()
        assert a.identity_key() == b.identity_key()
        b.workflow_code = "b3RoZXI="
        assert a.identity_key() != b.identity_key()
