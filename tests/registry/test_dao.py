"""DAO tests, parametrized over both backends (in-memory and SQLite)."""

import numpy as np
import pytest

from repro.errors import NotFoundError
from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.entities import PERecord, WorkflowRecord


@pytest.fixture(params=["memory", "sqlite", "sqlite-file"])
def dao(request, tmp_path):
    if request.param == "memory":
        return InMemoryDAO()
    if request.param == "sqlite":
        return SqliteDAO(":memory:")
    return SqliteDAO(tmp_path / "registry.db")


def make_pe(name="MyPE", code="Y29kZQ==", **kw):
    return PERecord(
        pe_id=0,
        pe_name=name,
        description=kw.get("description", "does things"),
        pe_code=code,
        pe_source=kw.get("pe_source", "class MyPE: pass"),
        pe_imports=kw.get("pe_imports", ["numpy"]),
        code_embedding=kw.get("code_embedding"),
        desc_embedding=kw.get("desc_embedding"),
        owners=set(kw.get("owners", ())),
    )


def make_wf(entry="wf", code="d29ya2Zsb3c=", **kw):
    return WorkflowRecord(
        workflow_id=0,
        workflow_name=kw.get("workflow_name", entry),
        entry_point=entry,
        description=kw.get("description", ""),
        workflow_code=code,
        pe_ids=list(kw.get("pe_ids", ())),
        owners=set(kw.get("owners", ())),
    )


class TestUsers:
    def test_insert_assigns_increasing_ids(self, dao):
        first = dao.insert_user("alice", "h1")
        second = dao.insert_user("bob", "h2")
        assert second.user_id > first.user_id

    def test_get_by_name(self, dao):
        dao.insert_user("alice", "h1")
        user = dao.get_user_by_name("alice")
        assert user is not None and user.password_hash == "h1"
        assert dao.get_user_by_name("nobody") is None

    def test_all_users_ordered(self, dao):
        dao.insert_user("a", "h")
        dao.insert_user("b", "h")
        assert [u.user_name for u in dao.all_users()] == ["a", "b"]


class TestPEs:
    def test_insert_get_round_trip(self, dao):
        record = make_pe(owners={1})
        stored = dao.insert_pe(record)
        assert stored.pe_id > 0
        fetched = dao.get_pe(stored.pe_id)
        assert fetched.pe_name == "MyPE"
        assert fetched.pe_imports == ["numpy"]
        assert fetched.owners == {1}

    def test_embeddings_survive_storage(self, dao):
        vec = np.arange(8, dtype=np.float32) / 7.0
        stored = dao.insert_pe(make_pe(code_embedding=vec, desc_embedding=vec * 2))
        fetched = dao.get_pe(stored.pe_id)
        np.testing.assert_allclose(fetched.code_embedding, vec)
        np.testing.assert_allclose(fetched.desc_embedding, vec * 2)

    def test_update_pe(self, dao):
        stored = dao.insert_pe(make_pe())
        stored.description = "new description"
        stored.owners = {1, 2}
        dao.update_pe(stored)
        fetched = dao.get_pe(stored.pe_id)
        assert fetched.description == "new description"
        assert fetched.owners == {1, 2}

    def test_update_missing_raises(self, dao):
        record = make_pe()
        record.pe_id = 999
        with pytest.raises(NotFoundError):
            dao.update_pe(record)

    def test_find_by_name(self, dao):
        dao.insert_pe(make_pe("A"))
        dao.insert_pe(make_pe("A", code="b3RoZXI="))
        dao.insert_pe(make_pe("B"))
        assert len(dao.find_pe_by_name("A")) == 2
        assert dao.find_pe_by_name("missing") == []

    def test_delete_pe(self, dao):
        stored = dao.insert_pe(make_pe())
        dao.delete_pe(stored.pe_id)
        assert dao.get_pe(stored.pe_id) is None
        with pytest.raises(NotFoundError):
            dao.delete_pe(stored.pe_id)

    def test_delete_pe_unlinks_from_workflows(self, dao):
        pe = dao.insert_pe(make_pe())
        wf = dao.insert_workflow(make_wf(pe_ids=[pe.pe_id]))
        dao.delete_pe(pe.pe_id)
        assert dao.get_workflow(wf.workflow_id).pe_ids == []


class TestWorkflows:
    def test_insert_get_round_trip(self, dao):
        stored = dao.insert_workflow(make_wf("isPrime", pe_ids=[1, 2]))
        fetched = dao.get_workflow(stored.workflow_id)
        assert fetched.entry_point == "isPrime"
        assert fetched.pe_ids == [1, 2]

    def test_find_by_entry_point(self, dao):
        dao.insert_workflow(make_wf("astro"))
        assert len(dao.find_workflow_by_entry_point("astro")) == 1
        assert dao.find_workflow_by_entry_point("none") == []

    def test_update_workflow(self, dao):
        stored = dao.insert_workflow(make_wf())
        stored.pe_ids = [7]
        dao.update_workflow(stored)
        assert dao.get_workflow(stored.workflow_id).pe_ids == [7]

    def test_delete_workflow(self, dao):
        stored = dao.insert_workflow(make_wf())
        dao.delete_workflow(stored.workflow_id)
        assert dao.get_workflow(stored.workflow_id) is None
        with pytest.raises(NotFoundError):
            dao.delete_workflow(stored.workflow_id)

    def test_all_workflows_ordered(self, dao):
        dao.insert_workflow(make_wf("a"))
        dao.insert_workflow(make_wf("b"))
        assert [w.entry_point for w in dao.all_workflows()] == ["a", "b"]


class TestOwnerScopedQueries:
    """The O(k)-serving access paths, identical across backends."""

    def test_pes_owned_by_filters_and_orders(self, dao):
        a = dao.insert_pe(make_pe("A", owners={1}))
        dao.insert_pe(make_pe("B", code="Yg==", owners={2}))
        c = dao.insert_pe(make_pe("C", code="Yw==", owners={1, 2}))
        assert [p.pe_id for p in dao.pes_owned_by(1)] == [a.pe_id, c.pe_id]
        assert dao.pes_owned_by(99) == []

    def test_pe_ids_owned_by_matches_full_listing(self, dao):
        dao.insert_pe(make_pe("A", owners={1}))
        dao.insert_pe(make_pe("B", code="Yg==", owners={2}))
        dao.insert_pe(make_pe("C", code="Yw==", owners={1}))
        assert dao.pe_ids_owned_by(1) == [
            p.pe_id for p in dao.pes_owned_by(1)
        ]
        assert dao.pe_ids_owned_by(42) == []

    def test_owner_queries_follow_updates(self, dao):
        stored = dao.insert_pe(make_pe(owners={1}))
        stored.owners = {2, 3}
        dao.update_pe(stored)
        assert dao.pe_ids_owned_by(1) == []
        assert dao.pe_ids_owned_by(2) == [stored.pe_id]
        dao.delete_pe(stored.pe_id)
        assert dao.pe_ids_owned_by(2) == []

    def test_get_pes_batch_in_request_order(self, dao):
        first = dao.insert_pe(make_pe("A"))
        second = dao.insert_pe(make_pe("B", code="Yg=="))
        records = dao.get_pes([second.pe_id, first.pe_id, 999])
        assert [r.pe_id for r in records] == [second.pe_id, first.pe_id]
        assert dao.get_pes([]) == []

    def test_get_pes_preserves_embeddings(self, dao):
        vec = np.arange(6, dtype=np.float32)
        stored = dao.insert_pe(make_pe(desc_embedding=vec))
        [fetched] = dao.get_pes([stored.pe_id])
        np.testing.assert_allclose(fetched.desc_embedding, vec)

    def test_workflows_owned_by(self, dao):
        a = dao.insert_workflow(make_wf("a", owners={1}))
        dao.insert_workflow(make_wf("b", owners={2}))
        assert [w.workflow_id for w in dao.workflows_owned_by(1)] == [
            a.workflow_id
        ]
        assert dao.workflow_ids_owned_by(1) == [a.workflow_id]
        assert dao.workflow_ids_owned_by(3) == []

    def test_get_workflows_batch(self, dao):
        first = dao.insert_workflow(make_wf("a"))
        second = dao.insert_workflow(make_wf("b"))
        records = dao.get_workflows([second.workflow_id, first.workflow_id])
        assert [r.workflow_id for r in records] == [
            second.workflow_id,
            first.workflow_id,
        ]

    def test_bulk_insert_pes(self, dao):
        seeded = dao.insert_pe(make_pe("Seed"))
        batch = [
            make_pe(f"Bulk{i}", code=f"Yg=={i}", owners={1 + (i % 2)})
            for i in range(5)
        ]
        stored = dao.insert_pes(batch)
        assert [r.pe_id for r in stored] == [
            seeded.pe_id + 1 + i for i in range(5)
        ]
        assert len(dao.all_pes()) == 6
        assert dao.pe_ids_owned_by(1) == [stored[0].pe_id, stored[2].pe_id,
                                          stored[4].pe_id]
        # ids keep incrementing past the bulk block
        after = dao.insert_pe(make_pe("After", code="YWZ0ZXI="))
        assert after.pe_id > stored[-1].pe_id

    def test_bulk_insert_workflows(self, dao):
        stored = dao.insert_workflows(
            [make_wf(f"wf{i}", owners={7}, pe_ids=[i + 1]) for i in range(3)]
        )
        assert dao.workflow_ids_owned_by(7) == [
            r.workflow_id for r in stored
        ]
        assert dao.get_workflow(stored[1].workflow_id).pe_ids == [2]

    def test_bulk_insert_empty(self, dao):
        assert dao.insert_pes([]) == []
        assert dao.insert_workflows([]) == []


class TestSqliteDeleteBackref:
    """delete_pe must not scan the whole workflows table (regression)."""

    def test_delete_pe_reads_only_linked_workflows(self, tmp_path):
        dao = SqliteDAO(tmp_path / "backref.db")
        pe = dao.insert_pe(make_pe())
        linked = dao.insert_workflow(make_wf("linked", pe_ids=[pe.pe_id]))
        for i in range(10):
            dao.insert_workflow(make_wf(f"other{i}", code=f"Yg=={i}"))

        statements: list[str] = []
        dao._conn.set_trace_callback(statements.append)
        try:
            dao.delete_pe(pe.pe_id)
        finally:
            dao._conn.set_trace_callback(None)

        scans = [
            s
            for s in statements
            if "FROM workflows" in s and "workflow_id" not in s
        ]
        assert scans == [], f"full workflows scan during delete_pe: {scans}"
        assert dao.get_workflow(linked.workflow_id).pe_ids == []
        dao.close()

    def test_delete_pe_unlinks_only_referencing_workflows(self, dao):
        pe = dao.insert_pe(make_pe())
        keep = dao.insert_pe(make_pe("Keep", code="a2VlcA=="))
        linked = dao.insert_workflow(
            make_wf("linked", pe_ids=[pe.pe_id, keep.pe_id])
        )
        untouched = dao.insert_workflow(
            make_wf("untouched", code="Yg==", pe_ids=[keep.pe_id])
        )
        dao.delete_pe(pe.pe_id)
        assert dao.get_workflow(linked.workflow_id).pe_ids == [keep.pe_id]
        assert dao.get_workflow(untouched.workflow_id).pe_ids == [keep.pe_id]


class TestSqlitePersistence:
    def test_data_survives_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        dao = SqliteDAO(path)
        dao.insert_user("alice", "h")
        dao.insert_pe(make_pe(owners={1}))
        dao.close()
        reopened = SqliteDAO(path)
        assert reopened.get_user_by_name("alice") is not None
        assert len(reopened.all_pes()) == 1
        reopened.close()
