"""Inverted text index: cross-DAO BM25 parity and the v4→v5 backfill.

``text_topk_pes`` / ``text_topk_workflows`` rank inside the DAO —
SQLite FTS5 external-content tables on one side, the in-memory
postings mirror on the other.  The mirror computes SQLite's exact
``bm25()`` arithmetic (same constants, clamped idf, sorted-term
summation), so both backends must agree on the ranked ids *and* the
scores; everything above the DAO (service hydration, the v1 route,
hybrid fusion) builds on that equivalence.

The second half exercises the schema v4→v5 migration: a database whose
text side tables are missing (pre-v5 writer) must be backfilled on
open and rank identically to a natively-v5 registry.
"""

import sqlite3

import pytest

from repro.registry.dao import InMemoryDAO, SqliteDAO
from repro.registry.service import RegistryService
from tests.registry.test_dao import make_pe, make_wf

#: exercises multi-token queries, repeated terms, camelCase splits,
#: unicode, name-substring bonuses and blank/no-match degenerates
CORPUS = [
    ("isPrime", "checks whether numbers are prime"),
    ("VoTableReader", "reads a vo-table from disk"),
    ("read_ra_dec", "parse right-ascension and declination"),
    ("Percent%Escape", "literal percent_sign and under_score"),
    ("CaféReader", "reads café menus"),
    ("Plain", "nothing remarkable"),
    ("primality", "prime prime prime, emphatically prime"),
    ("TableScan", "scans every table in the catalogue of tables"),
]

QUERIES = [
    "prime",
    "isPrime",
    "is prime",
    "prime numbers",
    "vo table",
    "table",
    "reads",
    "ra dec",
    "under_score",
    "café",
    "zzz-no-match",
    "   ",
    "catalogue of tables",
]


def fill(dao):
    service = RegistryService(dao)
    alice = service.register_user("alice", "pw")
    bob = service.register_user("bob", "pw")
    for i, (name, description) in enumerate(CORPUS):
        service.add_pe(
            alice,
            make_pe(name, code=f"a{i}".encode().hex(), description=description),
        )
        service.add_workflow(
            alice,
            make_wf(
                f"{name}Flow", code=f"w{i}".encode().hex(),
                description=description,
            ),
        )
    # bob's records share the global df statistics but never his ids
    service.add_pe(
        bob,
        make_pe(
            "primeBob", code="Ym9i".encode().hex(),
            description="bob's prime element",
        ),
    )
    return service, alice, bob


@pytest.fixture()
def pair(tmp_path):
    """The same corpus through both DAOs (ids align: both count from 1)."""
    mem_service, mem_alice, _ = fill(InMemoryDAO())
    sql_service, sql_alice, _ = fill(SqliteDAO(tmp_path / "fts.db"))
    assert mem_alice.user_id == sql_alice.user_id
    return mem_service, sql_service, mem_alice


class TestCrossDAOParity:
    @pytest.mark.parametrize("query", QUERIES)
    def test_pe_ranking_matches(self, pair, query):
        mem, sql, alice = pair
        got_mem = mem.dao.text_topk_pes(alice.user_id, query)
        got_sql = sql.dao.text_topk_pes(alice.user_id, query)
        assert [i for i, _ in got_mem] == [i for i, _ in got_sql]
        for (_, s_mem), (_, s_sql) in zip(got_mem, got_sql):
            assert s_mem == pytest.approx(s_sql, rel=1e-9)

    @pytest.mark.parametrize("query", QUERIES)
    def test_workflow_ranking_matches(self, pair, query):
        mem, sql, alice = pair
        got_mem = mem.dao.text_topk_workflows(alice.user_id, query)
        got_sql = sql.dao.text_topk_workflows(alice.user_id, query)
        assert [i for i, _ in got_mem] == [i for i, _ in got_sql]
        for (_, s_mem), (_, s_sql) in zip(got_mem, got_sql):
            assert s_mem == pytest.approx(s_sql, rel=1e-9)

    @pytest.mark.parametrize("query", ["prime", "table"])
    def test_k_truncates_the_same_prefix(self, pair, query):
        mem, sql, alice = pair
        full = mem.dao.text_topk_pes(alice.user_id, query)
        assert len(full) >= 2
        for dao in (mem.dao, sql.dao):
            got = dao.text_topk_pes(alice.user_id, query, k=1)
            assert [i for i, _ in got] == [full[0][0]]

    def test_blank_query_is_empty(self, pair):
        mem, sql, alice = pair
        assert mem.dao.text_topk_pes(alice.user_id, "   ") == []
        assert sql.dao.text_topk_pes(alice.user_id, "   ") == []

    def test_owner_scoping(self, pair):
        mem, sql, alice = pair
        for service in (mem, sql):
            ranked = service.dao.text_topk_pes(alice.user_id, "prime")
            names = {
                pe.pe_name
                for pe in service.dao.get_pes([i for i, _ in ranked])
            }
            assert "primeBob" not in names
            assert names >= {"isPrime", "primality"}

    def test_name_substring_bonus_outranks_description_hits(self, pair):
        mem, sql, alice = pair
        for service in (mem, sql):
            ranked = service.dao.text_topk_pes(alice.user_id, "isprime")
            by_id = {
                pe.pe_id: pe.pe_name
                for pe in service.dao.get_pes([i for i, _ in ranked])
            }
            assert by_id[ranked[0][0]] == "isPrime"


class TestMutationSync:
    """The index tracks writes without any rebuild hook on either DAO."""

    @pytest.fixture(params=["memory", "sqlite"])
    def service(self, request, tmp_path):
        dao = (
            InMemoryDAO()
            if request.param == "memory"
            else SqliteDAO(tmp_path / "mut.db")
        )
        return fill(dao)[0]

    def test_removed_pe_leaves_the_ranking(self, service):
        alice = service.get_user("alice")
        ranked = service.dao.text_topk_pes(alice.user_id, "prime")
        assert len(ranked) >= 2
        target = next(
            pe
            for pe in service.dao.get_pes([i for i, _ in ranked])
            if pe.pe_name == "isPrime"
        )
        service.remove_pe(alice, target.pe_id)
        after = service.dao.text_topk_pes(alice.user_id, "prime")
        assert target.pe_id not in {i for i, _ in after}
        assert after  # primality still matches

    def test_new_pe_enters_the_ranking(self, service):
        alice = service.get_user("alice")
        before = {
            i for i, _ in service.dao.text_topk_pes(alice.user_id, "prime")
        }
        record = service.add_pe(
            alice,
            make_pe(
                "latePrime", code="bGF0ZQ==".encode().hex(),
                description="a late prime arrival",
            ),
        )
        after = {
            i for i, _ in service.dao.text_topk_pes(alice.user_id, "prime")
        }
        assert after == before | {record.pe_id}


class TestSchemaV5Backfill:
    def _scrub_to_v4(self, path):
        """Emulate a pre-v5 file: no side tables populated, version 4."""
        conn = sqlite3.connect(path)
        # the AFTER DELETE triggers cascade the FTS5 'delete' commands,
        # exactly the state a pre-v5 writer leaves behind
        conn.execute("DELETE FROM pe_text")
        conn.execute("DELETE FROM wf_text")
        conn.execute("PRAGMA user_version = 4")
        conn.commit()
        conn.close()

    def test_v4_file_backfills_on_open(self, tmp_path):
        path = tmp_path / "old.db"
        service, alice, _ = fill(SqliteDAO(path))
        expected_pes = service.dao.text_topk_pes(alice.user_id, "prime")
        expected_wfs = service.dao.text_topk_workflows(alice.user_id, "table")
        assert expected_pes and expected_wfs
        service.dao.close()
        self._scrub_to_v4(path)

        dao2 = SqliteDAO(path)
        version = dao2._conn.execute("PRAGMA user_version").fetchone()[0]
        assert version == 6
        assert (
            dao2.text_topk_pes(alice.user_id, "prime") == expected_pes
        )
        assert (
            dao2.text_topk_workflows(alice.user_id, "table") == expected_wfs
        )

    def test_v5_file_with_drifted_side_tables_rebackfills(self, tmp_path):
        """A pre-v5 writer touching a v5 file bumps neither the side
        tables nor user_version; the row-count probe catches it."""
        path = tmp_path / "drift.db"
        service, alice, _ = fill(SqliteDAO(path))
        expected = service.dao.text_topk_pes(alice.user_id, "prime")
        service.dao.close()
        conn = sqlite3.connect(path)
        conn.execute("DELETE FROM pe_text")  # drift, version stays 5
        conn.commit()
        conn.close()

        dao2 = SqliteDAO(path)
        assert dao2.text_topk_pes(alice.user_id, "prime") == expected

    def test_backfilled_file_matches_inmemory_ranking(self, tmp_path):
        path = tmp_path / "old2.db"
        fill(SqliteDAO(path))[0].dao.close()
        self._scrub_to_v4(path)
        dao2 = SqliteDAO(path)
        mem_service, mem_alice, _ = fill(InMemoryDAO())
        for query in ("prime", "vo table", "catalogue of tables"):
            got_sql = dao2.text_topk_pes(mem_alice.user_id, query)
            got_mem = mem_service.dao.text_topk_pes(mem_alice.user_id, query)
            assert [i for i, _ in got_sql] == [i for i, _ in got_mem]
            for (_, s_sql), (_, s_mem) in zip(got_sql, got_mem):
                assert s_sql == pytest.approx(s_mem, rel=1e-9)
