"""Golden tests for the AST chunker: spans, qualnames, ids, fallbacks."""

import textwrap

from repro.ingest.chunker import Chunk, chunk_file, chunk_python, chunk_text

MODULE = textwrap.dedent(
    '''\
    """Module doc."""

    import os
    import json as j
    from collections import OrderedDict

    TOP_CONSTANT = 1


    @property
    def decorated():
        """Decorated doc."""
        return 1


    def outer(x):
        def inner(y):
            return y + 1

        return inner(x)


    async def fetch(url):
        """Fetch doc."""
        return url


    class Box:
        """Box doc."""

        side = 2

        def area(self):
            return self.side ** 2

        class Inner:
            def f(self):
                return 0
    '''
)


def by_qualname(chunks):
    return {chunk.qualname: chunk for chunk in chunks}


class TestPythonChunking:
    def test_qualnames_cover_defs_classes_and_module_remainder(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert set(chunks) == {
            "decorated",
            "outer",
            "fetch",
            "Box",
            "Box.area",
            "Box.Inner",
            "Box.Inner.f",
            "__module__",
        }

    def test_nested_defs_stay_inside_their_parent(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert "outer.inner" not in chunks
        assert "def inner(y):" in chunks["outer"].code

    def test_decorators_are_part_of_the_span(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert chunks["decorated"].code.startswith("@property")

    def test_async_defs_are_chunked(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert chunks["fetch"].code.startswith("async def fetch")
        assert chunks["fetch"].docstring == "Fetch doc."

    def test_class_header_does_not_overlap_method_chunks(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        box = chunks["Box"]
        assert "class Box:" in box.code
        assert "side = 2" in box.code
        assert "def area" not in box.code
        assert box.end_line < chunks["Box.area"].start_line

    def test_module_chunk_holds_loose_statements_only(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        module = chunks["__module__"]
        assert "TOP_CONSTANT = 1" in module.code
        assert "import os" not in module.code
        assert "def " not in module.code

    def test_context_carries_module_path_and_imports(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        context = chunks["outer"].context
        assert context.startswith("# module: pkg/mod.py")
        assert "import os" in context
        assert "from collections import OrderedDict" in context

    def test_imports_are_deduped_names(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        imports = set(chunks["outer"].imports)
        assert {"os", "json", "collections"} <= imports

    def test_docstrings_feed_description(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert chunks["Box"].docstring == "Box doc."
        assert chunks["decorated"].docstring == "Decorated doc."

    def test_syntax_error_returns_none(self):
        assert chunk_python("bad.py", "def broken(:\n  pass\n") is None

    def test_chunk_ids_are_stable_and_content_sensitive(self):
        first = by_qualname(chunk_python("pkg/mod.py", MODULE))
        second = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert first["outer"].chunk_id == second["outer"].chunk_id
        mutated = by_qualname(
            chunk_python("pkg/mod.py", MODULE.replace("y + 1", "y + 2"))
        )
        assert mutated["outer"].chunk_id != first["outer"].chunk_id
        # moving the file moves the id too (path is part of identity)
        moved = by_qualname(chunk_python("other/mod.py", MODULE))
        assert moved["outer"].chunk_id != first["outer"].chunk_id

    def test_names_are_path_scoped(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        assert chunks["Box.area"].name == "pkg/mod.py::Box.area"

    def test_oversized_defs_split_into_windows(self):
        body = "\n".join(f"    x{i} = {i}" for i in range(40))
        source = f"def big():\n{body}\n    return x0\n"
        chunks = chunk_python("pkg/big.py", source, max_chunk_lines=10)
        windows = [c for c in chunks if c.qualname.startswith("big[")]
        assert len(windows) > 1
        assert all(
            c.end_line - c.start_line + 1 <= 10 for c in windows
        )
        # windows tile the def without gaps
        spans = sorted((c.start_line, c.end_line) for c in windows)
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start == prev_end + 1

    def test_source_text_prepends_context(self):
        chunks = by_qualname(chunk_python("pkg/mod.py", MODULE))
        text = chunks["outer"].source_text()
        assert text.startswith("# module: pkg/mod.py")
        assert text.endswith(chunks["outer"].code)


class TestTextChunking:
    def test_non_python_text_becomes_line_windows(self):
        text = "\n".join(f"line {i}" for i in range(25))
        chunks = chunk_text("docs/notes.md", text, window_lines=10)
        assert [c.kind for c in chunks] == ["window"] * len(chunks)
        assert chunks[0].qualname == "L1-L10"
        assert chunks[0].context == "# file: docs/notes.md"
        assert len(chunks) == 3

    def test_binary_like_text_is_skipped(self):
        assert chunk_text("blob.txt", "abc\x00def") is None

    def test_dispatch_by_suffix(self):
        python = chunk_file("a.py", "def f():\n    return 1\n")
        assert any(isinstance(c, Chunk) and c.kind == "function" for c in python)
        prose = chunk_file("a.md", "hello\n")
        assert prose[0].kind == "window"
