"""Walker determinism, skip rules, and archive-intake validation."""

import io
import tarfile

import pytest

from repro.errors import ValidationError
from repro.ingest.walker import extract_archive, iter_repo_files


def make_tree(root, files):
    for relative, data in files.items():
        target = root / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(data, bytes):
            target.write_bytes(data)
        else:
            target.write_text(data)


class TestWalk:
    def test_deterministic_sorted_posix_paths(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "b/two.py": "x = 2\n",
                "a/one.py": "x = 1\n",
                "top.md": "# hi\n",
            },
        )
        first = [rel for rel, _ in iter_repo_files(str(tmp_path))]
        second = [rel for rel, _ in iter_repo_files(str(tmp_path))]
        assert first == second == ["top.md", "a/one.py", "b/two.py"]

    def test_skip_dirs_hidden_and_foreign_suffixes(self, tmp_path):
        make_tree(
            tmp_path,
            {
                ".git/config.py": "never = True\n",
                "__pycache__/mod.py": "never = True\n",
                "node_modules/pkg.py": "never = True\n",
                ".hidden.py": "never = True\n",
                "image.png": "not text",
                "kept.py": "x = 1\n",
            },
        )
        assert [rel for rel, _ in iter_repo_files(str(tmp_path))] == [
            "kept.py"
        ]

    def test_unreadable_files_yield_none_text(self, tmp_path):
        make_tree(
            tmp_path,
            {
                "binary.py": b"abc\x00def",
                "latin.py": "caf\xe9\n".encode("latin-1"),
                "big.py": "x = 1\n" * 50,
                "ok.py": "x = 1\n",
            },
        )
        results = dict(iter_repo_files(str(tmp_path), max_file_bytes=100))
        assert results["ok.py"] == "x = 1\n"
        assert results["binary.py"] is None
        assert results["latin.py"] is None
        assert results["big.py"] is None  # over the 100-byte ceiling

    def test_missing_root_is_a_validation_error(self, tmp_path):
        with pytest.raises(ValidationError):
            list(iter_repo_files(str(tmp_path / "nowhere")))


def tar_bytes(members):
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w:gz") as tar:
        for name, data in members:
            info = tarfile.TarInfo(name)
            info.size = len(data)
            tar.addfile(info, io.BytesIO(data))
    return buffer.getvalue()


class TestArchiveIntake:
    def test_round_trip(self, tmp_path):
        data = tar_bytes([("pkg/mod.py", b"x = 1\n"), ("README.md", b"# hi\n")])
        extract_archive(data, str(tmp_path))
        assert (tmp_path / "pkg" / "mod.py").read_bytes() == b"x = 1\n"
        assert (tmp_path / "README.md").read_bytes() == b"# hi\n"

    def test_garbage_bytes_are_a_400(self, tmp_path):
        with pytest.raises(ValidationError):
            extract_archive(b"not a tarball", str(tmp_path))

    @pytest.mark.parametrize(
        "name", ["/etc/passwd.py", "../escape.py", "a/../../escape.py"]
    )
    def test_traversal_members_are_rejected(self, tmp_path, name):
        data = tar_bytes([(name, b"x = 1\n")])
        with pytest.raises(ValidationError):
            extract_archive(data, str(tmp_path))
        assert not (tmp_path.parent / "escape.py").exists()

    def test_symlink_members_are_rejected(self, tmp_path):
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w:gz") as tar:
            info = tarfile.TarInfo("link.py")
            info.type = tarfile.SYMTYPE
            info.linkname = "/etc/passwd"
            tar.addfile(info)
        with pytest.raises(ValidationError):
            extract_archive(buffer.getvalue(), str(tmp_path))
