"""Tests of the code bank, including differential execution of variants.

Every problem's implementation variants must be *behaviourally
equivalent* — this is what makes the clone clusters of the CodeNet-like
dataset semantically honest.  We execute each variant on sample inputs
and compare outputs across variants.
"""

import ast

import pytest

from repro.datasets.codebank import PROBLEM_INDEX, PROBLEMS, all_canonical_sources

#: sample invocations per problem key: list of argument tuples
SAMPLE_CALLS: dict[str, list[tuple]] = {
    "is_prime": [(2,), (7,), (8,), (1,), (97,)],
    "gcd": [(12, 18), (7, 13), (100, 10)],
    "fibonacci": [(0,), (1,), (7,)],
    "factorial": [(0,), (1,), (6,)],
    "collatz": [(1,), (6,), (27,)],
    "prime_factors": [(84,), (97,), (1,)],
    "is_palindrome": [("Level",), ("python",), ("",)],
    "count_vowels": [("Hello World",), ("xyz",)],
    "word_count": [("a b a",), ("",)],
    "reverse_words": [("one two three",), ("single",)],
    "is_anagram": [("listen", "silent"), ("abc", "abd")],
    "caesar_cipher": [("abc xyz", 2), ("Hello, World!", 13)],
    "levenshtein": [("kitten", "sitting"), ("", "abc"), ("same", "same")],
    "find_max": [([3, 1, 4, 1, 5],), ([-2, -7],)],
    "moving_average": [([1, 2, 3, 4], 2), ([5, 5, 5], 3)],
    "flatten": [([1, [2, [3]], 4],), ([],)],
    "chunk_list": [([1, 2, 3, 4, 5], 2), ([], 3)],
    "dedupe": [([1, 2, 1, 3, 2],), ([],)],
    "merge_sorted": [([1, 3, 5], [2, 4]), ([], [1])],
    "binary_search": [([1, 3, 5, 7], 5), ([1, 3, 5, 7], 4), ([], 1)],
    "quicksort": [([3, 1, 2],), ([],), ([5, 5, 1],)],
    "bubble_sort": [([3, 1, 2],), ([],)],
    "rotate_list": [([1, 2, 3, 4], 1), ([1, 2, 3], 5), ([], 2)],
    "invert_dict": [({"a": 1, "b": 2},), ({},)],
    "group_by_key": [([("a", 1), ("a", 2), ("b", 3)],), ([],)],
    "most_common": [([1, 2, 2, 3],), (["x"],)],
    "parse_json_field": [('{"a": 5}', "a"), ('{"a": 5}', "b")],
    "celsius_to_fahrenheit": [(0,), (100,), (-40,)],
    "std_dev": [([1, 2, 3, 4],), ([5, 5],)],
    "dot_product": [([1, 2], [3, 4]), ([], [])],
    "transpose": [([[1, 2], [3, 4]],), ([[1, 2, 3]],)],
    "roman_numerals": [(1994,), (4,), (3888,)],
    "leap_year": [(2000,), (1900,), (2024,), (2023,)],
    "find_emails": [("mail a.b@c.org and x@y.io now",), ("none here",)],
    "slugify": [("Hello, World!",), ("  many   spaces  ",)],
    "running_total": [([1, 2, 3],), ([],)],
    "second_largest": [([5, 1, 5, 3],), ([2, 2],)],
    "is_armstrong": [(153,), (154,), (9,)],
    "digit_sum": [(1234,), (0,), (999,)],
    "swap_case": [("aBc",), ("",)],
    "clamp": [(5, 1, 3), (0, 1, 3), (2, 1, 3)],
    "histogram_bins": [([1, 2, 3, 9], 2, 0, 10), ([], 3, 0, 1)],
    "max_subarray": [([-2, 1, -3, 4, -1, 2, 1, -5, 4],), ([-3, -1, -2],)],
    "binary_to_decimal": [("1011",), ("0",), ("11111111",)],
    "common_elements": [([1, 2, 3, 2], [2, 4]), ([], [1])],
    "title_case": [("hello world",), ("a  b",), ("",)],
}

# file-based problems need a real file argument
FILE_PROBLEMS = {"read_lines", "count_lines"}


def run_variant(source: str, args: tuple):
    namespace: dict = {}
    exec(compile(source, "<variant>", "exec"), namespace)
    functions = [
        value
        for name, value in namespace.items()
        if callable(value) and not name.startswith("__")
    ]
    assert len(functions) >= 1, "variant defines no function"
    return functions[0](*args)


class TestBankStructure:
    def test_bank_size_sufficient_for_figure7_scenario(self):
        assert len(PROBLEMS) >= 40

    def test_every_problem_has_multiple_variants(self):
        for problem in PROBLEMS:
            assert len(problem.variants) >= 2, problem.key

    def test_every_problem_has_queries_and_docstring(self):
        for problem in PROBLEMS:
            assert len(problem.queries) >= 2
            assert problem.docstring.endswith(".")

    def test_unique_keys(self):
        keys = [p.key for p in PROBLEMS]
        assert len(keys) == len(set(keys))

    def test_all_variants_parse(self):
        for source in all_canonical_sources():
            ast.parse(source)

    def test_variants_of_problem_differ_structurally(self):
        """Variants are genuinely different implementations, not renames."""
        from repro.ml.ast_features import ast_sequence

        different = 0
        for problem in PROBLEMS:
            sequences = {tuple(ast_sequence(v)) for v in problem.variants}
            if len(sequences) == len(problem.variants):
                different += 1
        assert different >= len(PROBLEMS) * 0.9

    def test_canonical_corpus_size(self):
        assert len(all_canonical_sources()) >= 80


@pytest.mark.parametrize("key", sorted(SAMPLE_CALLS))
class TestVariantEquivalence:
    def test_variants_agree_on_samples(self, key):
        problem = PROBLEM_INDEX[key]
        for args in SAMPLE_CALLS[key]:
            outputs = [run_variant(v, args) for v in problem.variants]
            first = outputs[0]
            for other in outputs[1:]:
                assert other == first, (
                    f"{key}{args}: variants disagree: {first!r} vs {other!r}"
                )


class TestFileProblems:
    def test_read_lines_variants(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text(" a \nb\n")
        problem = PROBLEM_INDEX["read_lines"]
        outputs = [run_variant(v, (str(path),)) for v in problem.variants]
        assert all(o == ["a", "b"] for o in outputs)

    def test_count_lines_variants(self, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("1\n2\n3\n")
        problem = PROBLEM_INDEX["count_lines"]
        outputs = [run_variant(v, (str(path),)) for v in problem.variants]
        assert all(o == 3 for o in outputs)

    def test_every_problem_is_covered_by_a_sample(self):
        covered = set(SAMPLE_CALLS) | FILE_PROBLEMS
        assert covered == {p.key for p in PROBLEMS}
