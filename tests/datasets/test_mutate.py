"""Tests for code mutations — especially semantics preservation."""

import ast
import random

import pytest

from repro.datasets.codebank import PROBLEM_INDEX
from repro.datasets.mutate import (
    collect_renameable,
    make_clone,
    rename_identifiers,
    strip_comments,
    strip_docstrings,
    truncate_code,
)
from tests.datasets.test_codebank import SAMPLE_CALLS, run_variant

SAMPLE = '''
def is_prime(num):
    """Check primality."""
    # trial division
    for divisor in range(2, num):
        if num % divisor == 0:
            return False
    return num >= 2
'''


class TestCollectRenameable:
    def test_finds_functions_args_locals(self):
        names = collect_renameable(SAMPLE)
        assert {"is_prime", "num", "divisor"} <= set(names)

    def test_excludes_builtins_and_imports(self):
        source = "import os\nfrom json import loads\n\ndef f(x):\n    return loads(os.getenv(x)) or len(x)\n"
        names = collect_renameable(source)
        assert "os" not in names and "loads" not in names and "len" not in names

    def test_unparsable_gives_empty(self):
        assert collect_renameable(")(") == []


class TestRename:
    @pytest.mark.parametrize("style", ["snake", "camel", "abbrev", "generic"])
    def test_renamed_code_parses(self, style):
        renamed = rename_identifiers(SAMPLE, random.Random(1), style)
        ast.parse(renamed)

    def test_original_names_gone(self):
        renamed = rename_identifiers(SAMPLE, random.Random(1), "generic")
        assert "is_prime" not in renamed
        assert "divisor" not in renamed

    def test_keep_protects_names(self):
        renamed = rename_identifiers(
            SAMPLE, random.Random(1), "generic", keep={"is_prime"}
        )
        assert "def is_prime(" in renamed
        assert "divisor" not in renamed

    def test_attributes_not_renamed(self):
        source = "def f(count):\n    items = []\n    items.count(count)\n    return items\n"
        renamed = rename_identifiers(source, random.Random(2), "generic")
        assert ".count(" in renamed  # the method attribute survives

    def test_rename_deterministic_per_seed(self):
        a = rename_identifiers(SAMPLE, random.Random(7), "snake")
        b = rename_identifiers(SAMPLE, random.Random(7), "snake")
        assert a == b


class TestRenamePreservesSemantics:
    """Differential testing: clones must behave like their originals."""

    @pytest.mark.parametrize("key", ["is_prime", "levenshtein", "quicksort",
                                     "caesar_cipher", "group_by_key",
                                     "roman_numerals", "histogram_bins"])
    @pytest.mark.parametrize("style", ["snake", "camel", "abbrev", "generic"])
    def test_clone_equivalent_to_original(self, key, style):
        problem = PROBLEM_INDEX[key]
        rng = random.Random(42)
        for variant in problem.variants:
            clone = make_clone(variant, rng, style=style)
            for args in SAMPLE_CALLS[key]:
                assert run_variant(clone, args) == run_variant(variant, args)


class TestStripping:
    def test_strip_docstrings(self):
        stripped = strip_docstrings(SAMPLE)
        assert '"""' not in stripped
        ast.parse(stripped)

    def test_strip_docstrings_keeps_behaviour(self):
        stripped = strip_docstrings(SAMPLE)
        assert run_variant(stripped, (7,)) is True
        assert run_variant(stripped, (8,)) is False

    def test_strip_comments(self):
        stripped = strip_comments(SAMPLE)
        assert "trial division" not in stripped
        ast.parse(stripped)

    def test_strip_comments_preserves_hash_in_strings(self):
        source = 'def f():\n    return "#not-a-comment"  # real comment\n'
        stripped = strip_comments(source)
        assert "#not-a-comment" in stripped
        assert "real comment" not in stripped

    def test_strip_docstrings_unparsable_passthrough(self):
        assert strip_docstrings(")(") == ")("


class TestTruncate:
    def test_keeps_leading_fraction(self):
        truncated = truncate_code(SAMPLE, fraction=0.5)
        assert truncated.splitlines()[0].startswith("def is_prime")
        assert len(truncated.splitlines()) < len(
            [l for l in SAMPLE.splitlines() if l.strip()]
        )

    def test_min_lines_respected(self):
        truncated = truncate_code("a = 1\nb = 2\nc = 3\n", fraction=0.01)
        assert len(truncated.splitlines()) == 2
