"""Tests for synthetic galaxy catalogs."""

import pytest

from repro.datasets.galaxies import (
    generate_coordinates,
    parse_coordinates,
    render_coordinates,
    write_coordinates_file,
)


class TestGeneration:
    def test_count_and_ranges(self):
        coords = generate_coordinates(200, seed=1)
        assert len(coords) == 200
        for ra, dec in coords:
            assert 0.0 <= ra < 360.0
            assert -90.0 <= dec <= 90.0

    def test_deterministic(self):
        assert generate_coordinates(50, seed=9) == generate_coordinates(50, seed=9)

    def test_seed_matters(self):
        assert generate_coordinates(50, seed=1) != generate_coordinates(50, seed=2)


class TestFormat:
    def test_render_parse_round_trip(self):
        coords = generate_coordinates(25, seed=3)
        assert parse_coordinates(render_coordinates(coords)) == coords

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n10.0\t20.0\n"
        assert parse_coordinates(text) == [(10.0, 20.0)]

    def test_comma_separator_accepted(self):
        assert parse_coordinates("1.5, 2.5\n") == [(1.5, 2.5)]

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_coordinates("justonevalue\n")

    def test_write_coordinates_file(self, tmp_path):
        path = write_coordinates_file(tmp_path / "sub" / "coords.txt", 10, seed=4)
        assert path.exists()
        assert len(parse_coordinates(path.read_text())) == 10
