"""Tests for the synthetic Virtual Observatory substrate."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.votable import (
    VOTableService,
    internal_extinction,
    parse_votable,
    render_votable,
)
from repro.errors import ValidationError

row_values = st.fixed_dictionaries(
    {
        "name": st.text(
            alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=12
        ),
        "ra": st.floats(0, 360, allow_nan=False),
        "dec": st.floats(-90, 90, allow_nan=False),
        "t": st.floats(1, 10, allow_nan=False),
        "logr25": st.floats(0, 1, allow_nan=False),
    }
)


class TestXmlRoundTrip:
    def test_single_row(self):
        rows = [{"name": "CIG0001", "ra": 10.5, "dec": -3.25, "t": 5.0, "logr25": 0.3}]
        parsed = parse_votable(render_votable(rows))
        assert parsed == rows

    @given(st.lists(row_values, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_rows_round_trip(self, rows):
        parsed = parse_votable(render_votable(rows))
        assert len(parsed) == len(rows)
        for parsed_row, row in zip(parsed, rows):
            assert parsed_row["ra"] == pytest.approx(row["ra"])
            assert parsed_row["t"] == pytest.approx(row["t"])

    def test_malformed_xml_rejected(self):
        with pytest.raises(ValidationError, match="malformed"):
            parse_votable("<VOTABLE><broken")

    def test_xml_without_fields_rejected(self):
        with pytest.raises(ValidationError, match="no FIELD"):
            parse_votable("<VOTABLE></VOTABLE>")

    def test_field_count_mismatch_rejected(self):
        xml = (
            '<VOTABLE><RESOURCE><TABLE>'
            '<FIELD name="a" datatype="double"/><FIELD name="b" datatype="double"/>'
            "<DATA><TABLEDATA><TR><TD>1.0</TD></TR></TABLEDATA></DATA>"
            "</TABLE></RESOURCE></VOTABLE>"
        )
        with pytest.raises(ValidationError, match="cells"):
            parse_votable(xml)


class TestService:
    def test_deterministic_per_coordinate(self):
        service = VOTableService(seed=1)
        assert service.query(10.0, 20.0) == service.query(10.0, 20.0)

    def test_different_coordinates_differ(self):
        service = VOTableService(seed=1)
        assert service.query(10.0, 20.0) != service.query(11.0, 20.0)

    def test_seed_changes_catalog(self):
        a = VOTableService(seed=1).query(10.0, 20.0)
        b = VOTableService(seed=2).query(10.0, 20.0)
        assert a != b

    def test_response_is_valid_votable(self):
        [row] = parse_votable(VOTableService(seed=3).query(42.0, -17.5))
        assert row["name"].startswith("CIG")
        assert 1.0 <= row["t"] <= 10.0
        assert 0.0 <= row["logr25"] <= 0.9

    def test_latency_charged(self):
        service = VOTableService(latency_s=0.03)
        t0 = time.perf_counter()
        service.query(1.0, 2.0)
        assert time.perf_counter() - t0 >= 0.025

    def test_zero_latency_fast(self):
        service = VOTableService(latency_s=0.0)
        t0 = time.perf_counter()
        for i in range(50):
            service.query(float(i), 0.0)
        assert time.perf_counter() - t0 < 1.0


class TestExtinction:
    def test_monotonic_in_axis_ratio(self):
        assert internal_extinction(5, 0.8) > internal_extinction(5, 0.2)

    def test_monotonic_in_type(self):
        assert internal_extinction(9, 0.5) > internal_extinction(2, 0.5)

    def test_type_clamped(self):
        assert internal_extinction(0, 0.5) == internal_extinction(1, 0.5)
        assert internal_extinction(42, 0.5) == internal_extinction(10, 0.5)

    def test_face_on_galaxy_no_extinction(self):
        assert internal_extinction(5, 0.0) == 0.0

    @given(st.floats(1, 10, allow_nan=False), st.floats(0, 1, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_extinction_bounded(self, t, logr25):
        value = internal_extinction(t, logr25)
        assert 0.0 <= value <= 1.7
