"""Tests for the CoSQA/CSN/CodeNet/AdvTest-like dataset builders."""

import ast

import pytest

from repro.datasets import (
    RetrievalDataset,
    build_codenet,
    build_cosqa,
    build_csn,
)
from repro.datasets.advtest import build_advtest, fitting_corpus
from repro.datasets.codebank import PROBLEMS


class TestRetrievalDatasetContainer:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="align"):
            RetrievalDataset("x", ["q"], ["c"], [])

    def test_relevance_bounds_enforced(self):
        with pytest.raises(ValueError, match="out of range"):
            RetrievalDataset("x", ["q"], ["c"], [{5}])

    def test_exclude_defaults_to_none(self):
        ds = RetrievalDataset("x", ["q"], ["c"], [{0}])
        assert ds.exclude == [None]

    def test_describe(self):
        ds = RetrievalDataset("mini", ["q"], ["c", "d"], [{0, 1}])
        assert "mini" in ds.describe()
        assert "1 queries" in ds.describe()


class TestCosqa:
    def test_deterministic(self):
        a, b = build_cosqa(seed=5), build_cosqa(seed=5)
        assert a.queries == b.queries
        assert a.corpus == b.corpus

    def test_seed_changes_content(self):
        assert build_cosqa(seed=1).corpus != build_cosqa(seed=2).corpus

    def test_relevance_points_to_same_problem(self):
        ds = build_cosqa()
        per_problem = len(ds.queries) // len(PROBLEMS)
        assert per_problem >= 2
        for qi, relevant in enumerate(ds.relevant):
            keys = {ds.corpus_keys[ci] for ci in relevant}
            assert len(keys) == 1

    def test_corpus_parses(self):
        for code in build_cosqa().corpus:
            ast.parse(code)

    def test_queries_are_noisy_text(self):
        ds = build_cosqa()
        assert any("python" in q for q in ds.queries)


class TestCsn:
    def test_queries_are_docstrings(self):
        ds = build_csn()
        docstrings = {p.docstring for p in PROBLEMS}
        assert set(ds.queries) == docstrings

    def test_corpus_docstrings_stripped(self):
        for code in build_csn().corpus:
            assert '"""' not in code

    def test_entry_names_preserved(self):
        ds = build_csn()
        # CSN keeps author naming: the canonical function names survive
        joined = "\n".join(ds.corpus)
        assert "def is_prime" in joined
        assert "def levenshtein" in joined

    def test_corpus_parses(self):
        for code in build_csn().corpus:
            ast.parse(code)


class TestCodenet:
    def test_cluster_structure(self):
        ds = build_codenet()
        assert ds.n_corpus >= 150
        assert ds.n_queries >= 2 * len(PROBLEMS) - 5

    def test_queries_are_truncated_members(self):
        ds = build_codenet()
        for qi, query in enumerate(ds.queries):
            source = ds.corpus[ds.exclude[qi]]
            assert len(query) < len(source) + 1

    def test_source_excluded_from_relevance(self):
        ds = build_codenet()
        for qi, relevant in enumerate(ds.relevant):
            assert ds.exclude[qi] not in relevant

    def test_relevant_same_problem_only(self):
        ds = build_codenet()
        for qi, relevant in enumerate(ds.relevant):
            source_key = ds.corpus_keys[ds.exclude[qi]]
            assert all(ds.corpus_keys[ci] == source_key for ci in relevant)

    def test_clones_have_no_docstrings(self):
        for code in build_codenet().corpus:
            assert '"""' not in code

    def test_corpus_parses(self):
        for code in build_codenet().corpus:
            ast.parse(code)

    def test_deterministic(self):
        assert build_codenet(seed=3).corpus == build_codenet(seed=3).corpus


class TestAdvtest:
    def test_pairs_cover_all_variants(self):
        pairs = build_advtest()
        assert len(pairs) == sum(len(p.variants) for p in PROBLEMS)

    def test_identifiers_normalized(self):
        pairs = build_advtest()
        normalized = sum(1 for pair in pairs if "var0" in pair.code)
        assert normalized >= len(pairs) * 0.9

    def test_docs_match_problem(self):
        docstrings = {p.key: p.docstring for p in PROBLEMS}
        for pair in build_advtest():
            assert pair.doc == docstrings[pair.problem_key]

    def test_fitting_corpus_includes_both_regimes(self):
        corpus = fitting_corpus()
        assert len(corpus) == 2 * sum(len(p.variants) for p in PROBLEMS)

    def test_normalized_code_parses(self):
        for pair in build_advtest():
            ast.parse(pair.code)
