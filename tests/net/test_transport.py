"""Tests for the transport layer and latency models."""

import time

import pytest

from repro.errors import TransportError
from repro.net import (
    AZURE_WAN,
    InProcessTransport,
    LatencyModel,
    Request,
    Response,
    Transport,
)
from repro.net.latency import make_latency


class EchoServer:
    def dispatch(self, request: Request) -> Response:
        return Response(200, {"echo": request.body, "path": request.path})


class TestRequestResponse:
    def test_wire_size_counts_json_bytes(self):
        small = Request("GET", "/x", {}).wire_size()
        big = Request("GET", "/x", {"payload": "y" * 1000}).wire_size()
        assert big > small + 900

    def test_non_json_body_rejected(self):
        request = Request("POST", "/x", {"bad": object()})
        with pytest.raises(TransportError, match="not JSON-serializable"):
            request.wire_size()

    def test_response_ok_range(self):
        assert Response(200).ok and Response(204).ok
        assert not Response(404).ok and not Response(500).ok


class TestInProcessTransport:
    def test_round_trip(self):
        transport = InProcessTransport(EchoServer())
        response = transport.request(Request("GET", "/ping", {"a": 1}))
        assert response.ok
        assert response.body["echo"] == {"a": 1}

    def test_json_wire_format_enforced(self):
        """Tuples become lists — exactly as over real HTTP."""
        transport = InProcessTransport(EchoServer())
        response = transport.request(Request("GET", "/x", {"pair": (1, 2)}))
        assert response.body["echo"]["pair"] == [1, 2]

    def test_non_json_body_raises_before_dispatch(self):
        transport = InProcessTransport(EchoServer())
        with pytest.raises(TransportError):
            transport.request(Request("GET", "/x", {"bad": {1, 2}}))

    def test_server_without_dispatch_rejected(self):
        with pytest.raises(TransportError, match="no dispatch"):
            InProcessTransport(object())

    def test_is_a_transport(self):
        assert isinstance(InProcessTransport(EchoServer()), Transport)


class TestLatencyModel:
    def test_zero_model_is_free(self):
        model = LatencyModel(name="zero")
        assert model.delay(10_000) == 0.0

    def test_rtt_and_bandwidth_components(self):
        model = LatencyModel(name="m", rtt_s=0.010, bandwidth_bps=1000.0)
        # 500 bytes at 1000 B/s = 0.5s, plus half the RTT
        assert model.delay(500) == pytest.approx(0.505)

    def test_jitter_bounded(self):
        model = LatencyModel(name="m", rtt_s=0.010, jitter=0.2, seed=1)
        delays = [model.delay(0) for _ in range(100)]
        assert all(0.004 <= d <= 0.006 for d in delays)
        assert len(set(delays)) > 1  # actually jittering

    def test_apply_sleeps_and_accounts(self):
        model = LatencyModel(name="m", rtt_s=0.04)
        t0 = time.perf_counter()
        cost = model.apply(0)
        assert time.perf_counter() - t0 >= 0.015
        assert model.accounted_s == pytest.approx(cost)

    def test_accounting_without_sleep(self):
        model = LatencyModel(name="m", rtt_s=1.0, sleep=False)
        t0 = time.perf_counter()
        model.apply(0)
        assert time.perf_counter() - t0 < 0.1
        assert model.accounted_s == pytest.approx(0.5)

    def test_reset_accounting(self):
        model = LatencyModel(name="m", rtt_s=0.002)
        model.apply(0)
        model.reset_accounting()
        assert model.accounted_s == 0.0

    def test_presets(self):
        lan = make_latency("lan")
        wan = make_latency("azure-wan")
        assert wan.rtt_s > lan.rtt_s
        assert make_latency("local").delay(1000) == 0.0
        with pytest.raises(ValueError, match="unknown latency preset"):
            make_latency("martian")

    def test_transport_charges_latency(self):
        model = LatencyModel(name="m", rtt_s=0.02, jitter=0.0)
        transport = InProcessTransport(EchoServer(), latency=model)
        t0 = time.perf_counter()
        transport.request(Request("GET", "/x", {}))
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.018  # two directions x rtt/2
        assert model.accounted_s >= 0.018

    def test_wan_slower_than_lan_for_big_payloads(self):
        lan, wan = make_latency("lan"), make_latency("azure-wan")
        assert wan.delay(100_000) > lan.delay(100_000)

    def test_azure_preset_shape(self):
        assert AZURE_WAN.rtt_s == pytest.approx(0.035)
        assert AZURE_WAN.bandwidth_bps > 0
