"""The versioned /v1 surface: envelopes, cursors, legacy parity, backends."""

import threading

import pytest

from repro.net.transport import Request
from repro.server import LaminarServer
from repro.server.schema import decode_cursor, encode_cursor


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "zz46", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "zz46", "password": "pw"})
    )
    return response.body["token"]


def add_pe(server, token, name, description, user="zz46"):
    response = server.dispatch(
        Request(
            "POST",
            f"/registry/{user}/pe/add",
            {
                "peName": name,
                "peCode": f"def {name}(): pass",
                "description": description,
            },
            token=token,
        )
    )
    assert response.status == 201, response.body
    return response.body["peId"]


def add_workflow(server, token, entry, description, user="zz46"):
    response = server.dispatch(
        Request(
            "POST",
            f"/registry/{user}/workflow/add",
            {
                "entryPoint": entry,
                "workflowCode": f"def {entry}(): pass",
                "description": description,
            },
            token=token,
        )
    )
    assert response.status == 201, response.body
    return response.body["workflowId"]


class TestCursorPrimitives:
    def test_round_trip(self):
        cursor = encode_cursor("pes:1", 42)
        assert decode_cursor(cursor, "pes:1") == 42

    def test_scope_mismatch_rejected(self):
        from repro.errors import ValidationError

        cursor = encode_cursor("pes:1", 42)
        with pytest.raises(ValidationError, match="invalid cursor"):
            decode_cursor(cursor, "workflows:1")

    def test_garbage_rejected(self):
        from repro.errors import ValidationError

        for garbage in ("", "v1.!!!", "not-a-cursor", "v1." + "A" * 5):
            with pytest.raises(ValidationError, match="invalid cursor"):
                decode_cursor(garbage, "pes:1")


class TestEnvelopeValidation:
    def test_unknown_field_is_400(self, server, token):
        response = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {"query": "x", "qureyType": "text"},
                token=token,
            )
        )
        assert response.status == 400
        assert "unknown field" in response.body["message"]
        # params values render repr()'d in the §3.2.5 envelope
        assert "qureyType" in response.body["params"]["unknownFields"]

    def test_missing_query_is_400(self, server, token):
        response = server.dispatch(
            Request("POST", "/v1/registry/zz46/search", {}, token=token)
        )
        assert response.status == 400
        assert "query is required" in response.body["message"]

    def test_defaults_are_explicit_in_response(self, server, token):
        response = server.dispatch(
            Request(
                "POST", "/v1/registry/zz46/search", {"query": "x"}, token=token
            )
        )
        assert response.status == 200
        body = response.body
        assert body["apiVersion"] == "v1"
        assert body["kind"] == "both"
        assert body["queryType"] == "text"
        assert body["backend"] == "exact"
        assert body["k"] is None
        assert body["nextCursor"] is None

    @pytest.mark.parametrize(
        "patch",
        [
            {"kind": "everything"},
            {"queryType": "fuzzy"},
            {"backend": "hnsw-someday"},
            {"k": 0},
            {"k": -3},
            {"k": "five"},
            {"k": True},
            {"limit": 0},
            {"limit": 100000},
            {"cursor": 7},
            {"queryEmbedding": "not-a-list"},
            {"queryEmbedding": []},
            {"queryEmbedding": ["a", "b"]},
            {"queryEmbedding": [1.0, True]},
            {"queryType": "semantic", "queryEmbedding": [1.0, 2.0]},
        ],
    )
    def test_malformed_fields_are_400(self, server, token, patch):
        body = {"query": "x", **patch}
        response = server.dispatch(
            Request("POST", "/v1/registry/zz46/search", body, token=token)
        )
        assert response.status == 400, (patch, response.body)

    def test_listing_unknown_field_is_400(self, server, token):
        response = server.dispatch(
            Request(
                "GET", "/v1/registry/zz46/pes", {"limt": 5}, token=token
            )
        )
        assert response.status == 400
        assert "unknown field" in response.body["message"]

    def test_auth_still_enforced(self, server, token):
        response = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes", {})
        )
        assert response.status == 401


class TestListingPagination:
    def test_walk_covers_everything_without_skips_or_dupes(
        self, server, token
    ):
        ids = [
            add_pe(server, token, f"pe{i:02d}", f"element number {i}")
            for i in range(23)
        ]
        seen = []
        cursor = None
        pages = 0
        while True:
            body = {"limit": 5}
            if cursor:
                body["cursor"] = cursor
            response = server.dispatch(
                Request("GET", "/v1/registry/zz46/pes", body, token=token)
            )
            assert response.status == 200, response.body
            page = response.body
            assert page["apiVersion"] == "v1"
            assert page["count"] == len(page["items"]) <= 5
            seen.extend(item["peId"] for item in page["items"])
            pages += 1
            cursor = page["nextCursor"]
            if cursor is None:
                break
        assert pages == 5
        assert seen == sorted(ids)  # ascending, complete, no dupes

    def test_concurrent_inserts_never_skip_or_duplicate(self, server, token):
        """Rows inserted mid-walk may appear on later pages but existing
        rows are seen exactly once (the cursor invariant)."""
        before = [
            add_pe(server, token, f"first{i}", f"early record {i}")
            for i in range(10)
        ]
        response = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes", {"limit": 4}, token=token)
        )
        page1 = response.body
        # a concurrent writer lands new records between the pages
        for i in range(3):
            add_pe(server, token, f"mid{i}", f"concurrent record {i}")
        seen = [item["peId"] for item in page1["items"]]
        cursor = page1["nextCursor"]
        while cursor is not None:
            response = server.dispatch(
                Request(
                    "GET",
                    "/v1/registry/zz46/pes",
                    {"limit": 4, "cursor": cursor},
                    token=token,
                )
            )
            seen.extend(item["peId"] for item in response.body["items"])
            cursor = response.body["nextCursor"]
        assert len(seen) == len(set(seen))  # no duplicates
        assert set(before) <= set(seen)  # no pre-existing row skipped

    def test_query_string_pagination(self, server, token):
        """Standard HTTP tooling paginates via ?limit=…&cursor=…."""
        ids = [
            add_pe(server, token, f"qs{i}", f"query string record {i}")
            for i in range(7)
        ]
        response = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes?limit=4", {}, token=token)
        )
        assert response.status == 200, response.body
        page = response.body
        assert page["count"] == 4 and page["limit"] == 4
        rest = server.dispatch(
            Request(
                "GET",
                f"/v1/registry/zz46/pes?limit=4&cursor={page['nextCursor']}",
                {},
                token=token,
            )
        ).body
        walked = [item["peId"] for item in page["items"]] + [
            item["peId"] for item in rest["items"]
        ]
        assert walked == sorted(ids)

    def test_body_wins_over_query_string(self, server, token):
        for i in range(5):
            add_pe(server, token, f"bw{i}", f"precedence record {i}")
        response = server.dispatch(
            Request(
                "GET",
                "/v1/registry/zz46/pes?limit=1",
                {"limit": 3},
                token=token,
            )
        )
        assert response.body["count"] == 3

    def test_invalid_cursor_is_400(self, server, token):
        response = server.dispatch(
            Request(
                "GET",
                "/v1/registry/zz46/pes",
                {"cursor": "v1.garbage"},
                token=token,
            )
        )
        assert response.status == 400
        assert "invalid cursor" in response.body["message"]

    def test_cross_listing_cursor_is_400(self, server, token):
        for i in range(3):
            add_pe(server, token, f"pe{i}", f"desc {i}")
            add_workflow(server, token, f"wf{i}", f"wf desc {i}")
        pes = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes", {"limit": 1}, token=token)
        ).body
        assert pes["nextCursor"]
        response = server.dispatch(
            Request(
                "GET",
                "/v1/registry/zz46/workflows",
                {"cursor": pes["nextCursor"]},
                token=token,
            )
        )
        assert response.status == 400

    def test_workflow_and_users_listings_paginate(self, server, token):
        for i in range(7):
            add_workflow(server, token, f"wf{i}", f"workflow number {i}")
        page = server.dispatch(
            Request(
                "GET", "/v1/registry/zz46/workflows", {"limit": 4}, token=token
            )
        ).body
        assert page["count"] == 4 and page["nextCursor"]
        rest = server.dispatch(
            Request(
                "GET",
                "/v1/registry/zz46/workflows",
                {"limit": 4, "cursor": page["nextCursor"]},
                token=token,
            )
        ).body
        assert rest["count"] == 3 and rest["nextCursor"] is None
        users = server.dispatch(Request("GET", "/v1/users", {"limit": 10}))
        assert users.status == 200 and users.body["count"] == 1

    def test_workflow_pes_listing(self, server, token):
        pe_ids = [
            add_pe(server, token, f"linked{i}", f"linked pe {i}")
            for i in range(5)
        ]
        wf_id = add_workflow(server, token, "main", "the workflow")
        for pe_id in pe_ids:
            response = server.dispatch(
                Request(
                    "PUT",
                    f"/registry/zz46/workflow/{wf_id}/pe/{pe_id}",
                    {},
                    token=token,
                )
            )
            assert response.status == 200
        page = server.dispatch(
            Request(
                "GET",
                f"/v1/registry/zz46/workflows/{wf_id}/pes",
                {"limit": 3},
                token=token,
            )
        ).body
        assert [item["peId"] for item in page["items"]] == sorted(pe_ids)[:3]
        rest = server.dispatch(
            Request(
                "GET",
                f"/v1/registry/zz46/workflows/{wf_id}/pes",
                {"limit": 3, "cursor": page["nextCursor"]},
                token=token,
            )
        ).body
        assert [item["peId"] for item in rest["items"]] == sorted(pe_ids)[3:]

    def test_listing_items_carry_revision(self, server, token):
        """PE/workflow listing items expose the conditional-write
        counter, so a reader can feed ``ifVersion`` straight back."""
        add_pe(server, token, "pinme", "initial description")
        add_workflow(server, token, "wfpin", "workflow description")
        pes = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes", {}, token=token)
        ).body
        assert [item["revision"] for item in pes["items"]] == [1]
        wfs = server.dispatch(
            Request("GET", "/v1/registry/zz46/workflows", {}, token=token)
        ).body
        assert [item["revision"] for item in wfs["items"]] == [1]
        # a revision-bumping write (owner grant) shows up in the next
        # listing, so readers can pin ``ifVersion`` from the page alone
        server.dispatch(
            Request(
                "POST", "/auth/register", {"userName": "gr", "password": "pw"}
            )
        )
        other = server.dispatch(
            Request(
                "POST", "/auth/login", {"userName": "gr", "password": "pw"}
            )
        ).body["token"]
        grant = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/gr/pes/pinme",
                {"peCode": "def pinme(): pass"},
                token=other,
            )
        )
        assert grant.status == 200, grant.body
        after = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes", {}, token=token)
        ).body
        assert [item["revision"] for item in after["items"]] == [2]


class TestSearchEnvelope:
    def test_search_pagination_over_ranked_hits(self, server, token):
        for i in range(12):
            add_pe(server, token, f"prime{i}", f"prime helper number {i}")
        body = {
            "query": "prime helper",
            "queryType": "semantic",
            "kind": "pe",
            "limit": 5,
        }
        response = server.dispatch(
            Request("POST", "/v1/registry/zz46/search", body, token=token)
        )
        assert response.status == 200
        first = response.body
        assert first["count"] == 5 and first["nextCursor"]
        response = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {**body, "cursor": first["nextCursor"]},
                token=token,
            )
        )
        second = response.body
        assert second["count"] == 5
        ids = {h["peId"] for h in first["hits"]} | {
            h["peId"] for h in second["hits"]
        }
        assert len(ids) == 10  # disjoint pages

    @pytest.mark.parametrize("backend", ["exact", "ivf"])
    def test_paged_unbounded_search_terminates_and_covers_topk(
        self, server, token, backend
    ):
        """k=None + limit walks the whole ranking page by page with no
        skips or duplicates, for the exact backend (ranking capped at
        offset+limit per page — prefix-stable) and the approximate one
        (ranked unbounded so every page slices one consistent
        ordering)."""
        expected = {
            add_pe(server, token, f"walk{i}", f"walkable record {i}")
            for i in range(11)
        }
        seen, cursor, pages = [], None, 0
        body = {"query": "walkable", "queryType": "semantic", "kind": "pe",
                "limit": 4, "backend": backend}
        while True:
            payload = dict(body)
            if cursor:
                payload["cursor"] = cursor
            response = server.dispatch(
                Request(
                    "POST", "/v1/registry/zz46/search", payload, token=token
                )
            )
            assert response.status == 200, response.body
            seen.extend(h["peId"] for h in response.body["hits"])
            pages += 1
            cursor = response.body["nextCursor"]
            if cursor is None:
                break
            assert pages < 10  # must terminate
        assert set(seen) == expected
        assert len(seen) == len(set(seen))

    def test_search_cursor_bound_to_query_params(self, server, token):
        """A cursor minted by one search is a 400 for any other search —
        never a silently shifted hit window."""
        for i in range(8):
            add_pe(server, token, f"pe{i}", f"helper {i}")
        body = {"query": "helper", "queryType": "semantic", "kind": "pe",
                "limit": 3}
        first = server.dispatch(
            Request("POST", "/v1/registry/zz46/search", body, token=token)
        ).body
        assert first["nextCursor"]
        for patch in (
            {"query": "other words"},
            {"queryType": "code"},
            {"backend": "ivf"},
            {"k": 4},
        ):
            response = server.dispatch(
                Request(
                    "POST",
                    "/v1/registry/zz46/search",
                    {**body, **patch, "cursor": first["nextCursor"]},
                    token=token,
                )
            )
            assert response.status == 400, (patch, response.body)
            assert "invalid cursor" in response.body["message"]
        # same parameters: the cursor resumes
        second = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {**body, "cursor": first["nextCursor"]},
                token=token,
            )
        )
        assert second.status == 200

    def test_backend_selection_ivf_vs_exact(self, server, token):
        for i in range(30):
            add_pe(server, token, f"pe{i}", f"description variant {i}")
        base = {"query": "description variant 7", "queryType": "semantic",
                "kind": "pe", "k": 5}
        exact = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {**base, "backend": "exact"},
                token=token,
            )
        )
        ivf = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {**base, "backend": "ivf"},
                token=token,
            )
        )
        assert exact.status == 200 and ivf.status == 200
        assert exact.body["backend"] == "exact"
        assert ivf.body["backend"] == "ivf"
        # 30 rows is far below the IVF training floor: both serve the
        # exact scan, so the hits agree exactly
        assert exact.body["hits"] == ivf.body["hits"]

    def test_backends_discovery_endpoint(self, server):
        response = server.dispatch(Request("GET", "/v1/backends", {}))
        assert response.status == 200
        assert response.body["backends"][0] == "exact"
        assert "ivf" in response.body["backends"]
        assert "hnsw" in response.body["backends"]
        assert response.body["default"] == "exact"


class TestLegacyParity:
    """The Table-3 adapter must behave byte-identically to the seed."""

    def seed_registry(self, server, token):
        for i in range(8):
            add_pe(server, token, f"pe{i}", f"a prime checking element {i}")
            add_workflow(server, token, f"wf{i}", f"a prime workflow {i}")

    @pytest.mark.parametrize(
        "query_type,kind",
        [
            # (text, pe) serves semantic ranking on both generations
            # (the historical quirk); (text, workflow/both) diverge by
            # design now — see test_v1_text_is_bm25_legacy_unchanged
            ("text", "pe"),
            ("semantic", "pe"),
            ("semantic", "workflow"),
            ("semantic", "both"),
            ("code", "pe"),
        ],
    )
    def test_legacy_route_equals_v1_exact(self, server, token, query_type, kind):
        self.seed_registry(server, token)
        legacy = server.dispatch(
            Request(
                "GET",
                f"/registry/zz46/search/prime/type/{kind}",
                {"queryType": query_type, "k": 5},
                token=token,
            )
        )
        v1 = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {
                    "query": "prime",
                    "queryType": query_type,
                    "kind": kind,
                    "k": 5,
                    "backend": "exact",
                },
                token=token,
            )
        )
        assert legacy.status == 200 and v1.status == 200
        # identical ranking core: hits agree field for field, and the
        # legacy body keeps its historical two-key shape
        assert legacy.body["hits"] == v1.body["hits"]
        assert legacy.body["searchKind"] == v1.body["searchKind"]
        assert set(legacy.body) == {"searchKind", "hits"}

    @pytest.mark.parametrize("kind", ["workflow", "both"])
    def test_v1_text_is_bm25_legacy_unchanged(self, server, token, kind):
        """The two text surfaces now rank differently on purpose: the
        legacy route stays byte-identical to the historical Python
        scorer (through the LIKE parity adapter) while v1 serves the
        DAO's BM25 ranking — same matched records, indexed scores."""
        from repro.search.text_search import (
            text_search_pes,
            text_search_workflows,
        )

        self.seed_registry(server, token)
        user = server.registry.get_user("zz46")
        expected = []
        if kind == "both":
            expected += text_search_pes(
                "prime", server.registry.user_pes(user)
            )
        expected += text_search_workflows(
            "prime", server.registry.user_workflows(user)
        )
        if kind == "both":
            expected.sort(key=lambda m: (-m.score, m.kind, m.entity_id))
        legacy = server.dispatch(
            Request(
                "GET",
                f"/registry/zz46/search/prime/type/{kind}",
                {"queryType": "text"},
                token=token,
            )
        )
        assert legacy.status == 200
        assert legacy.body["hits"] == [m.to_json() for m in expected]

        v1 = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {"query": "prime", "queryType": "text", "kind": kind},
                token=token,
            )
        )
        assert v1.status == 200
        # same match set, BM25 order/scores
        legacy_keys = {(h["kind"], h["id"]) for h in legacy.body["hits"]}
        v1_keys = {(h["kind"], h["id"]) for h in v1.body["hits"]}
        assert v1_keys == legacy_keys
        scores = [h["score"] for h in v1.body["hits"]]
        assert scores == sorted(scores, reverse=True)

    def test_legacy_error_envelopes_unchanged(self, server, token):
        bad_type = server.dispatch(
            Request(
                "GET",
                "/registry/zz46/search/x/type/everything",
                {},
                token=token,
            )
        )
        assert bad_type.status == 400
        assert "unknown search type" in bad_type.body["message"]
        bad_query_type = server.dispatch(
            Request(
                "GET",
                "/registry/zz46/search/x/type/pe",
                {"queryType": "fuzzy"},
                token=token,
            )
        )
        assert bad_query_type.status == 400
        assert "unknown query type" in bad_query_type.body["message"]

    def test_legacy_listing_unpaginated(self, server, token):
        """/registry/{user}/pe/all still returns the whole collection."""
        ids = [
            add_pe(server, token, f"pe{i}", f"desc {i}") for i in range(12)
        ]
        response = server.dispatch(
            Request("GET", "/registry/zz46/pe/all", {}, token=token)
        )
        assert response.status == 200
        assert [pe["peId"] for pe in response.body["pes"]] == ids


class TestConcurrentPagination:
    def test_parallel_walks_with_writer(self, server, token):
        """Two concurrent cursor walks against a mutating registry each
        observe every pre-existing record exactly once."""
        before = [
            add_pe(server, token, f"base{i}", f"baseline record {i}")
            for i in range(20)
        ]
        results: dict[int, list] = {}
        errors: list[Exception] = []

        def walker(slot):
            try:
                seen, cursor = [], None
                while True:
                    body = {"limit": 3}
                    if cursor:
                        body["cursor"] = cursor
                    response = server.dispatch(
                        Request(
                            "GET",
                            "/v1/registry/zz46/pes",
                            body,
                            token=token,
                        )
                    )
                    assert response.status == 200, response.body
                    seen.extend(
                        item["peId"] for item in response.body["items"]
                    )
                    cursor = response.body["nextCursor"]
                    if cursor is None:
                        break
                results[slot] = seen
            except Exception as exc:  # pragma: no cover - failure report
                errors.append(exc)

        def writer():
            try:
                for i in range(6):
                    add_pe(server, token, f"new{i}", f"late record {i}")
            except Exception as exc:  # pragma: no cover - failure report
                errors.append(exc)

        threads = [
            threading.Thread(target=walker, args=(0,)),
            threading.Thread(target=walker, args=(1,)),
            threading.Thread(target=writer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for seen in results.values():
            assert len(seen) == len(set(seen))
            assert set(before) <= set(seen)
            assert seen == sorted(seen)
