"""Tests for the path router and URL encoding."""

import pytest

from repro.errors import NotFoundError
from repro.net.transport import Response
from repro.server.api import Router, quote_segment


def _handler(name):
    def handle(request, params):
        return Response(200, {"handler": name, "params": params})

    return handle


@pytest.fixture()
def router():
    r = Router()
    r.add("GET", "/registry/{user}/pe/all", _handler("all"))
    r.add("GET", "/registry/{user}/pe/id/{id}", _handler("by_id"))
    r.add("POST", "/registry/{user}/pe/add", _handler("add"))
    r.add("GET", "/registry/{user}/search/{search}/type/{type}", _handler("search"))
    return r


class TestResolution:
    def test_literal_and_param_segments(self, router):
        handler, params = router.resolve("GET", "/registry/zz46/pe/all")
        assert handler(None, params).body["handler"] == "all"
        assert params == {"user": "zz46"}

    def test_multiple_params(self, router):
        _, params = router.resolve("GET", "/registry/zz46/pe/id/7")
        assert params == {"user": "zz46", "id": "7"}

    def test_method_disambiguates(self, router):
        handler, _ = router.resolve("POST", "/registry/zz46/pe/add")
        assert handler(None, {}).body["handler"] == "add"

    def test_wrong_method_is_405_with_allowed_set(self, router):
        from repro.errors import MethodNotAllowedError

        with pytest.raises(MethodNotAllowedError, match="not allowed") as exc:
            router.resolve("DELETE", "/registry/zz46/pe/all")
        assert exc.value.code == 405
        assert exc.value.allowed == ["GET"]

    def test_unknown_path_not_found(self, router):
        with pytest.raises(NotFoundError):
            router.resolve("GET", "/registry/zz46/nothing")

    def test_length_mismatch_not_found(self, router):
        with pytest.raises(NotFoundError):
            router.resolve("GET", "/registry/zz46/pe")

    def test_trailing_slash_tolerated(self, router):
        _, params = router.resolve("GET", "/registry/zz46/pe/all/")
        assert params == {"user": "zz46"}

    def test_endpoints_lists_routes(self, router):
        endpoints = router.endpoints()
        assert ("GET", "/registry/{user}/pe/all") in endpoints
        assert len(endpoints) == 4


class TestSpecificity:
    """Literal segments beat {param} captures, whatever the add order."""

    def test_literal_beats_param_when_added_later(self):
        r = Router()
        r.add("GET", "/registry/{user}/pe/{name}", _handler("by_name"))
        r.add("GET", "/registry/{user}/pe/all", _handler("all"))
        handler, params = r.resolve("GET", "/registry/u/pe/all")
        assert handler(None, params).body["handler"] == "all"
        handler, params = r.resolve("GET", "/registry/u/pe/other")
        assert handler(None, params).body["handler"] == "by_name"
        assert params["name"] == "other"

    def test_literal_beats_param_when_added_first(self):
        r = Router()
        r.add("GET", "/registry/{user}/pe/all", _handler("all"))
        r.add("GET", "/registry/{user}/pe/{name}", _handler("by_name"))
        handler, params = r.resolve("GET", "/registry/u/pe/all")
        assert handler(None, params).body["handler"] == "all"

    def test_earliest_literal_position_wins(self):
        r = Router()
        r.add("GET", "/{a}/users/list", _handler("late-literal"))
        r.add("GET", "/v1/{b}/list", _handler("early-literal"))
        handler, params = r.resolve("GET", "/v1/users/list")
        # first segment literal ('v1') outranks first segment param
        assert handler(None, params).body["handler"] == "early-literal"

    def test_v1_and_legacy_patterns_cannot_shadow(self):
        # same segment count: the /v1 literal prefix must win for /v1
        # paths, the legacy pattern for everything else
        r = Router()
        r.add("GET", "/{x}/registry/search", _handler("legacy-ish"))
        r.add("GET", "/v1/registry/search", _handler("v1"))
        handler, params = r.resolve("GET", "/v1/registry/search")
        assert handler(None, params).body["handler"] == "v1"
        handler, params = r.resolve("GET", "/other/registry/search")
        assert handler(None, params).body["handler"] == "legacy-ish"

    def test_buckets_by_method_and_length(self):
        r = Router()
        r.add("GET", "/a/{x}", _handler("get2"))
        r.add("POST", "/a/{x}", _handler("post2"))
        r.add("GET", "/a/{x}/{y}", _handler("get3"))
        handler, _ = r.resolve("POST", "/a/1")
        assert handler(None, {}).body["handler"] == "post2"
        handler, _ = r.resolve("GET", "/a/1/2")
        assert handler(None, {}).body["handler"] == "get3"

    def test_registration_order_breaks_specificity_ties(self):
        r = Router()
        r.add("GET", "/x/{a}", _handler("first"))
        r.add("GET", "/x/{b}", _handler("second"))
        handler, _ = r.resolve("GET", "/x/anything")
        assert handler(None, {}).body["handler"] == "first"


class TestEncoding:
    def test_quote_segment_escapes_slash_and_space(self):
        assert "/" not in quote_segment("a/b c")
        assert " " not in quote_segment("a/b c")

    def test_search_string_with_spaces_round_trips(self, router):
        query = "A PE that checks if a number is prime"
        path = f"/registry/zz46/search/{quote_segment(query)}/type/pe"
        _, params = router.resolve("GET", path)
        assert params["search"] == query
        assert params["type"] == "pe"

    def test_code_query_round_trips(self, router):
        query = "random.randint(1, 1000)"
        path = f"/registry/zz46/search/{quote_segment(query)}/type/pe"
        _, params = router.resolve("GET", path)
        assert params["search"] == query
