"""Tests for the path router and URL encoding."""

import pytest

from repro.errors import NotFoundError
from repro.net.transport import Request, Response
from repro.server.api import Router, quote_segment


def _handler(name):
    def handle(request, params):
        return Response(200, {"handler": name, "params": params})

    return handle


@pytest.fixture()
def router():
    r = Router()
    r.add("GET", "/registry/{user}/pe/all", _handler("all"))
    r.add("GET", "/registry/{user}/pe/id/{id}", _handler("by_id"))
    r.add("POST", "/registry/{user}/pe/add", _handler("add"))
    r.add("GET", "/registry/{user}/search/{search}/type/{type}", _handler("search"))
    return r


class TestResolution:
    def test_literal_and_param_segments(self, router):
        handler, params = router.resolve("GET", "/registry/zz46/pe/all")
        assert handler(None, params).body["handler"] == "all"
        assert params == {"user": "zz46"}

    def test_multiple_params(self, router):
        _, params = router.resolve("GET", "/registry/zz46/pe/id/7")
        assert params == {"user": "zz46", "id": "7"}

    def test_method_disambiguates(self, router):
        handler, _ = router.resolve("POST", "/registry/zz46/pe/add")
        assert handler(None, {}).body["handler"] == "add"

    def test_wrong_method_not_found(self, router):
        with pytest.raises(NotFoundError, match="no route"):
            router.resolve("DELETE", "/registry/zz46/pe/all")

    def test_unknown_path_not_found(self, router):
        with pytest.raises(NotFoundError):
            router.resolve("GET", "/registry/zz46/nothing")

    def test_length_mismatch_not_found(self, router):
        with pytest.raises(NotFoundError):
            router.resolve("GET", "/registry/zz46/pe")

    def test_trailing_slash_tolerated(self, router):
        _, params = router.resolve("GET", "/registry/zz46/pe/all/")
        assert params == {"user": "zz46"}

    def test_endpoints_lists_routes(self, router):
        endpoints = router.endpoints()
        assert ("GET", "/registry/{user}/pe/all") in endpoints
        assert len(endpoints) == 4


class TestEncoding:
    def test_quote_segment_escapes_slash_and_space(self):
        assert "/" not in quote_segment("a/b c")
        assert " " not in quote_segment("a/b c")

    def test_search_string_with_spaces_round_trips(self, router):
        query = "A PE that checks if a number is prime"
        path = f"/registry/zz46/search/{quote_segment(query)}/type/pe"
        _, params = router.resolve("GET", path)
        assert params["search"] == query
        assert params["type"] == "pe"

    def test_code_query_round_trips(self, router):
        query = "random.randint(1, 1000)"
        path = f"/registry/zz46/search/{quote_segment(query)}/type/pe"
        _, params = router.resolve("GET", path)
        assert params["search"] == query
