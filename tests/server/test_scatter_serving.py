"""Scatter/gather wired into a serving LaminarServer.

The scatter backend is per-server (mirrored from its registry service),
selectable by name through the v1 search envelope like any other
backend, and bitwise-identical to the exact reference — including when
its shard workers sit behind a transport, and degrading (never failing)
when they are unreachable.
"""

import pytest

from repro.errors import TransportError
from repro.net.transport import InProcessTransport, Request
from repro.server import LaminarServer
from repro.server.shardnode import ShardNode


class _DeadTransport:
    def request(self, request):
        raise TransportError("shard node is down")


def _login(server, user="sg"):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": user, "password": "pw"})
    )
    reply = server.dispatch(
        Request("POST", "/auth/login", {"userName": user, "password": "pw"})
    )
    return reply.body["token"]


def _seed_pes(server, token, user="sg", n=8):
    for i in range(n):
        reply = server.dispatch(
            Request(
                "POST",
                f"/registry/{user}/pe/add",
                {
                    "peName": f"worker{i}",
                    "peCode": f"def worker{i}(data): return data + {i}",
                    "description": f"adds {i} to every incoming value",
                },
                token=token,
            )
        )
        assert reply.status in (200, 201), reply.body


def _search(server, token, backend, user="sg", **extra):
    reply = server.dispatch(
        Request(
            "POST",
            f"/v1/registry/{user}/search",
            {
                "query": "add a number to the stream",
                "kind": "pe",
                "backend": backend,
                **extra,
            },
            token=token,
        )
    )
    assert reply.status == 200, reply.body
    return reply.body


@pytest.fixture()
def scatter_server(fast_bundle):
    server = LaminarServer(models=fast_bundle, scatter_shards=3)
    token = _login(server)
    _seed_pes(server, token)
    return server, token


class TestScatterBackendSelection:
    def test_backends_listing_includes_scatter(self, scatter_server):
        server, token = scatter_server
        reply = server.dispatch(Request("GET", "/v1/backends", {}, token=token))
        names = reply.body["backends"]
        assert "exact" in names and "scatter" in names
        assert names[0] == "exact"  # the reference backend leads
        assert reply.body["default"] == "exact"

    def test_plain_server_has_no_scatter(self, fast_bundle):
        server = LaminarServer(models=fast_bundle)
        assert "scatter" not in server.backends

    def test_scatter_results_identical_to_exact(self, scatter_server):
        server, token = scatter_server
        for k in (1, 3, None):
            exact = _search(server, token, "exact", k=k)
            scatter = _search(server, token, "scatter", k=k)
            assert scatter["hits"] == exact["hits"]
            assert scatter["backend"] == "scatter"

    def test_mirror_tracks_removals(self, scatter_server):
        server, token = scatter_server
        server.dispatch(
            Request(
                "DELETE", "/registry/sg/pe/remove/name/worker0", {}, token=token
            )
        )
        exact = _search(server, token, "exact")
        scatter = _search(server, token, "scatter")
        assert scatter["hits"] == exact["hits"]
        assert all(i["peName"] != "worker0" for i in scatter["hits"])

    def test_mirror_bulk_loads_preexisting_records(self, fast_bundle):
        # records registered BEFORE the scatter server starts must be
        # searchable: attach_mirror bulk-loads from the index snapshot
        plain = LaminarServer(models=fast_bundle)
        token = _login(plain)
        _seed_pes(plain, token, n=4)
        sharded = LaminarServer(
            dao=plain.registry.dao, models=fast_bundle, scatter_shards=2
        )
        token2 = _login(sharded)
        exact = _search(sharded, token2, "exact")
        scatter = _search(sharded, token2, "scatter")
        assert scatter["hits"] == exact["hits"]
        assert scatter["hits"]  # non-empty: the bulk load happened


class TestRemoteShards:
    def test_remote_shard_nodes_serve_identically(self, fast_bundle):
        transports = [
            InProcessTransport(ShardNode(worker_id=i)) for i in range(2)
        ]
        server = LaminarServer(
            models=fast_bundle, shard_transports=transports
        )
        token = _login(server)
        _seed_pes(server, token)
        exact = _search(server, token, "exact")
        scatter = _search(server, token, "scatter")
        assert scatter["hits"] == exact["hits"]

    def test_downed_shard_degrades_to_fallback_not_failure(self, fast_bundle):
        server = LaminarServer(
            models=fast_bundle, shard_transports=[_DeadTransport()]
        )
        token = _login(server)
        _seed_pes(server, token)  # mutations to the dead shard mark dirty
        exact = _search(server, token, "exact")
        degraded = _search(server, token, "scatter")
        # the REQUEST succeeds — the backend degrades to the exact
        # brute-force fallback and returns the same (correct) results
        assert degraded["hits"] == exact["hits"]
        stats = server.backends["scatter"].stats()
        assert stats["degradedQueries"] >= 1

    def test_mixed_local_and_remote_workers(self, fast_bundle):
        server = LaminarServer(
            models=fast_bundle,
            scatter_shards=2,
            shard_transports=[InProcessTransport(ShardNode(worker_id=9))],
        )
        token = _login(server)
        _seed_pes(server, token)
        assert len(server.backends["scatter"].workers) == 3
        exact = _search(server, token, "exact")
        scatter = _search(server, token, "scatter")
        assert scatter["hits"] == exact["hits"]


class TestCliWiring:
    def test_serve_parser_accepts_shards(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--shards", "4"])
        assert args.shards == 4
        assert build_parser().parse_args(["serve"]).shards == 0

    def test_build_server_wires_scatter(self, tmp_path):
        from repro.cli import _build_server

        server = _build_server(str(tmp_path / "cli.db"), fit=False, shards=2)
        assert "scatter" in server.backends
        assert len(server.backends["scatter"].workers) == 2
        server.registry.dao.close()
