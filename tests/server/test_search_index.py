"""End-to-end: /registry/{user}/search served from the vector index.

Covers the wiring chain controller -> service -> index: registrations
populate the per-user shards, removals evict them mid-session, and the
search endpoint's results always reflect the live registry.
"""

import pytest

from repro.net.transport import Request
from repro.search import KIND_CODE, KIND_DESC, KIND_WORKFLOW
from repro.server import LaminarServer


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "ix", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "ix", "password": "pw"})
    )
    return response.body["token"]


def add_pe(server, token, name, description, source=""):
    response = server.dispatch(
        Request(
            "POST",
            "/registry/ix/pe/add",
            {
                "peName": name,
                "peCode": "eA==",
                "description": description,
                "peSource": source,
            },
            token=token,
        )
    )
    assert response.status == 201
    return response.body["peId"]


def search(server, token, query, search_type="pe", query_type="semantic", k=None):
    body = {"queryType": query_type}
    if k is not None:
        body["k"] = k
    response = server.dispatch(
        Request(
            "GET",
            f"/registry/ix/search/{query}/type/{search_type}",
            body,
            token=token,
        )
    )
    assert response.status == 200
    return response.body["hits"]


class TestIndexMaintenance:
    def test_registration_populates_shards(self, server, token):
        pe_id = add_pe(server, token, "Summer", "adds numbers together")
        user_id = server.registry.get_user("ix").user_id
        assert server.index.contains(user_id, KIND_DESC, pe_id)
        assert server.index.contains(user_id, KIND_CODE, pe_id)

    def test_workflow_registration_populates_shard(self, server, token):
        response = server.dispatch(
            Request(
                "POST",
                "/registry/ix/workflow/add",
                {
                    "entryPoint": "sumflow",
                    "workflowCode": "eA==",
                    "description": "summing workflow",
                },
                token=token,
            )
        )
        assert response.status == 201
        user_id = server.registry.get_user("ix").user_id
        assert server.index.contains(
            user_id, KIND_WORKFLOW, response.body["workflowId"]
        )

    def test_search_hits_come_from_index(self, server, token):
        add_pe(server, token, "Summer", "adds numbers together")
        add_pe(server, token, "Prime", "checks whether a number is prime")
        hits = search(server, token, "prime number check")
        assert hits and hits[0]["peName"] == "Prime"

    def test_removed_pe_absent_mid_session(self, server, token):
        """The ISSUE's end-to-end criterion: a PE removed mid-session
        disappears from subsequent /registry/{user}/search results."""
        keep_id = add_pe(server, token, "Summer", "adds numbers together")
        drop_id = add_pe(server, token, "Prime", "checks whether a number is prime")

        before = {h["peId"] for h in search(server, token, "number")}
        assert {keep_id, drop_id} <= before

        response = server.dispatch(
            Request(
                "DELETE",
                f"/registry/ix/pe/remove/id/{drop_id}",
                token=token,
            )
        )
        assert response.status == 200

        after = {h["peId"] for h in search(server, token, "number")}
        assert drop_id not in after
        assert keep_id in after

        user_id = server.registry.get_user("ix").user_id
        assert not server.index.contains(user_id, KIND_DESC, drop_id)
        assert not server.index.contains(user_id, KIND_CODE, drop_id)

    def test_removed_workflow_absent_mid_session(self, server, token):
        for entry in ("alpha", "beta"):
            server.dispatch(
                Request(
                    "POST",
                    "/registry/ix/workflow/add",
                    {
                        "entryPoint": entry,
                        "workflowCode": entry.encode("ascii").hex(),
                        "description": f"workflow {entry}",
                    },
                    token=token,
                )
            )
        response = server.dispatch(
            Request("DELETE", "/registry/ix/workflow/remove/name/alpha", token=token)
        )
        assert response.status == 200
        hits = search(server, token, "workflow", search_type="workflow")
        assert all(h["entryPoint"] != "alpha" for h in hits)

    def test_code_search_served_from_index(self, server, token):
        add_pe(
            server,
            token,
            "Randomizer",
            "random numbers",
            source="class Randomizer:\n    def run(self):\n"
            "        return random.randint(1, 1000)\n",
        )
        add_pe(
            server,
            token,
            "Sorter",
            "sorts lists",
            source="class Sorter:\n    def run(self, xs):\n"
            "        return sorted(xs)\n",
        )
        hits = search(server, token, "random.randint(1, 1000)", query_type="code")
        assert hits and hits[0]["peName"] == "Randomizer"

    def test_other_users_shards_untouched(self, server, token):
        add_pe(server, token, "Summer", "adds numbers together")
        server.dispatch(
            Request("POST", "/auth/register", {"userName": "zz", "password": "pw"})
        )
        other_token = server.dispatch(
            Request("POST", "/auth/login", {"userName": "zz", "password": "pw"})
        ).body["token"]
        response = server.dispatch(
            Request(
                "GET",
                "/registry/zz/search/numbers/type/pe",
                {"queryType": "semantic"},
                token=other_token,
            )
        )
        assert response.status == 200
        assert response.body["hits"] == []

    def test_shared_pe_removal_only_evicts_caller(self, server, token):
        """Dedup makes two owners share one PE; removal by one owner must
        keep the other owner's shard entry."""
        pe_id = add_pe(server, token, "Shared", "a shared processing element")
        server.dispatch(
            Request("POST", "/auth/register", {"userName": "zz", "password": "pw"})
        )
        other_token = server.dispatch(
            Request("POST", "/auth/login", {"userName": "zz", "password": "pw"})
        ).body["token"]
        response = server.dispatch(
            Request(
                "POST",
                "/registry/zz/pe/add",
                {
                    "peName": "Shared",
                    "peCode": "eA==",
                    "description": "a shared processing element",
                },
                token=other_token,
            )
        )
        assert response.body["peId"] == pe_id  # deduped, co-owned

        server.dispatch(
            Request("DELETE", f"/registry/ix/pe/remove/id/{pe_id}", token=token)
        )
        ix_id = server.registry.get_user("ix").user_id
        zz_id = server.registry.get_user("zz").user_id
        assert not server.index.contains(ix_id, KIND_DESC, pe_id)
        assert server.index.contains(zz_id, KIND_DESC, pe_id)


class TestBulkLoadFromDao:
    def test_sqlite_registry_is_bulk_indexed_on_attach(self, fast_bundle, tmp_path):
        from repro.registry.dao import SqliteDAO

        db = tmp_path / "reg.db"
        first = LaminarServer(dao=SqliteDAO(db), models=fast_bundle)
        first.dispatch(
            Request("POST", "/auth/register", {"userName": "ix", "password": "pw"})
        )
        token = first.dispatch(
            Request("POST", "/auth/login", {"userName": "ix", "password": "pw"})
        ).body["token"]
        pe_id = add_pe(first, token, "Summer", "adds numbers together")
        first.registry.dao.close()

        # a fresh server over the same DB: shards rebuilt at attach time
        second = LaminarServer(dao=SqliteDAO(db), models=fast_bundle)
        user_id = second.registry.get_user("ix").user_id
        assert second.index.contains(user_id, KIND_DESC, pe_id)
        token2 = second.dispatch(
            Request("POST", "/auth/login", {"userName": "ix", "password": "pw"})
        ).body["token"]
        hits = search(second, token2, "adds numbers")
        assert [h["peId"] for h in hits] == [pe_id]
