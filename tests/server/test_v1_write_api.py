"""The v1 write surface: envelopes, idempotency, conditional writes,
bulk registration, legacy adapter parity and the router's 405 contract."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.net.transport import Request
from repro.server import LaminarServer


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "zz46", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "zz46", "password": "pw"})
    )
    return response.body["token"]


def put_pe(server, token, name, body=None, user="zz46"):
    payload = {"peCode": f"def {name}(): pass"}
    payload.update(body or {})
    return server.dispatch(
        Request(
            "PUT", f"/v1/registry/{user}/pes/{name}", payload, token=token
        )
    )


class TestWriteEnvelopes:
    def test_register_defaults_and_envelope_shape(self, server, token):
        response = put_pe(server, token, "alpha", {"description": "first"})
        assert response.status == 201, response.body
        body = response.body
        assert body["apiVersion"] == "v1"
        assert body["op"] == "register" and body["kind"] == "pe"
        assert body["count"] == 1 and not body["removed"]
        item = body["items"][0]
        assert item["peName"] == "alpha"
        assert item["revision"] == 1 and item["created"] is True
        assert body["registryVersion"] == 1
        assert body["idempotencyKey"] is None

    @pytest.mark.parametrize(
        "patch",
        [
            {"peNmae": "typo"},
            {"peCode": ""},
            {"peCode": 7},
            {"peImports": "numpy"},
            {"peImports": [1]},
            {"descEmbedding": []},
            {"descEmbedding": ["a"]},
            {"codeEmbedding": "x"},
            {"ifVersion": -1},
            {"ifVersion": True},
            {"ifVersion": "latest"},
            {"idempotencyKey": ""},
            {"idempotencyKey": 7},
            {"idempotencyKey": "k" * 201},
        ],
    )
    def test_malformed_register_fields_are_400(self, server, token, patch):
        body = {"peCode": "def a(): pass", **patch}
        response = server.dispatch(
            Request("PUT", "/v1/registry/zz46/pes/a", body, token=token)
        )
        assert response.status == 400, (patch, response.body)

    def test_body_name_must_agree_with_path(self, server, token):
        response = put_pe(server, token, "a", {"peName": "b"})
        assert response.status == 400
        assert "disagrees with the path" in response.body["message"]
        # agreeing body name is fine
        assert put_pe(server, token, "a", {"peName": "a"}).status == 201

    def test_workflow_register_and_validation(self, server, token):
        response = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/zz46/workflows/wf1",
                {"workflowCode": "def wf1(): pass", "peIds": [1, "2"]},
                token=token,
            )
        )
        assert response.status == 400  # peIds must be integers
        response = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/zz46/workflows/wf1",
                {"workflowCode": "def wf1(): pass", "description": "flow"},
                token=token,
            )
        )
        assert response.status == 201
        item = response.body["items"][0]
        assert item["entryPoint"] == "wf1" and item["created"] is True

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"items": []},
            {"items": "nope"},
            {"items": [{"peCode": "x"}]},  # peName required per item
            {"items": [{"peName": "a", "peCode": "x", "ifVersion": 1}]},
            {"items": [{"peName": "a", "peCode": "x", "idempotencyKey": "k"}]},
            {"items": [["not", "an", "object"]]},
            {"items": [{"peName": "a", "peCode": "x"}], "extra": 1},
        ],
    )
    def test_malformed_bulk_bodies_are_400(self, server, token, body):
        response = server.dispatch(
            Request("POST", "/v1/registry/zz46/pes:bulk", body, token=token)
        )
        assert response.status == 400, (body, response.body)

    def test_delete_unknown_field_is_400(self, server, token):
        put_pe(server, token, "victim")
        response = server.dispatch(
            Request(
                "DELETE",
                "/v1/registry/zz46/pes/victim",
                {"force": True},
                token=token,
            )
        )
        assert response.status == 400

    def test_auth_enforced_on_writes(self, server, token):
        response = server.dispatch(
            Request("PUT", "/v1/registry/zz46/pes/a", {"peCode": "x"})
        )
        assert response.status == 401


class TestConditionalWrites:
    def test_create_only_if_version_zero(self, server, token):
        assert put_pe(server, token, "cas", {"ifVersion": 0}).status == 201
        # the record now exists at revision 1: create-only must fail
        response = put_pe(
            server, token, "cas", {"peCode": "def cas(): v2", "ifVersion": 0}
        )
        assert response.status == 412
        assert response.body["error"] == "PreconditionFailed"

    def test_matching_revision_passes_and_bumps(self, server, token):
        put_pe(server, token, "rev")
        # same identity re-registered by the caller: no mutation, still
        # revision 1
        response = put_pe(server, token, "rev", {"ifVersion": 1})
        assert response.status == 200  # dedup: nothing created
        assert response.body["items"][0]["created"] is False
        assert response.body["items"][0]["revision"] == 1

    def test_owner_grant_bumps_revision(self, server, token):
        put_pe(server, token, "shared")
        server.dispatch(
            Request(
                "POST", "/auth/register", {"userName": "other", "password": "pw"}
            )
        )
        other = server.dispatch(
            Request(
                "POST", "/auth/login", {"userName": "other", "password": "pw"}
            )
        ).body["token"]
        response = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/other/pes/shared",
                {"peCode": "def shared(): pass"},
                token=other,
            )
        )
        assert response.status == 200
        item = response.body["items"][0]
        assert item["created"] is False and item["revision"] == 2
        assert sorted(item["owners"]) == [1, 2]

    def test_stale_if_version_leaves_registry_untouched(self, server, token):
        put_pe(server, token, "guard")
        before = server.registry.dao.mutation_counter()
        response = put_pe(
            server, token, "guard", {"peCode": "def guard(): v2", "ifVersion": 7}
        )
        assert response.status == 412
        assert server.registry.dao.mutation_counter() == before

    def test_delete_if_version(self, server, token):
        put_pe(server, token, "doomed")
        response = server.dispatch(
            Request(
                "DELETE",
                "/v1/registry/zz46/pes/doomed",
                {"ifVersion": 9},
                token=token,
            )
        )
        assert response.status == 412
        response = server.dispatch(
            Request(
                "DELETE",
                "/v1/registry/zz46/pes/doomed",
                {"ifVersion": 1},
                token=token,
            )
        )
        assert response.status == 200 and response.body["removed"] is True
        # gone now
        response = server.dispatch(
            Request("DELETE", "/v1/registry/zz46/pes/doomed", {}, token=token)
        )
        assert response.status == 404

    def test_bulk_if_version_pins_mutation_counter(self, server, token):
        put_pe(server, token, "seed")
        counter = server.registry.dao.mutation_counter()
        stale = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/pes:bulk",
                {
                    "items": [{"peName": "b1", "peCode": "def b1(): pass"}],
                    "ifVersion": counter + 5,
                },
                token=token,
            )
        )
        assert stale.status == 412
        fresh = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/pes:bulk",
                {
                    "items": [{"peName": "b1", "peCode": "def b1(): pass"}],
                    "ifVersion": counter,
                },
                token=token,
            )
        )
        assert fresh.status == 201


class TestUpsert:
    """A v1 PUT with changed content supersedes the caller's name
    binding — it never leaves a stale record shadowing the new one."""

    def test_put_changed_content_replaces_the_name_binding(self, server, token):
        first = put_pe(server, token, "evolve", {"peCode": "def evolve(): v1"})
        old_id = first.body["items"][0]["peId"]
        second = put_pe(
            server, token, "evolve",
            {"peCode": "def evolve(): v2", "ifVersion": 1},
        )
        assert second.status == 201, second.body
        new_id = second.body["items"][0]["peId"]
        assert new_id != old_id
        # by-name reads resolve to the NEW content...
        read = server.dispatch(
            Request("GET", "/registry/zz46/pe/name/evolve", {}, token=token)
        )
        assert read.body["peId"] == new_id
        assert read.body["peCode"] == "def evolve(): v2"
        # ...and the superseded record is gone (sole owner)
        stale = server.dispatch(
            Request("GET", f"/registry/zz46/pe/id/{old_id}", {}, token=token)
        )
        assert stale.status == 404
        # delete-by-name removes the record the PUT stored
        server.dispatch(
            Request("DELETE", "/v1/registry/zz46/pes/evolve", {}, token=token)
        )
        assert (
            server.dispatch(
                Request("GET", "/registry/zz46/pe/name/evolve", {}, token=token)
            ).status
            == 404
        )

    def test_put_never_rewrites_another_tenants_record(self, server, token):
        put_pe(server, token, "joint", {"peCode": "def joint(): shared"})
        server.dispatch(
            Request(
                "POST", "/auth/register", {"userName": "b", "password": "pw"}
            )
        )
        other = server.dispatch(
            Request("POST", "/auth/login", {"userName": "b", "password": "pw"})
        ).body["token"]
        joined = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/b/pes/joint",
                {"peCode": "def joint(): shared"},
                token=other,
            )
        )
        shared_id = joined.body["items"][0]["peId"]
        # user b rewrites their binding; zz46's record must survive
        forked = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/b/pes/joint",
                {"peCode": "def joint(): mine"},
                token=other,
            )
        )
        assert forked.status == 201
        assert forked.body["items"][0]["peId"] != shared_id
        original = server.dispatch(
            Request("GET", "/registry/zz46/pe/name/joint", {}, token=token)
        )
        assert original.status == 200
        assert original.body["peId"] == shared_id
        assert original.body["peCode"] == "def joint(): shared"
        assert original.body["owners"] == [1]

    def test_metadata_only_put_revises_in_place(self, server, token):
        """Same code + new description is an in-place revision — never a
        silently discarded no-op."""
        first = put_pe(
            server, token, "meta",
            {"peCode": "def meta(): pass", "description": "first words"},
        )
        pe_id = first.body["items"][0]["peId"]
        second = put_pe(
            server, token, "meta",
            {"peCode": "def meta(): pass", "description": "second words"},
        )
        assert second.status == 200, second.body
        item = second.body["items"][0]
        assert item["peId"] == pe_id  # id stable: same identity
        assert item["created"] is False
        assert item["revision"] == 2  # bumped
        assert item["description"] == "second words"
        read = server.dispatch(
            Request("GET", "/registry/zz46/pe/name/meta", {}, token=token)
        )
        assert read.body["description"] == "second words"
        # a truly identical PUT is still the no-op (no revision bump)
        third = put_pe(
            server, token, "meta",
            {"peCode": "def meta(): pass", "description": "second words"},
        )
        assert third.body["items"][0]["revision"] == 2

    def test_legacy_add_keeps_the_historical_fork_behaviour(self, server, token):
        """POST /pe/add never upserts: same name + different code stores
        a second record, exactly like the seed."""
        server.dispatch(
            Request(
                "POST",
                "/registry/zz46/pe/add",
                {"peName": "forked", "peCode": "def forked(): v1"},
                token=token,
            )
        )
        server.dispatch(
            Request(
                "POST",
                "/registry/zz46/pe/add",
                {"peName": "forked", "peCode": "def forked(): v2"},
                token=token,
            )
        )
        listing = server.dispatch(
            Request("GET", "/registry/zz46/pe/all", {}, token=token)
        )
        names = [pe["peName"] for pe in listing.body["pes"]]
        assert names.count("forked") == 2


class TestIdempotency:
    def test_replay_returns_stored_response_verbatim(self, server, token):
        body = {
            "peCode": "def idem(): pass",
            "description": "retry me",
            "idempotencyKey": "key-1",
        }
        first = put_pe(server, token, "idem", body)
        assert first.status == 201
        counter = server.registry.dao.mutation_counter()
        replay = put_pe(server, token, "idem", body)
        assert replay.status == first.status
        assert replay.body == first.body  # verbatim, including registryVersion
        assert replay.headers.get("Idempotent-Replay") == "true"
        # observable no-op: the registry mutation counter did not move
        assert server.registry.dao.mutation_counter() == counter

    def test_fingerprint_mismatch_is_409(self, server, token):
        body = {"peCode": "def fp(): pass", "idempotencyKey": "key-2"}
        assert put_pe(server, token, "fp", body).status == 201
        conflict = put_pe(
            server,
            token,
            "fp",
            {"peCode": "def fp(): DIFFERENT", "idempotencyKey": "key-2"},
        )
        assert conflict.status == 409
        assert conflict.body["error"] == "IdempotencyConflict"

    def test_keys_are_scoped_per_user(self, server, token):
        body = {"peCode": "def scoped(): pass", "idempotencyKey": "shared-key"}
        assert put_pe(server, token, "scoped", body).status == 201
        server.dispatch(
            Request(
                "POST", "/auth/register", {"userName": "peer", "password": "pw"}
            )
        )
        peer = server.dispatch(
            Request("POST", "/auth/login", {"userName": "peer", "password": "pw"})
        ).body["token"]
        # same key, different user: a fresh write, not a replay/conflict
        response = server.dispatch(
            Request(
                "PUT",
                "/v1/registry/peer/pes/scoped",
                dict(body),
                token=peer,
            )
        )
        assert response.status == 200  # §3.1 dedup grants ownership
        assert response.headers.get("Idempotent-Replay") is None

    def test_delete_replay_after_removal(self, server, token):
        put_pe(server, token, "ghost")
        body = {"idempotencyKey": "del-key"}
        first = server.dispatch(
            Request("DELETE", "/v1/registry/zz46/pes/ghost", body, token=token)
        )
        assert first.status == 200
        counter = server.registry.dao.mutation_counter()
        replay = server.dispatch(
            Request("DELETE", "/v1/registry/zz46/pes/ghost", body, token=token)
        )
        # the record is long gone, but the receipt answers: no 404
        assert replay.status == 200 and replay.body == first.body
        assert server.registry.dao.mutation_counter() == counter

    def test_errors_are_not_recorded_as_receipts(self, server, token):
        body = {
            "peCode": "def late(): pass",
            "ifVersion": 3,
            "idempotencyKey": "retry-me",
        }
        assert put_pe(server, token, "late", body).status == 412
        # the same key retried with a now-satisfiable condition succeeds
        body["ifVersion"] = 0
        assert put_pe(server, token, "late", body).status == 201

    def test_concurrent_replays_write_once(self, server, token):
        """N threads racing one idempotency key: exactly one registry
        write, and every thread observes the identical stored response."""
        body = {
            "peCode": "def race(): pass",
            "description": "raced",
            "idempotencyKey": "race-key",
        }
        before = server.registry.dao.mutation_counter()
        results: list = [None] * 8
        barrier = threading.Barrier(len(results))

        def attempt(slot):
            barrier.wait()
            results[slot] = put_pe(server, token, "race", dict(body))

        threads = [
            threading.Thread(target=attempt, args=(slot,))
            for slot in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is not None for r in results)
        assert {r.status for r in results} == {201}
        bodies = [json.dumps(r.body, sort_keys=True) for r in results]
        assert len(set(bodies)) == 1  # identical stored responses
        # exactly one write: a single PE insert is one mutation
        assert server.registry.dao.mutation_counter() == before + 1

    def test_concurrent_cas_races_have_one_winner(self, server, token):
        """N create-only writers on one name: one 201, the rest 412."""
        results: list = [None] * 8
        barrier = threading.Barrier(len(results))

        def attempt(slot):
            barrier.wait()
            results[slot] = put_pe(
                server,
                token,
                "cas-race",
                {"peCode": f"def cas_race(): return {slot}", "ifVersion": 0},
            )

        threads = [
            threading.Thread(target=attempt, args=(slot,))
            for slot in range(len(results))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        statuses = sorted(r.status for r in results)
        assert statuses == [201] + [412] * (len(results) - 1)


class TestBulkRegister:
    def test_bulk_lands_all_items_and_persists_once(self, server, token):
        counter = server.registry.dao.mutation_counter()
        items = [
            {"peName": f"bulk{i}", "peCode": f"def bulk{i}(): pass",
             "description": f"bulk element {i}"}
            for i in range(20)
        ]
        response = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/pes:bulk",
                {"items": items},
                token=token,
            )
        )
        assert response.status == 201, response.body
        assert response.body["count"] == 20
        assert all(item["created"] for item in response.body["items"])
        # one executemany transaction == ONE mutation event on both DAOs
        assert server.registry.dao.mutation_counter() == counter + 1
        # ... and the slab snapshot was persisted fresh in the same call
        assert server.registry.shard_persistence()["fresh"] is True
        # the index serves the new rows immediately
        search = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {"query": "bulk element", "queryType": "semantic",
                 "kind": "pe", "k": 5},
                token=token,
            )
        )
        assert search.status == 200 and len(search.body["hits"]) == 5

    def test_bulk_dedups_against_registry_and_within_batch(self, server, token):
        put_pe(server, token, "already", {"description": "pre-existing"})
        items = [
            {"peName": "already", "peCode": "def already(): pass"},
            {"peName": "twin", "peCode": "def twin(): pass"},
            {"peName": "twin", "peCode": "def twin(): pass"},
        ]
        response = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/pes:bulk",
                {"items": items},
                token=token,
            )
        )
        assert response.status == 201
        flags = [item["created"] for item in response.body["items"]]
        assert flags == [False, True, False]
        ids = [item["peId"] for item in response.body["items"]]
        assert ids[1] == ids[2]  # within-batch dedup resolved to one record
        # regression: an in-batch duplicate must never index a phantom
        # id-0 row (which would fail shard-membership forever after)
        from repro.search.index import KIND_CODE, KIND_DESC

        owned = server.registry.dao.pe_ids_owned_by(1)
        assert server.index.ids(1, KIND_DESC) == owned
        assert server.index.ids(1, KIND_CODE) == owned

    def test_bulk_replay_is_a_no_op(self, server, token):
        items = [
            {"peName": f"once{i}", "peCode": f"def once{i}(): pass"}
            for i in range(5)
        ]
        body = {"items": items, "idempotencyKey": "bulk-key"}
        first = server.dispatch(
            Request("POST", "/v1/registry/zz46/pes:bulk", body, token=token)
        )
        assert first.status == 201
        counter = server.registry.dao.mutation_counter()
        replay = server.dispatch(
            Request("POST", "/v1/registry/zz46/pes:bulk", body, token=token)
        )
        assert replay.body == first.body
        assert server.registry.dao.mutation_counter() == counter


class TestLegacyAdapterParity:
    """The Table-3 write routes must stay byte-identical to the seed."""

    def test_legacy_pe_register_body_shape(self, server, token):
        response = server.dispatch(
            Request(
                "POST",
                "/registry/zz46/pe/add",
                {"peName": "legacy", "peCode": "def legacy(): pass",
                 "description": "old style"},
                token=token,
            )
        )
        assert response.status == 201
        # the historical body: the stored record, no envelope, no
        # revision/created keys
        assert set(response.body) == {
            "peId", "peName", "description", "descriptionOrigin",
            "peCode", "peSource", "peImports", "owners",
        }
        assert response.body["peName"] == "legacy"
        assert response.body["owners"] == [1]

    def test_legacy_workflow_register_body_shape(self, server, token):
        response = server.dispatch(
            Request(
                "POST",
                "/registry/zz46/workflow/add",
                {"entryPoint": "legacyWf", "workflowCode": "def w(): pass"},
                token=token,
            )
        )
        assert response.status == 201
        assert set(response.body) == {
            "workflowId", "workflowName", "entryPoint", "description",
            "workflowCode", "workflowSource", "peIds", "owners",
        }

    @pytest.mark.parametrize("kind", ["pe", "workflow"])
    def test_legacy_and_v1_register_store_identical_records(
        self, server, token, kind
    ):
        if kind == "pe":
            legacy = server.dispatch(
                Request(
                    "POST",
                    "/registry/zz46/pe/add",
                    {"peName": "same", "peCode": "def same(): pass",
                     "description": "via legacy"},
                    token=token,
                )
            )
            v1 = server.dispatch(
                Request(
                    "PUT",
                    "/v1/registry/zz46/pes/same",
                    {"peCode": "def same(): pass", "description": "via legacy"},
                    token=token,
                )
            )
            item = v1.body["items"][0]
        else:
            legacy = server.dispatch(
                Request(
                    "POST",
                    "/registry/zz46/workflow/add",
                    {"entryPoint": "sameWf", "workflowCode": "def s(): pass",
                     "description": "via legacy"},
                    token=token,
                )
            )
            v1 = server.dispatch(
                Request(
                    "PUT",
                    "/v1/registry/zz46/workflows/sameWf",
                    {"workflowCode": "def s(): pass",
                     "description": "via legacy"},
                    token=token,
                )
            )
            item = v1.body["items"][0]
        assert legacy.status == 201
        # the v1 PUT resolves onto the SAME stored record (dedup): every
        # legacy body field reappears verbatim inside the v1 item
        assert v1.status == 200 and item["created"] is False
        for key, value in legacy.body.items():
            assert item[key] == value

    @pytest.mark.parametrize(
        "kind,selector",
        [("pe", "id"), ("pe", "name"), ("workflow", "id"), ("workflow", "name")],
    )
    def test_legacy_remove_bodies_and_errors(self, server, token, kind, selector):
        if kind == "pe":
            created = server.dispatch(
                Request(
                    "POST",
                    "/registry/zz46/pe/add",
                    {"peName": "rm", "peCode": "def rm(): pass"},
                    token=token,
                )
            )
            target = created.body["peId"] if selector == "id" else "rm"
            path = f"/registry/zz46/pe/remove/{selector}/{target}"
        else:
            created = server.dispatch(
                Request(
                    "POST",
                    "/registry/zz46/workflow/add",
                    {"entryPoint": "rmWf", "workflowCode": "def r(): pass"},
                    token=token,
                )
            )
            target = (
                created.body["workflowId"] if selector == "id" else "rmWf"
            )
            path = f"/registry/zz46/workflow/remove/{selector}/{target}"
        response = server.dispatch(Request("DELETE", path, {}, token=token))
        assert response.status == 200
        assert response.body == {"removed": True}  # byte-identical body
        # removing again: the historical 404 envelope
        missing = server.dispatch(Request("DELETE", path, {}, token=token))
        assert missing.status == 404
        assert missing.body["error"] == "NotFoundError"
        assert "not found for user" in missing.body["message"]

    def test_legacy_validation_envelopes_unchanged(self, server, token):
        no_name = server.dispatch(
            Request("POST", "/registry/zz46/pe/add", {"peCode": "x"}, token=token)
        )
        assert no_name.status == 400
        assert no_name.body["message"] == "peName is required"
        no_code = server.dispatch(
            Request("POST", "/registry/zz46/pe/add", {"peName": "x"}, token=token)
        )
        assert no_code.status == 400
        assert no_code.body["message"] == "peCode is required"


class TestMethodNotAllowed:
    @pytest.mark.parametrize(
        "method,path,expected_allow",
        [
            ("DELETE", "/registry/zz46/pe/all", "GET"),
            ("GET", "/registry/zz46/pe/add", "POST"),
            ("POST", "/v1/registry/zz46/pes/thing", "DELETE, GET, PUT"),
            ("PUT", "/v1/registry/zz46/search", "POST"),
            ("DELETE", "/v1/users", "GET"),
        ],
    )
    def test_405_with_allow_header(self, server, token, method, path, expected_allow):
        response = server.dispatch(Request(method, path, {}, token=token))
        assert response.status == 405, response.body
        assert response.body["error"] == "MethodNotAllowed"
        assert response.headers["Allow"] == expected_allow

    def test_unknown_path_is_still_404(self, server, token):
        response = server.dispatch(
            Request("GET", "/registry/zz46/nothing/here", {}, token=token)
        )
        assert response.status == 404
        assert response.body["error"] == "NotFoundError"


class TestOverHttp:
    def test_idempotency_key_header_and_allow_header(self, fast_bundle):
        from repro.server.http import serve_http

        server = LaminarServer(models=fast_bundle)
        server.dispatch(
            Request("POST", "/auth/register", {"userName": "h", "password": "p"})
        )
        token = server.dispatch(
            Request("POST", "/auth/login", {"userName": "h", "password": "p"})
        ).body["token"]
        with serve_http(server) as handle:
            def call(method, path, body, headers=None):
                request = urllib.request.Request(
                    handle.url + path,
                    data=json.dumps(body).encode(),
                    method=method,
                    headers={
                        "Content-Type": "application/json",
                        "Authorization": f"Bearer {token}",
                        **(headers or {}),
                    },
                )
                try:
                    with urllib.request.urlopen(request, timeout=10) as reply:
                        return reply.status, json.loads(reply.read()), reply.headers
                except urllib.error.HTTPError as exc:
                    return exc.code, json.loads(exc.read()), exc.headers

            body = {"peCode": "def wired(): pass"}
            status, first, _ = call(
                "PUT", "/v1/registry/h/pes/wired", body,
                {"Idempotency-Key": "http-key"},
            )
            assert status == 201
            assert first["idempotencyKey"] == "http-key"
            status, replay, headers = call(
                "PUT", "/v1/registry/h/pes/wired", body,
                {"Idempotency-Key": "http-key"},
            )
            assert status == 201 and replay == first
            assert headers.get("Idempotent-Replay") == "true"
            # wrong method: a real HTTP 405 with a real Allow header
            status, envelope, headers = call(
                "POST", "/v1/registry/h/pes/wired", {}
            )
            assert status == 405
            assert envelope["error"] == "MethodNotAllowed"
            assert headers.get("Allow") == "DELETE, GET, PUT"
