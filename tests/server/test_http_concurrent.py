"""Concurrent serving through a real HTTP socket.

Parallel searches against a mutating registry must stay exact and
tenant-isolated: alice's corpus is static, so every response she gets —
whatever batch it rode in — must equal the single-shot and brute-force
results over exactly her records, while bob's thread adds and removes
records mid-flight.  Also covers the HTTP/1.1 satellite behaviours:
keep-alive connection reuse and the 400 envelope for malformed JSON.
"""

import http.client
import json
import threading

import pytest

from repro.server import LaminarServer
from repro.server.http import serve_http
from tests.registry.test_dao import make_pe

N_ALICE = 40
SEARCH_THREADS = 6
ROUNDS = 12


@pytest.fixture()
def stack(fast_bundle):
    server = LaminarServer(
        models=fast_bundle, search_batch_window=0.002, search_batch_max=8
    )
    # embeddings must come from the server's own models so the stored
    # rows match the query embedder's dimensionality
    embed = server.semantic.embed_description
    embed_code = server.code_search.embed_code
    tokens = {}
    for name in ("alice", "bob"):
        server.registry.register_user(name, "pw")
        tokens[name] = server.issue_token(name)
    alice = server.registry.get_user("alice")
    bob = server.registry.get_user("bob")
    for i in range(N_ALICE):
        server.registry.add_pe(
            alice,
            make_pe(
                f"AlicePE{i}",
                code=f"alice:{i}".encode().hex(),
                description=f"alice element {i}",
                desc_embedding=embed(f"alice element {i}"),
                code_embedding=embed_code(f"alice:{i}"),
            ),
        )
    handle = serve_http(server)
    yield server, handle, tokens, alice, bob
    handle.shutdown()


def http_request(conn, method, path, body, token):
    payload = json.dumps(body).encode()
    headers = {"Content-Type": "application/json"}
    if token:
        headers["Authorization"] = f"Bearer {token}"
    conn.request(method, path, body=payload, headers=headers)
    reply = conn.getresponse()
    return reply.status, json.loads(reply.read().decode())


class TestConcurrentSearchAgainstMutatingRegistry:
    def test_parallel_searches_stay_exact_and_isolated(self, stack):
        server, handle, tokens, alice, bob = stack
        query = "alice element"
        k = 5
        # the reference: single-shot in-process serving (itself verified
        # bitwise-identical to brute force by the serving-path tests)
        reference = server.semantic.search(
            query, server.registry.user_pes(alice), k=k
        )
        expected = [h.to_json() for h in reference]
        alice_names = {f"AlicePE{i}" for i in range(N_ALICE)}

        stop = threading.Event()
        errors = []

        def mutator():
            """bob adds and removes records while searches fly."""
            i = 0
            try:
                while not stop.is_set():
                    record = make_pe(
                        f"BobPE{i}",
                        code=f"bob:{i}".encode().hex(),
                        description=f"bob element {i}",
                        desc_embedding=server.semantic.embed_description(
                            f"bob element {i}"
                        ),
                    )
                    server.registry.add_pe(bob, record)
                    if i % 2:
                        server.registry.remove_pe(bob, record.pe_id)
                    i += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def searcher(results):
            try:
                conn = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=10
                )
                for _ in range(ROUNDS):
                    status, body = http_request(
                        conn,
                        "GET",
                        f"/registry/alice/search/{query.replace(' ', '%20')}"
                        "/type/pe",
                        {"queryType": "semantic", "k": k},
                        tokens["alice"],
                    )
                    results.append((status, body))
                conn.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        mutate_thread = threading.Thread(target=mutator)
        result_lists = [[] for _ in range(SEARCH_THREADS)]
        search_threads = [
            threading.Thread(target=searcher, args=(result_lists[i],))
            for i in range(SEARCH_THREADS)
        ]
        mutate_thread.start()
        for t in search_threads:
            t.start()
        for t in search_threads:
            t.join()
        stop.set()
        mutate_thread.join()
        assert not errors
        for results in result_lists:
            assert len(results) == ROUNDS
            for status, body in results:
                assert status == 200
                # batched == single-shot == brute force, and bob's
                # records never leak into alice's results
                assert body["hits"] == expected
                assert {h["peName"] for h in body["hits"]} <= alice_names

    def test_bob_searches_see_only_bob_records(self, stack):
        server, handle, tokens, alice, bob = stack
        for i in range(4):
            server.registry.add_pe(
                bob,
                make_pe(
                    f"BobStatic{i}",
                    code=f"bs:{i}".encode().hex(),
                    description=f"bob static {i}",
                    desc_embedding=server.semantic.embed_description(
                        f"bob static {i}"
                    ),
                ),
            )
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        status, body = http_request(
            conn,
            "GET",
            "/registry/bob/search/bob%20static/type/pe",
            {"queryType": "semantic", "k": 10},
            tokens["bob"],
        )
        conn.close()
        assert status == 200
        assert body["hits"]
        assert all(h["peName"].startswith("BobStatic") for h in body["hits"])

    def test_batcher_coalesced_requests(self, stack):
        """Under parallel load the dispatcher actually forms
        multi-request batches.  Coalescing is scheduling-dependent, so
        this uses a generous window and retries a few rounds rather
        than trusting one pass on a loaded machine."""
        server, handle, tokens, alice, bob = stack
        server.batcher.window = 0.05  # widen for determinism
        errors = []

        def worker(i):
            try:
                conn = http.client.HTTPConnection(
                    handle.host, handle.port, timeout=10
                )
                barrier.wait()
                for r in range(6):
                    status, body = http_request(
                        conn,
                        "GET",
                        f"/registry/alice/search/alice%20element%20{i}"
                        "/type/pe",
                        {"queryType": "semantic", "k": 3},
                        tokens["alice"],
                    )
                    assert status == 200
                conn.close()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        for _ in range(5):
            barrier = threading.Barrier(SEARCH_THREADS)
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(SEARCH_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            if server.batcher.stats()["batchedRequests"] > 0:
                break
        stats = server.batcher.stats()
        assert stats["requests"] >= SEARCH_THREADS * 6
        assert stats["batchedRequests"] > 0


class TestHttp11Satellites:
    def test_malformed_json_returns_400_envelope(self, stack):
        _, handle, tokens, *_ = stack
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        conn.request(
            "POST",
            "/auth/login",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        reply = conn.getresponse()
        body = json.loads(reply.read().decode())
        assert reply.status == 400
        assert body["error"] == "BadRequest"
        assert body["code"] == 400
        assert "not valid JSON" in body["message"]
        conn.close()

    def test_non_object_json_returns_400(self, stack):
        _, handle, tokens, *_ = stack
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        conn.request(
            "POST",
            "/auth/login",
            body=b"[1, 2, 3]",
            headers={"Content-Type": "application/json"},
        )
        reply = conn.getresponse()
        body = json.loads(reply.read().decode())
        assert reply.status == 400
        assert body["error"] == "BadRequest"
        conn.close()

    def test_keep_alive_reuses_one_connection(self, stack):
        server, handle, tokens, *_ = stack
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        for _ in range(3):
            status, body = http_request(
                conn, "GET", "/auth/all", {}, tokens["alice"]
            )
            assert status == 200
        # http.client raises if the server closed the connection between
        # requests; also check the handler advertises HTTP/1.1
        conn.request("GET", "/auth/all", body=b"{}",
                     headers={"Authorization": f"Bearer {tokens['alice']}"})
        reply = conn.getresponse()
        assert reply.version == 11
        reply.read()
        conn.close()

    def test_chunked_transfer_encoding_rejected(self, stack):
        """Only Content-Length framing is implemented; a chunked body
        must be rejected (and the connection closed) rather than left
        unread to desynchronize the kept-alive socket."""
        _, handle, tokens, *_ = stack
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        conn.putrequest("POST", "/auth/login")
        conn.putheader("Content-Type", "application/json")
        conn.putheader("Transfer-Encoding", "chunked")
        conn.endheaders()
        body = json.dumps({"userName": "alice", "password": "pw"}).encode()
        conn.send(b"%x\r\n%s\r\n0\r\n\r\n" % (len(body), body))
        reply = conn.getresponse()
        payload = json.loads(reply.read().decode())
        assert reply.status == 400
        assert payload["error"] == "BadRequest"
        assert reply.headers.get("Connection") == "close"
        conn.close()

    def test_keep_alive_survives_a_400(self, stack):
        _, handle, tokens, *_ = stack
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
        conn.request(
            "POST", "/auth/login", body=b"{broken",
            headers={"Content-Type": "application/json"},
        )
        reply = conn.getresponse()
        assert reply.status == 400
        reply.read()
        # same socket, next request still served
        status, _ = http_request(conn, "GET", "/auth/all", {}, tokens["alice"])
        assert status == 200
        conn.close()
