"""Cross-process write serialization and receipt lifecycle at app level.

A multi-process fleet shares one SQLite file but NOT one
``app.write_lock`` — the idempotency-key claim (``INSERT OR IGNORE``
inside the write transaction) is what guarantees exactly one writer
executes a keyed write; everyone else replays the stored response
byte-exact.  Two LaminarServers over two DAO handles on one database
file model two fleet processes faithfully.
"""

import threading
import time

from repro.net.transport import Request
from repro.registry.dao import SqliteDAO
from repro.server import LaminarServer


def _login(server, user="fleet", password="pw", register=True):
    if register:
        server.dispatch(
            Request(
                "POST",
                "/auth/register",
                {"userName": user, "password": password},
            )
        )
    reply = server.dispatch(
        Request(
            "POST", "/auth/login", {"userName": user, "password": password}
        )
    )
    return reply.body["token"]


class TestCrossProcessSerialization:
    def test_exactly_one_writer_wins_per_key(self, tmp_path, fast_bundle):
        path = tmp_path / "fleet.db"
        dao_a, dao_b = SqliteDAO(path), SqliteDAO(path)
        server_a = LaminarServer(dao=dao_a, models=fast_bundle)
        server_b = LaminarServer(dao=dao_b, models=fast_bundle)
        token_a = _login(server_a)
        token_b = _login(server_b, register=False)  # same user row

        before = dao_a.mutation_counter()
        barrier = threading.Barrier(2)
        responses = {}

        def writer(name, server, token):
            request = Request(
                "PUT",
                "/v1/registry/fleet/pes/shared",
                {
                    "peCode": "def shared(): pass",
                    "idempotencyKey": "fleet-key",
                },
                token=token,
            )
            barrier.wait()
            responses[name] = server.dispatch(request)

        threads = [
            threading.Thread(target=writer, args=("a", server_a, token_a)),
            threading.Thread(target=writer, args=("b", server_b, token_b)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        first, second = responses["a"], responses["b"]
        assert first.status == second.status == 201
        assert first.body == second.body  # loser replays byte-exact
        replay_flags = [
            r.headers.get("Idempotent-Replay") for r in (first, second)
        ]
        assert sorted(replay_flags, key=str) == [None, "true"]
        # exactly ONE registry mutation happened across the fleet
        assert dao_a.mutation_counter() == before + 1
        dao_a.close()
        dao_b.close()

    def test_conflicting_payload_under_same_key_is_rejected(
        self, tmp_path, fast_bundle
    ):
        path = tmp_path / "fleet2.db"
        dao_a, dao_b = SqliteDAO(path), SqliteDAO(path)
        server_a = LaminarServer(dao=dao_a, models=fast_bundle)
        server_b = LaminarServer(dao=dao_b, models=fast_bundle)
        token_a = _login(server_a)
        token_b = _login(server_b, register=False)

        winner = server_a.dispatch(
            Request(
                "PUT",
                "/v1/registry/fleet/pes/guard",
                {"peCode": "def guard(): pass", "idempotencyKey": "g-key"},
                token=token_a,
            )
        )
        assert winner.status == 201
        # a different payload reusing the key from the OTHER process
        conflict = server_b.dispatch(
            Request(
                "PUT",
                "/v1/registry/fleet/pes/guard",
                {
                    "peCode": "def guard(): DIFFERENT",
                    "idempotencyKey": "g-key",
                },
                token=token_b,
            )
        )
        assert conflict.status == 409
        dao_a.close()
        dao_b.close()


class TestReceiptLifecycleAtAppLevel:
    def _put(self, server, token, key, code="def gc(): pass", name="gc"):
        return server.dispatch(
            Request(
                "PUT",
                f"/v1/registry/fleet/pes/{name}",
                {"peCode": code, "idempotencyKey": key},
                token=token,
            )
        )

    def test_replay_inside_ttl_window(self, fast_bundle):
        server = LaminarServer(models=fast_bundle, receipt_ttl=60.0)
        token = _login(server)
        first = self._put(server, token, "ttl-key")
        replay = self._put(server, token, "ttl-key")
        assert "Idempotent-Replay" not in first.headers
        assert replay.headers.get("Idempotent-Replay") == "true"
        assert replay.body == first.body

    def test_expired_receipt_re_executes(self, fast_bundle):
        server = LaminarServer(models=fast_bundle, receipt_ttl=0.05)
        token = _login(server)
        self._put(server, token, "short-key")
        time.sleep(0.1)
        # any keyed write sweeps; the expired receipt is collected...
        self._put(server, token, "other-key", name="other")
        # ...so the original key re-executes instead of replaying: a
        # replay would return the stored 201/created body verbatim, but
        # a fresh execution sees the PE already present (200, not created)
        retry = self._put(server, token, "short-key")
        assert "Idempotent-Replay" not in retry.headers
        assert retry.status == 200
        assert retry.body["items"][0]["created"] is False

    def test_cap_evicts_oldest_receipt(self, fast_bundle):
        server = LaminarServer(models=fast_bundle, receipt_cap=1)
        token = _login(server)
        self._put(server, token, "cap-1", name="one")
        time.sleep(0.01)  # distinct created_at stamps
        self._put(server, token, "cap-2", name="two")
        # cap=1 kept only the newest receipt: cap-1 re-executes...
        retry_old = self._put(server, token, "cap-1", name="one")
        assert "Idempotent-Replay" not in retry_old.headers
        # ...while cap-2 (now possibly evicted by the cap-1 rewrite's
        # sweep) is NOT asserted — only the eviction order is contractual

    def test_no_knobs_keeps_receipts_forever(self, fast_bundle):
        server = LaminarServer(models=fast_bundle)
        token = _login(server)
        first = self._put(server, token, "forever")
        for _ in range(3):
            self._put(server, token, "other", name="other")
        replay = self._put(server, token, "forever")
        assert replay.headers.get("Idempotent-Replay") == "true"
        assert replay.body == first.body
