"""Server-level tests: Table 3 endpoint coverage, auth, error envelopes."""

import pytest

from repro.net.transport import Request
from repro.server import LaminarServer
from tests.helpers import AddTen


#: every endpoint of paper Table 3, verbatim
TABLE3_ENDPOINTS = [
    ("POST", "/registry/{user}/pe/add"),
    ("GET", "/registry/{user}/pe/all"),
    ("GET", "/registry/{user}/pe/id/{id}"),
    ("GET", "/registry/{user}/pe/name/{name}"),
    ("DELETE", "/registry/{user}/pe/remove/id/{id}"),
    ("DELETE", "/registry/{user}/pe/remove/name/{name}"),
    ("POST", "/registry/{user}/workflow/add"),
    ("GET", "/registry/{user}/workflow/all"),
    ("GET", "/registry/{user}/workflow/id/{id}"),
    ("GET", "/registry/{user}/workflow/name/{name}"),
    ("GET", "/registry/{user}/workflow/pes/id/{id}"),
    ("GET", "/registry/{user}/workflow/pes/name/{name}"),
    ("DELETE", "/registry/{user}/workflow/remove/id/{id}"),
    ("DELETE", "/registry/{user}/workflow/remove/name/{name}"),
    ("PUT", "/registry/{user}/workflow/{workflowId}/pe/{peId}"),
    ("POST", "/execution/{user}/run"),
    ("GET", "/registry/{user}/all"),
    ("GET", "/registry/{user}/search/{search}/type/{type}"),
    ("GET", "/auth/all"),
    ("POST", "/auth/login"),
    ("POST", "/auth/register"),
]


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "zz46", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "zz46", "password": "pw"})
    )
    return response.body["token"]


#: endpoints beyond Table 3 implementing the paper's §3.3/§8 future work
EXTENSION_ENDPOINTS = [
    ("GET", "/engines/{user}/all"),
    ("POST", "/engines/{user}/register"),
    ("DELETE", "/engines/{user}/remove/{name}"),
]

#: the versioned v1 surface (typed envelopes + cursor pagination); the
#: Table-3 routes above remain thin adapters over the same search core
V1_ENDPOINTS = [
    ("GET", "/v1/users"),
    ("GET", "/v1/backends"),
    ("GET", "/v1/registry/{user}/pes"),
    ("GET", "/v1/registry/{user}/workflows"),
    ("GET", "/v1/registry/{user}/workflows/{id}/pes"),
    ("POST", "/v1/registry/{user}/search"),
    # the v1 write surface (typed envelopes, idempotency keys,
    # conditional writes); legacy register/remove routes stay as thin
    # adapters over the same execute_write core
    ("PUT", "/v1/registry/{user}/pes/{name}"),
    ("PUT", "/v1/registry/{user}/workflows/{name}"),
    ("POST", "/v1/registry/{user}/pes:bulk"),
    ("POST", "/v1/registry/{user}/workflows:bulk"),
    ("DELETE", "/v1/registry/{user}/pes/{name}"),
    ("DELETE", "/v1/registry/{user}/workflows/{name}"),
    # conditional single-record reads (ETag / If-None-Match)
    ("GET", "/v1/registry/{user}/pes/{name}"),
    ("GET", "/v1/registry/{user}/workflows/{name}"),
    # background jobs + repository ingestion
    ("POST", "/v1/registry/{user}/ingest"),
    ("GET", "/v1/jobs"),
    ("GET", "/v1/jobs/{id}"),
    ("POST", "/v1/jobs/{id}:cancel"),
]


class TestEndpointTable:
    def test_every_table3_endpoint_installed(self, server):
        installed = set(server.endpoints())
        for endpoint in TABLE3_ENDPOINTS:
            assert endpoint in installed, f"missing endpoint {endpoint}"

    def test_no_unexpected_endpoints(self, server):
        expected = (
            set(TABLE3_ENDPOINTS)
            | set(EXTENSION_ENDPOINTS)
            | set(V1_ENDPOINTS)
        )
        assert set(server.endpoints()) == expected


class TestAuthFlow:
    def test_register_login_roundtrip(self, server):
        response = server.dispatch(
            Request("POST", "/auth/register", {"userName": "a", "password": "b"})
        )
        assert response.status == 201
        login = server.dispatch(
            Request("POST", "/auth/login", {"userName": "a", "password": "b"})
        )
        assert login.status == 200 and "token" in login.body

    def test_bad_login_gets_401_envelope(self, server):
        response = server.dispatch(
            Request("POST", "/auth/login", {"userName": "a", "password": "x"})
        )
        assert response.status == 401
        assert response.body["error"] == "AuthenticationError"
        assert response.body["code"] == 401
        assert "message" in response.body

    def test_missing_token_rejected(self, server, token):
        response = server.dispatch(Request("GET", "/registry/zz46/pe/all"))
        assert response.status == 401
        assert "login" in response.body["message"]

    def test_token_user_mismatch_rejected(self, server, token):
        server.dispatch(
            Request("POST", "/auth/register", {"userName": "mallory", "password": "m"})
        )
        response = server.dispatch(
            Request("GET", "/registry/mallory/pe/all", token=token)
        )
        assert response.status == 401
        assert "does not belong" in response.body["message"]

    def test_auth_all_lists_users_without_passwords(self, server, token):
        response = server.dispatch(Request("GET", "/auth/all"))
        assert response.status == 200
        [user] = response.body["users"]
        assert user["userName"] == "zz46"
        assert "password" not in user


class TestErrorEnvelopes:
    def test_unknown_route_404(self, server):
        response = server.dispatch(Request("GET", "/nope"))
        assert response.status == 404
        assert response.body["error"] == "NotFoundError"

    def test_missing_pe_404_with_params(self, server, token):
        response = server.dispatch(
            Request("GET", "/registry/zz46/pe/id/999", token=token)
        )
        assert response.status == 404
        assert response.body["params"]["peId"] == "999"

    def test_validation_error_400(self, server, token):
        response = server.dispatch(
            Request("POST", "/registry/zz46/pe/add", {"description": "x"}, token=token)
        )
        assert response.status == 400
        assert response.body["error"] == "ValidationError"

    def test_non_integer_id_param_400(self, server, token):
        response = server.dispatch(
            Request("GET", "/registry/zz46/pe/id/notanint", token=token)
        )
        assert response.status == 400

    def test_unknown_search_type_400(self, server, token):
        response = server.dispatch(
            Request("GET", "/registry/zz46/search/foo/type/everything", token=token)
        )
        assert response.status == 400

    def test_internal_errors_become_500_envelopes(self, server, token, monkeypatch):
        def boom(*a, **k):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(server.registry, "user_pes", boom)
        response = server.dispatch(
            Request("GET", "/registry/zz46/pe/all", token=token)
        )
        assert response.status == 500
        assert response.body["error"] == "InternalError"
        assert "kaboom" in response.body["message"]


class TestPEEndpoints:
    def _add(self, server, token, name="AddTen"):
        from repro.serialization import extract_source, serialize_object

        return server.dispatch(
            Request(
                "POST",
                "/registry/zz46/pe/add",
                {
                    "peName": name,
                    "peCode": serialize_object(AddTen),
                    "peSource": extract_source(AddTen),
                    "description": "adds ten",
                },
                token=token,
            )
        )

    def test_add_returns_record(self, server, token):
        response = self._add(server, token)
        assert response.status == 201
        assert response.body["peName"] == "AddTen"
        assert response.body["peId"] >= 1

    def test_get_by_name_and_id(self, server, token):
        pe_id = self._add(server, token).body["peId"]
        by_id = server.dispatch(
            Request("GET", f"/registry/zz46/pe/id/{pe_id}", token=token)
        )
        by_name = server.dispatch(
            Request("GET", "/registry/zz46/pe/name/AddTen", token=token)
        )
        assert by_id.body["peId"] == by_name.body["peId"] == pe_id

    def test_remove_by_name(self, server, token):
        self._add(server, token)
        response = server.dispatch(
            Request("DELETE", "/registry/zz46/pe/remove/name/AddTen", token=token)
        )
        assert response.status == 200 and response.body["removed"]

    def test_put_link_pe_to_workflow(self, server, token):
        from repro.serialization import serialize_object

        pe_id = self._add(server, token).body["peId"]
        workflow = server.dispatch(
            Request(
                "POST",
                "/registry/zz46/workflow/add",
                {
                    "entryPoint": "linked",
                    "workflowCode": serialize_object(AddTen),
                },
                token=token,
            )
        )
        workflow_id = workflow.body["workflowId"]
        response = server.dispatch(
            Request(
                "PUT",
                f"/registry/zz46/workflow/{workflow_id}/pe/{pe_id}",
                token=token,
            )
        )
        assert response.status == 200
        assert response.body["peIds"] == [pe_id]
        pes = server.dispatch(
            Request(
                "GET", f"/registry/zz46/workflow/pes/id/{workflow_id}", token=token
            )
        )
        assert [p["peId"] for p in pes.body["pes"]] == [pe_id]

    def test_auto_description_when_missing(self, server, token):
        from repro.serialization import extract_source, serialize_object

        response = server.dispatch(
            Request(
                "POST",
                "/registry/zz46/pe/add",
                {
                    "peName": "AddTen",
                    "peCode": serialize_object(AddTen),
                    "peSource": extract_source(AddTen),
                },
                token=token,
            )
        )
        assert response.body["description"]  # summarized server-side
        assert response.body["descriptionOrigin"] == "auto"
