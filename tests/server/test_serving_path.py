"""Request-path materialization accounting for the O(k) serving path.

Wraps the DAO in a call-counting proxy and asserts the ISSUE's core
guarantees end to end through ``/registry/{user}/search`` and the
listing endpoints:

* semantic/code search over an indexed corpus materializes at most k
  full records per request and never calls ``all_pes``;
* listings are owner-scoped — they never touch other users' rows;
* the new serving path returns records identical to the seed's
  filter-everything-in-Python behaviour.
"""

from collections import Counter

import pytest

from repro.net.transport import Request
from repro.registry.dao import InMemoryDAO
from repro.server import LaminarServer


class CountingDAO:
    """Transparent DAO proxy counting calls and PE-record materializations."""

    _PE_LIST_METHODS = {"all_pes", "pes_owned_by", "find_pe_by_name", "get_pes"}

    def __init__(self, inner):
        self.inner = inner
        self.calls = Counter()
        self.pe_records_materialized = 0

    def reset(self):
        self.calls.clear()
        self.pe_records_materialized = 0

    def __getattr__(self, name):
        attr = getattr(self.inner, name)
        if not callable(attr):
            return attr

        def wrapper(*args, **kwargs):
            self.calls[name] += 1
            result = attr(*args, **kwargs)
            if name in self._PE_LIST_METHODS:
                self.pe_records_materialized += len(result)
            elif name == "get_pe" and result is not None:
                self.pe_records_materialized += 1
            return result

        return wrapper


@pytest.fixture()
def setup(fast_bundle):
    dao = CountingDAO(InMemoryDAO())
    server = LaminarServer(dao=dao, models=fast_bundle)
    tokens = {}
    for user_name in ("alice", "bob"):
        server.dispatch(
            Request(
                "POST",
                "/auth/register",
                {"userName": user_name, "password": "pw"},
            )
        )
        tokens[user_name] = server.dispatch(
            Request(
                "POST",
                "/auth/login",
                {"userName": user_name, "password": "pw"},
            )
        ).body["token"]
    for user_name in ("alice", "bob"):
        for i in range(8):
            response = server.dispatch(
                Request(
                    "POST",
                    f"/registry/{user_name}/pe/add",
                    {
                        "peName": f"{user_name.title()}PE{i}",
                        "peCode": f"{user_name}-{i}".encode().hex(),
                        "description": f"{user_name} element number {i}",
                        "peSource": f"class PE{i}:\n    x = {i}\n",
                    },
                    token=tokens[user_name],
                )
            )
            assert response.status == 201
        response = server.dispatch(
            Request(
                "POST",
                f"/registry/{user_name}/workflow/add",
                {
                    "entryPoint": f"{user_name}Flow",
                    "workflowCode": f"wf-{user_name}".encode().hex(),
                    "description": f"workflow of {user_name}",
                },
                token=tokens[user_name],
            )
        )
        assert response.status == 201
    dao.reset()
    return server, dao, tokens


def search(server, token, user="alice", query="element", query_type="semantic",
           search_type="pe", k=2):
    response = server.dispatch(
        Request(
            "GET",
            f"/registry/{user}/search/{query}/type/{search_type}",
            {"queryType": query_type, "k": k},
            token=token,
        )
    )
    assert response.status == 200
    return response.body["hits"]


class TestSearchMaterializesAtMostK:
    def test_semantic_search_materializes_k_records(self, setup):
        server, dao, tokens = setup
        k = 2
        hits = search(server, tokens["alice"], k=k)
        assert len(hits) == k
        assert dao.calls["all_pes"] == 0
        assert dao.pe_records_materialized <= k

    def test_code_search_materializes_k_records(self, setup):
        server, dao, tokens = setup
        k = 3
        hits = search(
            server, tokens["alice"], query="x = 5", query_type="code", k=k
        )
        assert len(hits) == k
        assert dao.calls["all_pes"] == 0
        assert dao.pe_records_materialized <= k

    def test_k_of_one(self, setup):
        server, dao, tokens = setup
        hits = search(server, tokens["alice"], k=1)
        assert len(hits) == 1
        assert dao.pe_records_materialized <= 1

    def test_search_without_k_materializes_only_own_rows(self, setup):
        """Unbounded k ranks everything but still only hydrates the
        user's records, never the other users' half of the registry."""
        server, dao, tokens = setup
        response = server.dispatch(
            Request(
                "GET",
                "/registry/alice/search/element/type/pe",
                {"queryType": "semantic"},
                token=tokens["alice"],
            )
        )
        assert response.status == 200
        assert len(response.body["hits"]) == 8
        assert dao.calls["all_pes"] == 0
        assert dao.pe_records_materialized <= 8

    def test_results_identical_to_brute_force(self, setup):
        server, dao, tokens = setup
        alice = server.registry.get_user("alice")
        hits = search(server, tokens["alice"], k=4)
        brute = server.semantic.search(
            "element", server.registry.user_pes(alice), k=4
        )
        assert [h["peId"] for h in hits] == [h.pe_id for h in brute]
        assert [h["score"] for h in hits] == [
            round(float(h.score), 4) for h in brute
        ]


class TestListingsAreOwnerScoped:
    def test_pe_listing_touches_only_own_rows(self, setup):
        server, dao, tokens = setup
        response = server.dispatch(
            Request("GET", "/registry/alice/pe/all", token=tokens["alice"])
        )
        assert response.status == 200
        assert len(response.body["pes"]) == 8
        assert dao.calls["all_pes"] == 0
        # exactly alice's 8 records — bob's rows were never deserialized
        assert dao.pe_records_materialized == 8

    def test_registry_all_touches_only_own_rows(self, setup):
        server, dao, tokens = setup
        response = server.dispatch(
            Request("GET", "/registry/alice/all", token=tokens["alice"])
        )
        assert response.status == 200
        assert dao.calls["all_pes"] == 0
        assert dao.calls["all_workflows"] == 0
        assert dao.pe_records_materialized == 8

    def test_listing_parity_with_seed_behaviour(self, setup):
        server, dao, tokens = setup
        alice = server.registry.get_user("alice")
        scoped = server.registry.user_pes(alice)
        legacy = [
            r for r in server.registry.dao.all_pes()
            if alice.user_id in r.owners
        ]
        assert [r.to_json() for r in scoped] == [r.to_json() for r in legacy]
        wf_scoped = server.registry.user_workflows(alice)
        wf_legacy = [
            r for r in server.registry.dao.all_workflows()
            if alice.user_id in r.owners
        ]
        assert [r.to_json() for r in wf_scoped] == [
            r.to_json() for r in wf_legacy
        ]


class TestFallbackStaysExact:
    def test_unindexed_record_falls_back_to_brute_force(self, setup):
        """A PE whose embeddings never reached the shard breaks the
        membership check; the request then serves brute force and still
        returns every record."""
        server, dao, tokens = setup
        alice = server.registry.get_user("alice")
        from tests.registry.test_dao import make_pe

        record = make_pe("Ghost", code="Z2hvc3Q=", owners={alice.user_id})
        server.registry.dao.insert_pe(record)  # bypass service: no indexing
        dao.reset()
        hits = search(server, tokens["alice"], k=9)
        assert {h["peName"] for h in hits} >= {"Ghost"}
        assert len(hits) == 9
