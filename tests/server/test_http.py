"""Tests for the real-HTTP deployment adapter (loopback socket)."""

import socket
import time
import uuid

import pytest

from repro.client import LaminarClient
from repro.errors import AuthenticationError, TransportError
from repro.net.transport import Request
from repro.server import LaminarServer
from repro.server.http import HttpTransport, _client_url, serve_http
from tests.helpers import AddTen, build_pipeline_graph


@pytest.fixture(scope="module")
def http_stack(fast_bundle):
    server = LaminarServer(models=fast_bundle)
    handle = serve_http(server)
    yield handle
    handle.shutdown()


@pytest.fixture()
def http_client(http_stack, fast_bundle):
    import uuid

    client = LaminarClient(
        HttpTransport(http_stack.url), models=fast_bundle, echo=False
    )
    user = f"user-{uuid.uuid4().hex[:8]}"
    client.register(user, "pw")
    client.login(user, "pw")
    return client


class TestHttpRoundTrips:
    def test_register_login_over_http(self, http_client):
        assert http_client.web.token is not None

    def test_pe_lifecycle_over_http(self, http_client):
        http_client.register_PE(AddTen, "adds ten")
        cls = http_client.get_PE("AddTen")
        assert cls().process({"input": 1})[0].value == 11

    def test_serverless_run_over_http(self, http_client):
        outcome = http_client.run(build_pipeline_graph(), input=3, register=False)
        assert outcome.status == "ok"
        assert outcome.results["Collector.output"] == [[11, 12, 13]]

    def test_search_over_http(self, http_client):
        http_client.register_PE(AddTen, "Adds ten to each incoming number")
        hits = http_client.search_Registry("adds ten to a number", "pe", "text")
        assert hits[0]["peName"] == "AddTen"

    def test_url_encoded_search_path(self, http_client):
        http_client.register_PE(AddTen)
        hits = http_client.search_Registry("num + 10", "pe", "code")
        assert hits  # spaces and '+' survive URL encoding


class TestHttpErrors:
    def test_error_envelope_preserves_status(self, http_stack, fast_bundle):
        client = LaminarClient(
            HttpTransport(http_stack.url), models=fast_bundle, echo=False
        )
        with pytest.raises(AuthenticationError):
            client.login("ghost", "nope")

    def test_missing_token_over_http(self, http_stack, fast_bundle):
        client = LaminarClient(
            HttpTransport(http_stack.url), models=fast_bundle, echo=False
        )
        client.web.token = "bogus-token"
        client.web.user_name = "ghost"
        with pytest.raises(AuthenticationError):
            client.get_Registry()

    def test_unreachable_server(self, fast_bundle):
        transport = HttpTransport("http://127.0.0.1:1", timeout=0.5)
        client = LaminarClient(transport, models=fast_bundle, echo=False)
        with pytest.raises(TransportError, match="cannot reach"):
            client.register("x", "y")


class TestClientUrl:
    """The advertised URL must be connectable, not just the bind address."""

    @pytest.mark.parametrize(
        ("host", "port", "want"),
        [
            ("0.0.0.0", 8080, "http://127.0.0.1:8080"),
            ("", 8080, "http://127.0.0.1:8080"),
            ("::", 9090, "http://[::1]:9090"),
            ("::1", 9090, "http://[::1]:9090"),
            ("2001:db8::7", 80, "http://[2001:db8::7]:80"),
            ("192.168.1.5", 80, "http://192.168.1.5:80"),
            ("localhost", 80, "http://localhost:80"),
        ],
    )
    def test_normalization(self, host, port, want):
        assert _client_url(host, port) == want

    def test_all_interfaces_bind_yields_usable_url(self, fast_bundle):
        server = LaminarServer(models=fast_bundle)
        with serve_http(server, host="0.0.0.0") as handle:
            assert handle.url.startswith("http://127.0.0.1:")
            transport = HttpTransport(handle.url, timeout=5.0)
            reply = transport.request(
                Request("POST", "/auth/register", {"userName": "u0", "password": "p"})
            )
            assert reply.status == 201, reply.body


def _auth(transport):
    """Register + login a fresh user over the wire; return (user, token)."""
    user = f"user-{uuid.uuid4().hex[:8]}"
    transport.request(
        Request("POST", "/auth/register", {"userName": user, "password": "pw"})
    )
    reply = transport.request(
        Request("POST", "/auth/login", {"userName": user, "password": "pw"})
    )
    return user, reply.body["token"]


class TestIdempotencyOverHttp:
    """The Idempotency-Key header must survive the real-HTTP round trip.

    Regression: HttpTransport used to drop ``request.headers``, so keyed
    writes silently re-executed on retry over real sockets (idempotent
    replay worked only in-process).
    """

    def test_keyed_write_replays_with_header(self, http_stack):
        transport = HttpTransport(http_stack.url, timeout=10.0)
        user, token = _auth(transport)
        request = Request(
            "PUT",
            f"/v1/registry/{user}/pes/idem",
            {"peCode": "def idem(): pass"},
            token=token,
            headers={"Idempotency-Key": "retry-safe-1"},
        )
        first = transport.request(request)
        assert first.status == 201, first.body
        assert first.body["idempotencyKey"] == "retry-safe-1"
        assert "Idempotent-Replay" not in first.headers

        replay = transport.request(request)
        assert replay.status == 201
        assert replay.headers.get("Idempotent-Replay") == "true"
        assert replay.body == first.body  # stored response, byte-exact

    def test_distinct_keys_are_distinct_writes(self, http_stack):
        transport = HttpTransport(http_stack.url, timeout=10.0)
        user, token = _auth(transport)
        pe_ids = []
        for n, key in enumerate(("key-a", "key-b")):
            reply = transport.request(
                Request(
                    "PUT",
                    f"/v1/registry/{user}/pes/twice",
                    {"peCode": f"def twice(): return {n}", "ifVersion": n},
                    token=token,
                    headers={"Idempotency-Key": key},
                )
            )
            assert reply.status == 201, reply.body
            assert "Idempotent-Replay" not in reply.headers
            pe_ids.append(reply.body["items"][0]["peId"])
        assert pe_ids[0] != pe_ids[1]  # both writes actually executed


class TestPeerDisconnect:
    """A client dropping the socket must not traceback or kill serving."""

    def _wait_for_disconnect_count(self, handle, baseline, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            count = handle.stats()["peerDisconnects"]
            if count > baseline:
                return count
            time.sleep(0.01)
        return handle.stats()["peerDisconnects"]

    def test_abort_mid_request_is_counted_not_raised(self, http_stack):
        baseline = http_stack.stats()["peerDisconnects"]
        with socket.create_connection(
            (http_stack.host, http_stack.port), timeout=5.0
        ) as sock:
            # keep-alive connection that promises a body and vanishes
            sock.sendall(
                b"POST /auth/login HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 500\r\n"
                b"\r\n"
                b'{"partial'
            )
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",  # RST on close
            )
        assert self._wait_for_disconnect_count(http_stack, baseline) > baseline
        # the server keeps serving other connections afterwards
        transport = HttpTransport(http_stack.url, timeout=5.0)
        reply = transport.request(Request("GET", "/v1/backends", {}))
        assert reply.status == 200

    def test_clean_close_between_requests_is_not_a_disconnect(self, http_stack):
        baseline = http_stack.stats()["peerDisconnects"]
        with socket.create_connection(
            (http_stack.host, http_stack.port), timeout=5.0
        ) as sock:
            sock.sendall(
                b"GET /v1/backends HTTP/1.1\r\n"
                b"Connection: close\r\n"
                b"\r\n"
            )
            reply = b""
            while chunk := sock.recv(4096):
                reply += chunk
        assert b"200" in reply.split(b"\r\n", 1)[0]
        time.sleep(0.05)
        assert http_stack.stats()["peerDisconnects"] == baseline
