"""Tests for the real-HTTP deployment adapter (loopback socket)."""

import pytest

from repro.client import LaminarClient
from repro.errors import AuthenticationError, TransportError
from repro.server import LaminarServer
from repro.server.http import HttpTransport, serve_http
from tests.helpers import AddTen, build_pipeline_graph


@pytest.fixture(scope="module")
def http_stack(fast_bundle):
    server = LaminarServer(models=fast_bundle)
    handle = serve_http(server)
    yield handle
    handle.shutdown()


@pytest.fixture()
def http_client(http_stack, fast_bundle):
    import uuid

    client = LaminarClient(
        HttpTransport(http_stack.url), models=fast_bundle, echo=False
    )
    user = f"user-{uuid.uuid4().hex[:8]}"
    client.register(user, "pw")
    client.login(user, "pw")
    return client


class TestHttpRoundTrips:
    def test_register_login_over_http(self, http_client):
        assert http_client.web.token is not None

    def test_pe_lifecycle_over_http(self, http_client):
        http_client.register_PE(AddTen, "adds ten")
        cls = http_client.get_PE("AddTen")
        assert cls().process({"input": 1})[0].value == 11

    def test_serverless_run_over_http(self, http_client):
        outcome = http_client.run(build_pipeline_graph(), input=3, register=False)
        assert outcome.status == "ok"
        assert outcome.results["Collector.output"] == [[11, 12, 13]]

    def test_search_over_http(self, http_client):
        http_client.register_PE(AddTen, "Adds ten to each incoming number")
        hits = http_client.search_Registry("adds ten to a number", "pe", "text")
        assert hits[0]["peName"] == "AddTen"

    def test_url_encoded_search_path(self, http_client):
        http_client.register_PE(AddTen)
        hits = http_client.search_Registry("num + 10", "pe", "code")
        assert hits  # spaces and '+' survive URL encoding


class TestHttpErrors:
    def test_error_envelope_preserves_status(self, http_stack, fast_bundle):
        client = LaminarClient(
            HttpTransport(http_stack.url), models=fast_bundle, echo=False
        )
        with pytest.raises(AuthenticationError):
            client.login("ghost", "nope")

    def test_missing_token_over_http(self, http_stack, fast_bundle):
        client = LaminarClient(
            HttpTransport(http_stack.url), models=fast_bundle, echo=False
        )
        client.web.token = "bogus-token"
        client.web.user_name = "ghost"
        with pytest.raises(AuthenticationError):
            client.get_Registry()

    def test_unreachable_server(self, fast_bundle):
        transport = HttpTransport("http://127.0.0.1:1", timeout=0.5)
        client = LaminarClient(transport, models=fast_bundle, echo=False)
        with pytest.raises(TransportError, match="cannot reach"):
            client.register("x", "y")
