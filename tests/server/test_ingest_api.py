"""End-to-end repository ingestion: POST /v1/registry/{user}/ingest.

Covers the 202-with-job-id contract, progress-counter accuracy against
the chunker's own output, re-ingest dedup, tarball upload, request
validation, cooperative cancellation mid-ingest, and the headline
property of the batched pipeline: searches stay live (and consistent)
while an ingest is mutating the index.
"""

import base64
import io
import tarfile
import textwrap
import threading

import pytest

from repro.ingest.chunker import chunk_file
from repro.ingest.walker import iter_repo_files
from repro.net.transport import Request
from repro.server import LaminarServer


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "zz46", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "zz46", "password": "pw"})
    )
    return response.body["token"]


MODULE_TEMPLATE = textwrap.dedent(
    '''\
    """Module {index}."""

    import os

    def alpha_{index}(x):
        """Add {index}."""
        return x + {index}

    class Tool{index}:
        """Tool {index}."""

        def run(self):
            return alpha_{index}(1)
    '''
)


@pytest.fixture()
def repo_tree(tmp_path):
    root = tmp_path / "corpus"
    for index in range(6):
        target = root / f"pkg{index % 2}" / f"mod{index}.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(MODULE_TEMPLATE.format(index=index))
    (root / "README.md").write_text("# corpus\nsample text\n")
    (root / "broken.py").write_text("def broken(:\n")
    (root / "blob.py").write_bytes(b"\x00\x01\x02")
    return root


def expected_chunks(root):
    """What the chunker itself says the tree contains (golden source)."""
    count = 0
    skipped = 0
    files = 0
    for relative, text in iter_repo_files(str(root)):
        files += 1
        chunks = None if text is None else chunk_file(relative, text)
        if chunks is None:
            skipped += 1
            continue
        count += len(chunks)
    return files, skipped, count


def start_ingest(server, token, body):
    return server.dispatch(
        Request("POST", "/v1/registry/zz46/ingest", body, token=token)
    )


def finished_job(server, token, job_id):
    assert server.jobs.join(timeout=30.0)
    response = server.dispatch(
        Request("GET", f"/v1/jobs/{job_id}", token=token)
    )
    assert response.status == 200
    return response.body["job"]


class TestIngestHappyPath:
    def test_returns_job_immediately_and_counts_accurately(
        self, server, token, repo_tree
    ):
        files, skipped, chunks = expected_chunks(repo_tree)
        response = start_ingest(server, token, {"path": str(repo_tree)})
        assert response.status == 202
        assert response.body["jobId"].startswith("job-")
        assert response.body["job"]["state"] in ("queued", "running")
        assert response.body["job"]["params"]["user"] == "zz46"
        job = finished_job(server, token, response.body["jobId"])
        assert job["state"] == "succeeded", job
        progress = job["progress"]
        assert progress["filesDiscovered"] == files
        assert progress["filesSkipped"] == skipped
        assert progress["chunksDiscovered"] == chunks
        assert progress["chunksEmbedded"] == chunks
        assert progress["chunksInserted"] == chunks
        assert progress["chunksDeduped"] == 0
        assert job["result"]["inserted"] == chunks
        assert job["result"]["deduped"] == 0

    def test_ingested_chunks_are_searchable(self, server, token, repo_tree):
        response = start_ingest(server, token, {"path": str(repo_tree)})
        job = finished_job(server, token, response.body["jobId"])
        assert job["state"] == "succeeded"
        search = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/search",
                {"query": "add numbers tool", "queryType": "semantic", "k": 5},
                token=token,
            )
        )
        assert search.status == 200
        assert search.body["count"] > 0
        assert all(
            "::" in hit["peName"] for hit in search.body["hits"]
        ), "ingested names are path-scoped"

    def test_reingesting_unchanged_tree_dedupes_everything(
        self, server, token, repo_tree
    ):
        _, _, chunks = expected_chunks(repo_tree)
        first = start_ingest(server, token, {"path": str(repo_tree)})
        assert finished_job(server, token, first.body["jobId"])["state"] == (
            "succeeded"
        )
        second = start_ingest(server, token, {"path": str(repo_tree)})
        job = finished_job(server, token, second.body["jobId"])
        assert job["state"] == "succeeded"
        assert job["progress"]["chunksInserted"] == 0
        assert job["progress"]["chunksDeduped"] == chunks
        assert job["result"] == {
            "inserted": 0,
            "deduped": chunks,
            "registryVersion": job["result"]["registryVersion"],
        }

    def test_small_batches_land_the_same_corpus(self, server, token, repo_tree):
        _, _, chunks = expected_chunks(repo_tree)
        response = start_ingest(
            server, token, {"path": str(repo_tree), "batchSize": 1}
        )
        job = finished_job(server, token, response.body["jobId"])
        assert job["state"] == "succeeded"
        assert job["progress"]["chunksInserted"] == chunks


class TestArchiveIngest:
    def pack(self, root):
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w:gz") as tar:
            for relative, text in iter_repo_files(str(root)):
                if text is None:
                    continue
                data = text.encode("utf-8")
                info = tarfile.TarInfo(relative)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))
        return base64.b64encode(buffer.getvalue()).decode("ascii")

    def test_uploaded_tarball_ingests(self, server, token, repo_tree):
        response = start_ingest(
            server, token, {"archive": self.pack(repo_tree)}
        )
        assert response.status == 202
        assert response.body["job"]["params"]["source"] == "archive"
        job = finished_job(server, token, response.body["jobId"])
        assert job["state"] == "succeeded"
        assert job["progress"]["chunksInserted"] > 0

    def test_garbage_archive_fails_structurally(self, server, token):
        payload = base64.b64encode(b"definitely not a tarball").decode("ascii")
        response = start_ingest(server, token, {"archive": payload})
        assert response.status == 202  # decode is fine; extraction is not
        job = finished_job(server, token, response.body["jobId"])
        assert job["state"] == "failed"
        assert job["error"]["error"] == "ValidationError"


class TestValidation:
    def test_requires_auth(self, server, repo_tree):
        response = server.dispatch(
            Request(
                "POST", "/v1/registry/zz46/ingest", {"path": str(repo_tree)}
            )
        )
        assert response.status == 401

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"path": "/a", "archive": "aGk="},
            {"path": ""},
            {"path": 7},
            {"archive": "not-base64!!"},
            {"archive": 7},
            {"path": "/a", "batchSize": 0},
            {"path": "/a", "batchSize": "many"},
            {"path": "/a", "maxChunkLines": 1},
            {"path": "/a", "pth": "typo"},
        ],
    )
    def test_malformed_requests_are_400(self, server, token, body):
        response = start_ingest(server, token, body)
        assert response.status == 400, (body, response.body)

    def test_missing_directory_fails_as_job_error(self, server, token, tmp_path):
        response = start_ingest(
            server, token, {"path": str(tmp_path / "nowhere")}
        )
        assert response.status == 202
        job = finished_job(server, token, response.body["jobId"])
        assert job["state"] == "failed"
        assert job["error"]["error"] == "ValidationError"
        assert "code" not in job["error"]


class TestCancellation:
    def test_cancel_mid_ingest_keeps_landed_batches(
        self, server, token, repo_tree, monkeypatch
    ):
        import repro.server.v1_write as v1_write

        real = v1_write.build_pe_record
        first_batch_done = threading.Event()
        release = threading.Event()
        calls = [0]

        def gated(app, **kwargs):
            calls[0] += 1
            if calls[0] == 2:
                first_batch_done.set()
                release.wait(10)
            return real(app, **kwargs)

        monkeypatch.setattr(v1_write, "build_pe_record", gated)
        response = start_ingest(
            server, token, {"path": str(repo_tree), "batchSize": 1}
        )
        job_id = response.body["jobId"]
        assert first_batch_done.wait(10)
        cancel = server.dispatch(
            Request("POST", f"/v1/jobs/{job_id}:cancel", token=token)
        )
        assert cancel.status == 200
        release.set()
        job = finished_job(server, token, job_id)
        assert job["state"] == "cancelled"
        progress = job["progress"]
        # the first batch landed before the cancel; later ones never ran
        assert progress["chunksInserted"] >= 1
        _, _, chunks = expected_chunks(repo_tree)
        assert progress["chunksInserted"] < chunks
        # what landed is durable and searchable
        user = server.registry.get_user("zz46")
        assert len(server.registry.dao.pe_ids_owned_by(user.user_id)) == (
            progress["chunksInserted"]
        )


class TestSearchStaysLiveDuringIngest:
    def test_concurrent_searches_are_consistent(self, server, token, repo_tree):
        """Searches issued while ingest mutates the index return only
        records that exist, and any search observing a quiescent
        mutation counter matches the quiesced result bitwise."""
        query = {
            "query": "add numbers tool",
            "queryType": "semantic",
            "k": 10,
        }

        def run_search():
            return server.dispatch(
                Request(
                    "POST", "/v1/registry/zz46/search", dict(query), token=token
                )
            )

        response = start_ingest(
            server, token, {"path": str(repo_tree), "batchSize": 1}
        )
        job_id = response.body["jobId"]
        observations = []
        while True:
            state = server.jobs.get(job_id)["state"]
            before = server.registry.dao.mutation_counter()
            search = run_search()
            after = server.registry.dao.mutation_counter()
            assert search.status == 200
            observations.append((before, after, search.body))
            if state in ("succeeded", "failed", "cancelled"):
                break
        job = finished_job(server, token, job_id)
        assert job["state"] == "succeeded"

        user = server.registry.get_user("zz46")
        owned = set(server.registry.dao.pe_ids_owned_by(user.user_id))
        for _, _, body in observations:
            for hit in body["hits"]:
                # never a dangling id, even mid-mutation
                assert hit["peId"] in owned

        final_counter = server.registry.dao.mutation_counter()
        quiesced = run_search()
        assert quiesced.status == 200
        matched = 0
        for before, after, body in observations:
            if before == after == final_counter:
                assert body == quiesced.body
                matched += 1
        # the terminal-state observation necessarily ran quiesced
        assert matched >= 1
