"""POST /v1/registry/{user}/workflows:bulk — the workflow twin of
pes:bulk: one serialized write, in-batch + registry dedup, request-level
idempotency and ifVersion."""

import pytest

from repro.net.transport import Request
from repro.server import LaminarServer


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "zz46", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "zz46", "password": "pw"})
    )
    return response.body["token"]


def item(name, code=None):
    return {
        "entryPoint": name,
        "workflowCode": code or f"graph = make('{name}')",
    }


def bulk(server, token, body):
    return server.dispatch(
        Request(
            "POST", "/v1/registry/zz46/workflows:bulk", body, token=token
        )
    )


class TestBulkRegistration:
    def test_registers_many_in_one_request(self, server, token):
        response = bulk(
            server, token, {"items": [item("wfA"), item("wfB"), item("wfC")]}
        )
        assert response.status == 201, response.body
        body = response.body
        assert body["op"] == "bulk-register" and body["kind"] == "workflow"
        assert body["count"] == 3
        assert [i["entryPoint"] for i in body["items"]] == [
            "wfA",
            "wfB",
            "wfC",
        ]
        assert all(i["created"] for i in body["items"])
        # one serialized write: a single registry version for the batch
        assert body["registryVersion"] == 1

    def test_in_batch_and_registry_dedup(self, server, token):
        first = bulk(server, token, {"items": [item("wfA")]})
        assert first.status == 201
        response = bulk(
            server,
            token,
            {"items": [item("wfA"), item("wfB"), item("wfB")]},
        )
        assert response.status == 201
        created = [i["created"] for i in response.body["items"]]
        assert created == [False, True, False]
        ids = [i["workflowId"] for i in response.body["items"]]
        assert ids[1] == ids[2], "in-batch duplicate resolves to one record"

    def test_changed_code_is_a_new_registration(self, server, token):
        bulk(server, token, {"items": [item("wfA")]})
        response = bulk(
            server, token, {"items": [item("wfA", code="graph = other()")]}
        )
        # same entry point, different code -> different identity
        assert response.body["items"][0]["created"] is True

    def test_records_are_retrievable_after_bulk(self, server, token):
        bulk(server, token, {"items": [item("wfA")]})
        response = server.dispatch(
            Request("GET", "/v1/registry/zz46/workflows/wfA", token=token)
        )
        assert response.status == 200
        assert response.body["item"]["entryPoint"] == "wfA"


class TestRequestLevelKnobs:
    def test_idempotent_replay_is_exact(self, server, token):
        body = {"items": [item("wfA")], "idempotencyKey": "bulk-1"}
        first = bulk(server, token, body)
        second = bulk(server, token, body)
        assert first.status == second.status == 201
        assert first.body == second.body
        listing = server.dispatch(
            Request("GET", "/v1/registry/zz46/workflows", token=token)
        )
        assert listing.body["count"] == 1

    def test_if_version_mismatch_is_412(self, server, token):
        response = bulk(
            server, token, {"items": [item("wfA")], "ifVersion": 99}
        )
        assert response.status == 412

    def test_if_version_match_applies(self, server, token):
        response = bulk(
            server, token, {"items": [item("wfA")], "ifVersion": 0}
        )
        assert response.status == 201


class TestValidation:
    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"items": []},
            {"items": "wfA"},
            {"items": [{"workflowCode": "x"}]},  # entryPoint missing
            {"items": [{"entryPoint": "wfA"}]},  # workflowCode missing
            {"items": [item("wfA"), 7]},
            {"items": [{**item("wfA"), "ifVersion": 1}]},  # meta inside item
            {"items": [{**item("wfA"), "idempotencyKey": "k"}]},
            {"items": [item("wfA")], "extra": True},
        ],
    )
    def test_malformed_bulk_bodies_are_400(self, server, token, body):
        response = bulk(server, token, body)
        assert response.status == 400, (body, response.body)

    def test_requires_auth(self, server):
        response = server.dispatch(
            Request(
                "POST",
                "/v1/registry/zz46/workflows:bulk",
                {"items": [item("wfA")]},
            )
        )
        assert response.status == 401

    def test_item_error_names_its_position(self, server, token):
        response = bulk(
            server, token, {"items": [item("wfA"), {"entryPoint": "wfB"}]}
        )
        assert response.status == 400
        assert "items[1]" in response.body["message"]
