"""The /v1/jobs routes: auth, owner scoping, envelopes, cancellation."""

import threading

import pytest

from repro.net.transport import Request
from repro.server import LaminarServer


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


def login(server, name):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": name, "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": name, "password": "pw"})
    )
    return response.body["token"]


@pytest.fixture()
def token(server):
    return login(server, "zz46")


def submit(server, owner="zz46", fn=lambda ctx: {"ok": True}):
    snapshot = server.jobs.submit("demo", fn, owner=owner)
    assert server.jobs.join(timeout=10.0)
    return snapshot["jobId"]


class TestAuth:
    @pytest.mark.parametrize(
        "method,path",
        [
            ("GET", "/v1/jobs"),
            ("GET", "/v1/jobs/job-000001"),
            ("POST", "/v1/jobs/job-000001:cancel"),
        ],
    )
    def test_routes_require_a_token(self, server, method, path):
        response = server.dispatch(Request(method, path))
        assert response.status == 401

    def test_bogus_token_is_401(self, server):
        response = server.dispatch(Request("GET", "/v1/jobs", token="nope"))
        assert response.status == 401


class TestListing:
    def test_empty_listing_envelope(self, server, token):
        response = server.dispatch(Request("GET", "/v1/jobs", token=token))
        assert response.status == 200
        assert response.body["apiVersion"] == "v1"
        assert response.body["count"] == 0
        assert response.body["jobs"] == []

    def test_lists_own_jobs_newest_first(self, server, token):
        first = submit(server)
        second = submit(server)
        response = server.dispatch(Request("GET", "/v1/jobs", token=token))
        assert [j["jobId"] for j in response.body["jobs"]] == [second, first]
        assert response.body["count"] == 2

    def test_state_filter(self, server, token):
        submit(server)

        def boom(ctx):
            raise RuntimeError("boom")

        failed = submit(server, fn=boom)
        response = server.dispatch(
            Request("GET", "/v1/jobs", {"state": "failed"}, token=token)
        )
        assert [j["jobId"] for j in response.body["jobs"]] == [failed]

    def test_bad_state_filter_is_400(self, server, token):
        response = server.dispatch(
            Request("GET", "/v1/jobs", {"state": "sideways"}, token=token)
        )
        assert response.status == 400
        assert "state" in response.body["message"]

    def test_unknown_body_field_is_400(self, server, token):
        response = server.dispatch(
            Request("GET", "/v1/jobs", {"stat": "failed"}, token=token)
        )
        assert response.status == 400

    def test_limit_caps_the_page(self, server, token):
        for _ in range(3):
            submit(server)
        response = server.dispatch(
            Request("GET", "/v1/jobs", {"limit": 2}, token=token)
        )
        assert len(response.body["jobs"]) == 2
        assert response.body["limit"] == 2


class TestOwnerScoping:
    def test_foreign_jobs_are_invisible(self, server, token):
        job_id = submit(server, owner="zz46")
        other = login(server, "intruder")
        listing = server.dispatch(Request("GET", "/v1/jobs", token=other))
        assert listing.body["count"] == 0
        lookup = server.dispatch(
            Request("GET", f"/v1/jobs/{job_id}", token=other)
        )
        assert lookup.status == 404
        cancel = server.dispatch(
            Request("POST", f"/v1/jobs/{job_id}:cancel", token=other)
        )
        assert cancel.status == 404
        # the owner still sees it untouched
        mine = server.dispatch(Request("GET", f"/v1/jobs/{job_id}", token=token))
        assert mine.status == 200
        assert mine.body["job"]["state"] == "succeeded"

    def test_unknown_job_is_404(self, server, token):
        response = server.dispatch(
            Request("GET", "/v1/jobs/job-424242", token=token)
        )
        assert response.status == 404
        assert response.body["error"] == "NotFoundError"


class TestGetAndCancel:
    def test_get_returns_the_full_snapshot(self, server, token):
        job_id = submit(server)
        response = server.dispatch(
            Request("GET", f"/v1/jobs/{job_id}", token=token)
        )
        job = response.body["job"]
        assert response.body["apiVersion"] == "v1"
        assert job["jobId"] == job_id
        assert job["state"] == "succeeded"
        assert job["result"] == {"ok": True}
        assert job["owner"] == "zz46"

    def test_cancel_running_job_via_api(self, server, token):
        entered = threading.Event()
        release = threading.Event()

        def body(ctx):
            entered.set()
            release.wait(5)
            ctx.checkpoint()
            return {"ran": True}

        snapshot = server.jobs.submit("demo", body, owner="zz46")
        assert entered.wait(5)
        response = server.dispatch(
            Request(
                "POST", f"/v1/jobs/{snapshot['jobId']}:cancel", token=token
            )
        )
        assert response.status == 200
        assert response.body["job"]["cancelRequested"] is True
        release.set()
        assert server.jobs.join(timeout=10.0)
        final = server.dispatch(
            Request("GET", f"/v1/jobs/{snapshot['jobId']}", token=token)
        )
        assert final.body["job"]["state"] == "cancelled"

    def test_cancel_terminal_job_is_idempotent(self, server, token):
        job_id = submit(server)
        response = server.dispatch(
            Request("POST", f"/v1/jobs/{job_id}:cancel", token=token)
        )
        assert response.status == 200
        assert response.body["job"]["state"] == "succeeded"

    def test_structured_failure_is_readable(self, server, token):
        def boom(ctx):
            raise RuntimeError("kaput")

        job_id = submit(server, fn=boom)
        response = server.dispatch(
            Request("GET", f"/v1/jobs/{job_id}", token=token)
        )
        error = response.body["job"]["error"]
        assert error["error"] == "InternalError"
        assert "kaput" in error["message"]


class TestRouting:
    def test_cancel_route_needs_post(self, server, token):
        job_id = submit(server)
        response = server.dispatch(
            Request("GET", f"/v1/jobs/{job_id}:cancel", token=token)
        )
        # `{id}:cancel` never matches a GET route; the bare `{id}` route
        # swallows the whole segment and reports an unknown job
        assert response.status in (404, 405)
