"""Conditional reads: revision-backed ETags and If-None-Match 304s on
the v1 single-record GET routes, in-process and over real HTTP."""

import pytest

from repro.net.transport import Request
from repro.server import LaminarServer


@pytest.fixture()
def server(fast_bundle):
    return LaminarServer(models=fast_bundle)


@pytest.fixture()
def token(server):
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "zz46", "password": "pw"})
    )
    response = server.dispatch(
        Request("POST", "/auth/login", {"userName": "zz46", "password": "pw"})
    )
    return response.body["token"]


def put_pe(server, token, name, code=None):
    return server.dispatch(
        Request(
            "PUT",
            f"/v1/registry/zz46/pes/{name}",
            {"peCode": code or f"def {name}(): pass"},
            token=token,
        )
    )


def get_pe(server, token, name, validator=None):
    headers = {} if validator is None else {"If-None-Match": validator}
    return server.dispatch(
        Request(
            "GET",
            f"/v1/registry/zz46/pes/{name}",
            token=token,
            headers=headers,
        )
    )


class TestSingleRecordGet:
    def test_get_returns_item_and_etag(self, server, token):
        put_pe(server, token, "alpha")
        response = get_pe(server, token, "alpha")
        assert response.status == 200
        assert response.body["apiVersion"] == "v1"
        assert response.body["kind"] == "pe"
        assert response.body["item"]["peName"] == "alpha"
        assert response.body["item"]["revision"] == 1
        assert response.headers["ETag"] == '"pe-1-1"'

    def test_unknown_record_is_404(self, server, token):
        response = get_pe(server, token, "ghost")
        assert response.status == 404

    def test_requires_auth(self, server, token):
        put_pe(server, token, "alpha")
        response = server.dispatch(
            Request("GET", "/v1/registry/zz46/pes/alpha")
        )
        assert response.status == 401

    def test_workflow_get_mirrors_pe_get(self, server, token):
        server.dispatch(
            Request(
                "PUT",
                "/v1/registry/zz46/workflows/wfA",
                {"workflowCode": "graph = g()"},
                token=token,
            )
        )
        response = server.dispatch(
            Request("GET", "/v1/registry/zz46/workflows/wfA", token=token)
        )
        assert response.status == 200
        assert response.body["kind"] == "workflow"
        assert response.headers["ETag"].startswith('"workflow-')


class TestIfNoneMatch:
    def test_matching_validator_is_304(self, server, token):
        put_pe(server, token, "alpha")
        etag = get_pe(server, token, "alpha").headers["ETag"]
        response = get_pe(server, token, "alpha", validator=etag)
        assert response.status == 304
        assert response.headers["ETag"] == etag
        assert response.body == {}

    def test_star_always_matches(self, server, token):
        put_pe(server, token, "alpha")
        response = get_pe(server, token, "alpha", validator="*")
        assert response.status == 304

    def test_weak_validator_and_lists_match(self, server, token):
        put_pe(server, token, "alpha")
        etag = get_pe(server, token, "alpha").headers["ETag"]
        assert get_pe(
            server, token, "alpha", validator=f"W/{etag}"
        ).status == 304
        assert get_pe(
            server, token, "alpha", validator=f'"other", {etag}'
        ).status == 304

    def test_stale_validator_is_a_full_200(self, server, token):
        put_pe(server, token, "alpha")
        stale = get_pe(server, token, "alpha").headers["ETag"]
        # description update bumps the revision -> new ETag
        server.dispatch(
            Request(
                "PUT",
                "/v1/registry/zz46/pes/alpha",
                {"peCode": "def alpha(): pass", "description": "fresh"},
                token=token,
            )
        )
        response = get_pe(server, token, "alpha", validator=stale)
        assert response.status == 200
        assert response.headers["ETag"] != stale
        assert response.body["item"]["revision"] > 1

    def test_validator_on_missing_record_is_still_404(self, server, token):
        response = get_pe(server, token, "ghost", validator="*")
        assert response.status == 404


class TestOverRealHttp:
    def test_304_round_trip_with_empty_body(self, fast_bundle):
        import urllib.request

        from repro.server.http import HttpTransport, serve_http

        server = LaminarServer(models=fast_bundle)
        with serve_http(server) as handle:
            transport = HttpTransport(handle.url)
            creds = {"userName": "zz46", "password": "pw"}
            transport.request(Request("POST", "/auth/register", creds))
            token = transport.request(
                Request("POST", "/auth/login", creds)
            ).body["token"]
            transport.request(
                Request(
                    "PUT",
                    "/v1/registry/zz46/pes/alpha",
                    {"peCode": "def alpha(): pass"},
                    token=token,
                )
            )
            first = transport.request(
                Request("GET", "/v1/registry/zz46/pes/alpha", token=token)
            )
            assert first.status == 200
            etag = first.headers["ETag"]

            # HttpTransport path: the header rides Request.headers
            cached = transport.request(
                Request(
                    "GET",
                    "/v1/registry/zz46/pes/alpha",
                    token=token,
                    headers={"If-None-Match": etag},
                )
            )
            assert cached.status == 304
            assert cached.body == {}
            assert cached.headers.get("ETag") == etag

            # raw urllib: prove the wire payload is truly empty
            raw = urllib.request.Request(
                f"{handle.url}/v1/registry/zz46/pes/alpha",
                method="GET",
                headers={
                    "Authorization": f"Bearer {token}",
                    "If-None-Match": etag,
                },
            )
            try:
                with urllib.request.urlopen(raw, timeout=10) as reply:
                    assert reply.status == 304
                    assert reply.read() == b""
            except urllib.error.HTTPError as exc:  # some urllibs raise on 304
                assert exc.code == 304
                assert exc.read() == b""
