"""Cross-mapping equivalence and robustness of the parallel mappings.

The simple mapping defines the reference semantics; multi/MPI/redis must
produce the same multisets of results for deterministic workloads — the
property that makes dispel4py's "no manual workflow modification"
promise real.
"""

import pytest

from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings import run_workflow
from repro.errors import MappingError
from tests.helpers import (
    Collector,
    FailingPE,
    FileLineReader,
    OneToTenProducer,
    Printer,
    build_diamond_graph,
    build_pipeline_graph,
    build_wordcount_graph,
)

PARALLEL = ["multi", "mpi", "redis"]
ALL_MAPPINGS = ["simple", *PARALLEL]


@pytest.mark.parametrize("mapping", ALL_MAPPINGS)
class TestEquivalence:
    def test_pipeline_same_results(self, mapping):
        result = run_workflow(
            build_pipeline_graph(), input=6, mapping=mapping, nprocs=4, timeout=90
        )
        merged = sorted(
            value
            for values in result.results["Collector.output"]
            for value in values
        )
        assert merged == [11, 12, 13, 14, 15, 16]

    def test_wordcount_group_by_consistent(self, mapping):
        result = run_workflow(
            build_wordcount_graph(), input=9, mapping=mapping, nprocs=4, timeout=90
        )
        counts = {}
        for values in result.results.values():
            for key, count in values:
                counts[key] = counts.get(key, 0) + count
        assert counts == {"alpha": 3, "beta": 3, "gamma": 3}

    def test_diamond_both_branches_fire(self, mapping):
        result = run_workflow(
            build_diamond_graph(), input=4, mapping=mapping, nprocs=4, timeout=90
        )
        merged = sorted(
            value
            for values in result.results["Collector.output"]
            for value in values
        )
        assert merged == [2, 4, 11, 12, 13, 14]

    def test_external_file_input(self, mapping, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("x\ny\nz\n")
        graph = WorkflowGraph("files")
        graph.connect(FileLineReader(), "output", Collector(), "input")
        result = run_workflow(
            graph, input=[{"input": str(path)}], mapping=mapping,
            nprocs=3, timeout=90,
        )
        merged = sorted(
            v for values in result.results["Collector.output"] for v in values
        )
        assert merged == ["x", "y", "z"]


@pytest.mark.parametrize("mapping", PARALLEL)
class TestParallelBehaviour:
    def test_stdout_collected_across_processes(self, mapping):
        graph = WorkflowGraph("printer")
        graph.connect(OneToTenProducer(), "output", Printer(), "input")
        result = run_workflow(graph, input=5, mapping=mapping, nprocs=3, timeout=90)
        lines = sorted(
            line for line in result.stdout.splitlines() if line.startswith("value:")
        )
        assert lines == [f"value: {i}" for i in range(1, 6)]

    def test_worker_failure_surfaces_as_mapping_error(self, mapping):
        graph = WorkflowGraph("failing")
        graph.connect(OneToTenProducer(), "output", FailingPE(poison=3), "input")
        failing = graph.get_pes()[1]
        graph.connect(failing, "output", Collector(), "input")
        with pytest.raises(MappingError) as excinfo:
            run_workflow(graph, input=5, mapping=mapping, nprocs=3, timeout=60)
        # the worker traceback travels in the error details (§3.2.5:
        # "supplementary details"), not in the headline message
        assert "poisoned input 3" in (excinfo.value.details or "")

    def test_nprocs_reported(self, mapping):
        result = run_workflow(
            build_pipeline_graph(), input=2, mapping=mapping, nprocs=4, timeout=90
        )
        assert result.nprocs == 4

    def test_counters_aggregate_across_instances(self, mapping):
        result = run_workflow(
            build_pipeline_graph(), input=8, mapping=mapping, nprocs=5, timeout=90
        )
        assert result.counters["OneToTenProducer"]["consumed"] == 8
        assert result.counters["AddTen"]["consumed"] == 8


class TestProducerSharding:
    """An input=N integer is split across producer instances."""

    def test_producer_share_split(self):
        graph = build_pipeline_graph()
        graph.get_pes()[0].numprocesses = 1  # sources always get 1 instance
        result = run_workflow(graph, input=10, mapping="multi", nprocs=5, timeout=90)
        assert result.counters["OneToTenProducer"]["consumed"] == 10
        # stateful counter restarts per instance, so with one producer
        # instance the values are exactly 1..10
        merged = sorted(
            v for values in result.results["Collector.output"] for v in values
        )
        assert merged == [v + 10 for v in range(1, 11)]
