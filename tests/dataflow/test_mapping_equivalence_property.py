"""Property-based cross-mapping equivalence on generated pipelines.

The central dataflow guarantee (paper §2.1: mappings require no manual
workflow modification) stated as a property: for ANY randomly composed
deterministic pipeline, every mapping must produce the same multiset of
results as the sequential reference.

Pipelines are built from a small algebra of deterministic stages
(affine transforms, filters, fan-out duplicators, stateful reducers) so
hypothesis explores graph shapes rather than PE internals.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.core import GenericPE, IterativePE, ProducerPE
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings import run_workflow


class SeqProducer(ProducerPE):
    """Deterministic producer: 1, 2, 3, ..."""

    def __init__(self):
        ProducerPE.__init__(self)
        self.i = 0

    def _process(self):
        self.i += 1
        return self.i


class Affine(IterativePE):
    """x -> a*x + b."""

    def __init__(self, a, b):
        IterativePE.__init__(self)
        self.a, self.b = a, b

    def _process(self, x):
        return self.a * x + self.b


class ModFilter(IterativePE):
    """Forward x only when x % m == r."""

    def __init__(self, m, r):
        IterativePE.__init__(self)
        self.m, self.r = m, r

    def _process(self, x):
        if x % self.m == self.r:
            return x


class Duplicate(IterativePE):
    """Emit every input twice."""

    def __init__(self):
        IterativePE.__init__(self)

    def _process(self, x):
        self.write("output", x)
        self.write("output", x)


class SumReducer(GenericPE):
    """Stateful global reducer: emits (count, sum) at end of stream."""

    def __init__(self):
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.count = 0
        self.total = 0

    def _process(self, inputs):
        self.count += 1
        self.total += inputs["input"]

    def _postprocess(self):
        # only instances that saw data report — parallel mappings spawn
        # idle sibling instances that must stay silent for equivalence
        if self.count:
            self.write("output", (self.count, self.total))


@st.composite
def pipelines(draw):
    """A random linear pipeline with an optional reducer tail."""
    stages = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(["affine", "filter", "dup"]))
        if kind == "affine":
            stages.append(
                Affine(draw(st.integers(1, 5)), draw(st.integers(-3, 3)))
            )
        elif kind == "filter":
            m = draw(st.integers(2, 4))
            stages.append(ModFilter(m, draw(st.integers(0, m - 1))))
        else:
            stages.append(Duplicate())
    use_reducer = draw(st.booleans())
    n_items = draw(st.integers(min_value=0, max_value=12))
    return stages, use_reducer, n_items


def build(stages, use_reducer):
    graph = WorkflowGraph("property-pipeline")
    prev = SeqProducer()
    graph.add(prev)
    for stage in stages:
        graph.connect(prev, "output", stage, "input")
        prev = stage
    if use_reducer:
        graph.connect(prev, "output", SumReducer(), "input")
    return graph


def collect(result):
    return sorted(
        (key, tuple(v) if isinstance(v, list) else v)
        for key, values in result.results.items()
        for v in values
    )


class TestMappingEquivalence:
    @given(pipelines())
    @settings(max_examples=12, deadline=None)
    def test_multi_matches_simple(self, case):
        stages, use_reducer, n_items = case
        reference = collect(
            run_workflow(build(stages, use_reducer), input=n_items, mapping="simple")
        )
        parallel = collect(
            run_workflow(
                build(stages, use_reducer), input=n_items, mapping="multi",
                nprocs=4, timeout=90,
            )
        )
        assert parallel == reference

    @given(pipelines())
    @settings(max_examples=4, deadline=None)
    def test_redis_matches_simple(self, case):
        stages, use_reducer, n_items = case
        reference = collect(
            run_workflow(build(stages, use_reducer), input=n_items, mapping="simple")
        )
        parallel = collect(
            run_workflow(
                build(stages, use_reducer), input=n_items, mapping="redis",
                nprocs=4, timeout=90,
            )
        )
        assert parallel == reference

    @given(pipelines())
    @settings(max_examples=4, deadline=None)
    def test_mpi_matches_simple(self, case):
        stages, use_reducer, n_items = case
        reference = collect(
            run_workflow(build(stages, use_reducer), input=n_items, mapping="simple")
        )
        parallel = collect(
            run_workflow(
                build(stages, use_reducer), input=n_items, mapping="mpi",
                nprocs=4, timeout=90,
            )
        )
        assert parallel == reference
