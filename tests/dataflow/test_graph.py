"""Unit tests for WorkflowGraph construction and validation."""

import pytest

from repro.dataflow.core import GenericPE
from repro.dataflow.graph import WorkflowGraph
from repro.errors import GraphError
from tests.helpers import (
    AddTen,
    Collector,
    OneToTenProducer,
    build_diamond_graph,
)


def two_stage():
    graph = WorkflowGraph("two")
    producer, consumer = OneToTenProducer(), Collector()
    graph.connect(producer, "output", consumer, "input")
    return graph, producer, consumer


class TestConnect:
    def test_connect_adds_both_pes(self):
        graph, producer, consumer = two_stage()
        assert len(graph) == 2
        assert producer in graph and consumer in graph

    def test_connect_validates_source_port(self):
        graph = WorkflowGraph()
        with pytest.raises(GraphError, match="no output port 'wrong'"):
            graph.connect(OneToTenProducer(), "wrong", Collector(), "input")

    def test_connect_validates_dest_port(self):
        graph = WorkflowGraph()
        with pytest.raises(GraphError, match="no input port 'wrong'"):
            graph.connect(OneToTenProducer(), "output", Collector(), "wrong")

    def test_self_loop_rejected(self):
        graph = WorkflowGraph()
        pe = AddTen()
        with pytest.raises(GraphError, match="self-loop"):
            graph.connect(pe, "output", pe, "input")

    def test_cycle_rejected(self):
        graph = WorkflowGraph()
        a, b = AddTen(), AddTen()
        graph.connect(a, "output", b, "input")
        with pytest.raises(GraphError, match="cycle"):
            graph.connect(b, "output", a, "input")

    def test_add_rejects_non_pe(self):
        graph = WorkflowGraph()
        with pytest.raises(GraphError, match="expected a ProcessingElement"):
            graph.add("not a pe")

    def test_fan_out_same_port_allowed(self):
        graph = build_diamond_graph()
        producer = graph.roots()[0]
        assert len(graph.outgoing(producer)) == 2


class TestIntrospection:
    def test_roots_and_leaves(self):
        graph, producer, consumer = two_stage()
        assert graph.roots() == [producer]
        assert graph.leaves() == [consumer]

    def test_topological_order_respects_edges(self):
        graph = build_diamond_graph()
        order = graph.topological_order()
        position = {id(pe): i for i, pe in enumerate(order)}
        for conn in graph.get_connections():
            assert position[id(conn.source)] < position[id(conn.dest)]

    def test_incoming_outgoing(self):
        graph = build_diamond_graph()
        collector = graph.leaves()[0]
        assert len(graph.incoming(collector)) == 2
        assert graph.outgoing(collector) == []

    def test_unique_names_disambiguate(self):
        graph = WorkflowGraph()
        a, b = AddTen(), AddTen()
        graph.connect(a, "output", b, "input")
        names = set(graph.unique_names().values())
        assert names == {"AddTen", "AddTen#2"}

    def test_iteration_and_len(self):
        graph, producer, consumer = two_stage()
        assert list(graph) == [producer, consumer]
        assert len(graph) == 2


class TestValidate:
    def test_valid_graph_passes(self):
        graph, *_ = two_stage()
        graph.validate()

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            WorkflowGraph().validate()

    def test_externally_fed_root_is_legal(self):
        # astrophysics pattern: root PE with input ports, fed by the engine
        graph = WorkflowGraph()
        graph.connect(AddTen(), "output", Collector(), "input")
        graph.validate()

    def test_single_unconnected_pe_is_valid(self):
        graph = WorkflowGraph("single")
        graph.add(OneToTenProducer())
        graph.validate()


class TestRandomDags:
    """Property-style checks on randomly wired DAGs."""

    def _random_dag(self, rng, n_nodes):
        graph = WorkflowGraph("random")
        nodes = []
        for i in range(n_nodes):
            pe = GenericPE(name=f"N{i}")
            pe._add_input("input")
            pe._add_output("output")
            nodes.append(pe)
            graph.add(pe)
        # only forward edges -> guaranteed acyclic
        for i in range(n_nodes):
            for j in range(i + 1, n_nodes):
                if rng.random() < 0.3:
                    graph.connect(nodes[i], "output", nodes[j], "input")
        return graph

    def test_topological_order_valid_on_random_dags(self):
        import random

        for seed in range(10):
            rng = random.Random(seed)
            graph = self._random_dag(rng, rng.randint(2, 12))
            order = graph.topological_order()
            assert len(order) == len(graph)
            position = {id(pe): i for i, pe in enumerate(order)}
            for conn in graph.get_connections():
                assert position[id(conn.source)] < position[id(conn.dest)]
