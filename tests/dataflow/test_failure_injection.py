"""Failure-injection tests: timeouts, hangs, crashes mid-stream.

A serverless engine must never hang forever on a broken workflow; these
tests verify every parallel mapping escalates cleanly.
"""

import pytest

from repro.dataflow.core import ConsumerPE, IterativePE
from repro.dataflow.graph import WorkflowGraph
from repro.dataflow.mappings import run_workflow
from repro.errors import MappingError
from tests.helpers import Collector, FailingPE, OneToTenProducer


class HangingPE(IterativePE):
    """Sleeps far longer than any test timeout (simulated deadlock)."""

    def __init__(self):
        IterativePE.__init__(self)

    def _process(self, x):
        import time

        time.sleep(3600)


class CrashInPostprocess(ConsumerPE):
    """Processes fine, explodes during the final flush."""

    def __init__(self):
        ConsumerPE.__init__(self)

    def _process(self, x):
        pass

    def _postprocess(self):
        raise RuntimeError("flush failed")


def _graph(stage):
    graph = WorkflowGraph("failure")
    graph.connect(OneToTenProducer(), "output", stage, "input")
    return graph


class TestTimeouts:
    def test_multi_times_out_on_hang(self):
        with pytest.raises(MappingError, match="timed out"):
            run_workflow(
                _graph(HangingPE()), input=1, mapping="multi", nprocs=2,
                timeout=2.0,
            )

    def test_redis_times_out_on_hang(self):
        with pytest.raises(MappingError, match="timed out"):
            run_workflow(
                _graph(HangingPE()), input=1, mapping="redis", nprocs=2,
                timeout=2.0,
            )

    def test_mpi_times_out_on_hang(self):
        with pytest.raises(MappingError, match="timed out"):
            run_workflow(
                _graph(HangingPE()), input=1, mapping="mpi", nprocs=2,
                timeout=2.0,
            )


@pytest.mark.parametrize("mapping", ["multi", "mpi", "redis"])
class TestCrashes:
    def test_postprocess_crash_reported(self, mapping):
        with pytest.raises(MappingError) as excinfo:
            run_workflow(
                _graph(CrashInPostprocess()), input=2, mapping=mapping,
                nprocs=2, timeout=60,
            )
        assert "flush failed" in (excinfo.value.details or "")

    def test_mid_stream_crash_does_not_hang_siblings(self, mapping):
        graph = WorkflowGraph("failure")
        failing = FailingPE(poison=2)
        graph.connect(OneToTenProducer(), "output", failing, "input")
        graph.connect(failing, "output", Collector(), "input")
        with pytest.raises(MappingError):
            run_workflow(graph, input=6, mapping=mapping, nprocs=4, timeout=60)


class TestSimpleMappingPropagates:
    def test_simple_raises_directly(self):
        with pytest.raises(RuntimeError, match="poisoned input 2"):
            run_workflow(_graph(FailingPE(poison=2)), input=3, mapping="simple")
