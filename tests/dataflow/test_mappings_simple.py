"""Tests of the sequential (simple) mapping — the reference semantics."""

import pytest

from repro.dataflow.mappings import get_mapping, run_workflow
from repro.errors import ValidationError
from tests.helpers import (
    FileLineReader,
    build_diamond_graph,
    build_pipeline_graph,
    build_wordcount_graph,
    Collector,
    Printer,
    OneToTenProducer,
)
from repro.dataflow.graph import WorkflowGraph


class TestBasicEnactment:
    def test_pipeline_results(self):
        result = run_workflow(build_pipeline_graph(), input=4, mapping="simple")
        assert result.results == {"Collector.output": [[11, 12, 13, 14]]}

    def test_input_none_runs_one_iteration(self):
        result = run_workflow(build_pipeline_graph(), input=None, mapping="simple")
        assert result.results["Collector.output"] == [[11]]

    def test_input_zero_runs_nothing(self):
        result = run_workflow(build_pipeline_graph(), input=0, mapping="simple")
        assert result.results["Collector.output"] == [[]]

    def test_negative_input_rejected(self):
        with pytest.raises(ValidationError, match=">= 0"):
            run_workflow(build_pipeline_graph(), input=-1, mapping="simple")

    def test_stateful_wordcount(self):
        result = run_workflow(build_wordcount_graph(), input=7, mapping="simple")
        assert result.results["KeyCounter.output"] == [
            ("alpha", 3), ("beta", 2), ("gamma", 2),
        ]

    def test_diamond_merges_both_branches(self):
        result = run_workflow(build_diamond_graph(), input=4, mapping="simple")
        [collected] = result.results["Collector.output"]
        # branch A adds ten -> 11..14; branch B keeps evens -> 2, 4
        assert collected == [2, 4, 11, 12, 13, 14]

    def test_counters_track_consumption(self):
        result = run_workflow(build_pipeline_graph(), input=5, mapping="simple")
        assert result.counters["OneToTenProducer"]["consumed"] == 5
        assert result.counters["AddTen"]["consumed"] == 5
        assert result.counters["Collector"]["consumed"] == 5

    def test_mapping_result_metadata(self):
        result = run_workflow(build_pipeline_graph(), input=1, mapping="simple")
        assert result.mapping == "simple"
        assert result.elapsed >= 0.0


class TestStdoutCapture:
    def _print_graph(self):
        graph = WorkflowGraph("printer")
        graph.connect(OneToTenProducer(), "output", Printer(), "input")
        return graph

    def test_stdout_captured(self):
        result = run_workflow(self._print_graph(), input=3, mapping="simple")
        lines = result.stdout.strip().splitlines()
        assert lines == ["value: 1", "value: 2", "value: 3"]

    def test_capture_disabled_leaves_stdout_empty(self, capsys):
        result = run_workflow(
            self._print_graph(), input=2, mapping="simple", capture_stdout=False
        )
        assert result.stdout == ""
        assert "value: 1" in capsys.readouterr().out


class TestExternalInput:
    def _file_graph(self):
        graph = WorkflowGraph("files")
        graph.connect(FileLineReader(), "output", Collector(), "input")
        return graph

    def test_list_input_feeds_root(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("beta\nalpha\n")
        result = run_workflow(
            self._file_graph(),
            input=[{"input": str(path)}],
            mapping="simple",
        )
        assert result.results["Collector.output"] == [["alpha", "beta"]]

    def test_multiple_items_processed(self, tmp_path):
        one, two = tmp_path / "a.txt", tmp_path / "b.txt"
        one.write_text("1\n")
        two.write_text("2\n")
        result = run_workflow(
            self._file_graph(),
            input=[{"input": str(one)}, {"input": str(two)}],
            mapping="simple",
        )
        assert result.results["Collector.output"] == [["1", "2"]]

    def test_int_input_for_fed_root_rejected(self):
        with pytest.raises(ValidationError, match="expects data items"):
            run_workflow(self._file_graph(), input=3, mapping="simple")

    def test_list_input_for_producer_root_rejected(self):
        with pytest.raises(ValidationError, match="no root PE with input ports"):
            run_workflow(
                build_pipeline_graph(), input=[{"input": 1}], mapping="simple"
            )

    def test_unmatched_item_ports_rejected(self):
        with pytest.raises(ValidationError, match="match no root PE"):
            run_workflow(
                self._file_graph(), input=[{"bogus": 1}], mapping="simple"
            )

    def test_non_dict_item_rejected(self):
        with pytest.raises(ValidationError, match="dicts"):
            run_workflow(self._file_graph(), input=["x"], mapping="simple")


class TestMappingRegistry:
    def test_get_mapping_case_insensitive(self):
        assert get_mapping("SIMPLE").name == "simple"
        assert get_mapping("Multi").name == "multi"

    def test_unknown_mapping_rejected(self):
        with pytest.raises(ValidationError, match="unknown mapping"):
            get_mapping("spark")

    def test_unsupported_input_type_rejected(self):
        with pytest.raises(ValidationError, match="unsupported input type"):
            run_workflow(build_pipeline_graph(), input="five", mapping="simple")
