"""Tests for per-instance counters and aggregation."""

import time

from repro.dataflow.monitoring import InstanceCounters, Stopwatch, merge_counters


class TestCounters:
    def test_defaults(self):
        counters = InstanceCounters(pe_name="X", instance=0)
        assert counters.consumed == 0
        assert counters.produced == 0
        assert counters.process_seconds == 0.0

    def test_as_dict_round_trip(self):
        counters = InstanceCounters(pe_name="X", instance=1, consumed=3, produced=2)
        data = counters.as_dict()
        assert data["consumed"] == 3 and data["produced"] == 2

    def test_stopwatch_accumulates(self):
        counters = InstanceCounters(pe_name="X")
        with Stopwatch(counters):
            time.sleep(0.01)
        with Stopwatch(counters):
            time.sleep(0.01)
        assert counters.process_seconds >= 0.02


class TestMerge:
    def test_merge_by_pe_name(self):
        items = [
            InstanceCounters(pe_name="A", instance=0, consumed=2, produced=1),
            InstanceCounters(pe_name="A", instance=1, consumed=3, produced=2),
            InstanceCounters(pe_name="B", instance=0, consumed=5, produced=5),
        ]
        merged = merge_counters(items)
        assert merged["A"]["consumed"] == 5
        assert merged["A"]["produced"] == 3
        assert merged["A"]["instances"] == 2
        assert merged["B"]["instances"] == 1

    def test_merge_empty(self):
        assert merge_counters([]) == {}
