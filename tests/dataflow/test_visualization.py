"""Tests for DOT/ASCII workflow rendering (Figure 1 views)."""

from repro.dataflow.partition import build_concrete_workflow
from repro.dataflow.visualization import (
    abstract_to_ascii,
    abstract_to_dot,
    concrete_to_ascii,
    concrete_to_dot,
)
from repro.workflows.isprime import build_isprime_graph
from tests.helpers import build_wordcount_graph


class TestAbstractViews:
    def test_dot_contains_all_pes_and_edges(self):
        dot = abstract_to_dot(build_isprime_graph())
        for name in ("NumberProducer", "IsPrime", "PrintPrime"):
            assert f'"{name}"' in dot
        assert '"NumberProducer" -> "IsPrime"' in dot
        assert dot.startswith("digraph abstract")

    def test_dot_labels_groupings(self):
        dot = abstract_to_dot(build_wordcount_graph())
        assert "group-by" in dot

    def test_ascii_lists_edges_and_sinks(self):
        text = abstract_to_ascii(build_isprime_graph())
        assert "NumberProducer.output --> IsPrime.input" in text
        assert "PrintPrime (sink)" in text


class TestConcreteViews:
    def test_dot_enumerates_instances(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        dot = concrete_to_dot(workflow)
        assert '"IsPrime[0]"' in dot and '"IsPrime[1]"' in dot
        assert '"PrintPrime[1]"' in dot
        # producer fans out to both IsPrime instances
        assert '"NumberProducer[0]" -> "IsPrime[0]"' in dot
        assert '"NumberProducer[0]" -> "IsPrime[1]"' in dot

    def test_ascii_matches_figure_1_caption(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        text = concrete_to_ascii(workflow)
        assert "5 processes" in text
        assert "NumberProducer" in text and "x1" in text
        assert "x2" in text
