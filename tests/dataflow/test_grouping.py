"""Unit + property-based tests for stream groupings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.grouping import (
    AllToOneGrouping,
    GroupByGrouping,
    Grouping,
    OneToAllGrouping,
    ShuffleGrouping,
    make_grouping,
)
from repro.errors import GraphError

# hashable values a stream might carry
values = st.one_of(
    st.integers(),
    st.text(max_size=20),
    st.tuples(st.text(max_size=5), st.integers()),
    st.floats(allow_nan=False),
)


class TestMakeGrouping:
    def test_none_gives_shuffle(self):
        assert isinstance(make_grouping(None), ShuffleGrouping)

    def test_index_list_gives_group_by(self):
        grouping = make_grouping([0, 1])
        assert isinstance(grouping, GroupByGrouping)
        assert grouping.indices == (0, 1)

    def test_global_gives_all_to_one(self):
        assert isinstance(make_grouping("global"), AllToOneGrouping)

    def test_all_gives_one_to_all(self):
        assert isinstance(make_grouping("all"), OneToAllGrouping)

    def test_existing_grouping_passes_through(self):
        grouping = ShuffleGrouping()
        assert make_grouping(grouping) is grouping

    def test_unknown_string_rejected(self):
        with pytest.raises(GraphError, match="unknown grouping"):
            make_grouping("bogus")

    def test_unsupported_type_rejected(self):
        with pytest.raises(GraphError, match="unsupported grouping"):
            make_grouping(3.14)

    def test_empty_group_by_rejected(self):
        with pytest.raises(GraphError, match="at least one key"):
            make_grouping([])


class TestShuffle:
    def test_round_robin_cycles(self):
        grouping = ShuffleGrouping()
        routed = [grouping.route(None, 3)[0] for _ in range(7)]
        assert routed == [0, 1, 2, 0, 1, 2, 0]

    def test_new_state_resets_counter(self):
        grouping = ShuffleGrouping()
        grouping.route(None, 3)
        fresh = grouping.new_state()
        assert fresh.route(None, 3) == [0]

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_shuffle_is_balanced(self, n_instances, n_messages):
        """Round-robin never skews any instance by more than one unit."""
        grouping = ShuffleGrouping()
        counts = [0] * n_instances
        for _ in range(n_messages):
            counts[grouping.route(None, n_instances)[0]] += 1
        assert max(counts) - min(counts) <= 1


class TestGroupBy:
    @given(values, st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_same_value_same_instance(self, value, n_instances):
        """The MapReduce law: identical keys always land together."""
        a = GroupByGrouping([0])
        b = GroupByGrouping([0])  # an independent sender
        assert a.route(value, n_instances) == b.route(value, n_instances)

    @given(values, st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_route_in_bounds(self, value, n_instances):
        [index] = GroupByGrouping([0]).route(value, n_instances)
        assert 0 <= index < n_instances

    def test_key_of_selects_indices(self):
        grouping = GroupByGrouping([1])
        assert grouping.key_of(("word", 42)) == (42,)

    def test_non_indexable_value_keys_whole(self):
        grouping = GroupByGrouping([0])
        # an int is not indexable -> keyed on itself; deterministic
        assert grouping.route(5, 4) == grouping.route(5, 4)

    def test_distributes_distinct_keys(self):
        grouping = GroupByGrouping([0])
        targets = {grouping.route((f"key{i}", 1), 8)[0] for i in range(100)}
        assert len(targets) > 1  # not everything in one bucket

    def test_cross_process_determinism_uses_stable_hash(self):
        """Routing must not depend on PYTHONHASHSEED (str hash salt)."""
        grouping = GroupByGrouping([0])
        # blake2b of pickled key is stable across processes by design;
        # pin a few concrete expectations so a regression is loud
        baseline = [grouping.route((word, 1), 5)[0] for word in ("a", "b", "c")]
        again = [grouping.route((word, 1), 5)[0] for word in ("a", "b", "c")]
        assert baseline == again


class TestGlobalAndBroadcast:
    @given(values, st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_all_to_one_targets_zero(self, value, n_instances):
        assert AllToOneGrouping().route(value, n_instances) == [0]

    @given(values, st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_one_to_all_broadcasts(self, value, n_instances):
        assert OneToAllGrouping().route(value, n_instances) == list(range(n_instances))


class TestEdgeCases:
    @pytest.mark.parametrize(
        "grouping",
        [ShuffleGrouping(), GroupByGrouping([0]), AllToOneGrouping(), OneToAllGrouping()],
    )
    def test_zero_instances_rejected(self, grouping: Grouping):
        with pytest.raises(GraphError):
            grouping.route("x", 0)
