"""Tests for abstract -> concrete workflow expansion (Figure 1)."""

import pytest

from repro.dataflow.partition import (
    Router,
    build_concrete_workflow,
    distribute_processes,
)
from repro.dataflow.core import PEOutput
from repro.errors import MappingError
from repro.workflows.isprime import build_isprime_graph
from tests.helpers import build_diamond_graph, build_pipeline_graph


class TestDistribution:
    def test_figure_1_allocation(self):
        """Five processes over the 3-PE IsPrime graph -> 1/2/2."""
        graph = build_isprime_graph()
        counts = distribute_processes(graph, 5)
        assert counts == [1, 2, 2]

    def test_budget_smaller_than_pes_gives_one_each(self):
        graph = build_isprime_graph()
        assert distribute_processes(graph, 1) == [1, 1, 1]

    def test_none_uses_numprocesses_attribute(self):
        graph = build_isprime_graph()
        graph.get_pes()[1].numprocesses = 4
        counts = distribute_processes(graph, None)
        assert counts == [1, 4, 1]

    def test_weighted_hints_shift_allocation(self):
        graph = build_isprime_graph()
        # hint the middle PE as the bottleneck
        for pe in graph.get_pes():
            if type(pe).__name__ == "IsPrime":
                pe.numprocesses = 3
        counts = distribute_processes(graph, 5)
        # 4 processes over weights [3, 1] -> 3/1
        assert counts == [1, 3, 1]

    def test_invalid_nprocs_rejected(self):
        with pytest.raises(MappingError, match=">= 1"):
            distribute_processes(build_isprime_graph(), 0)

    def test_total_matches_budget_when_feasible(self):
        graph = build_isprime_graph()
        for nprocs in (3, 5, 9, 12):
            assert sum(distribute_processes(graph, nprocs)) == nprocs


class TestConcreteWorkflow:
    def test_instances_enumerated_in_topo_order(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        assert workflow.total_instances == 5
        names = [info.pe_name for info in workflow.instances]
        assert names == [
            "NumberProducer", "IsPrime", "IsPrime", "PrintPrime", "PrintPrime",
        ]
        assert [info.local_index for info in workflow.instances] == [0, 0, 1, 0, 1]

    def test_routes_resolve_dest_instances(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        [target] = workflow.routes[(0, "output")]
        assert target.dest_port == "input"
        assert target.dest_gids == (1, 2)

    def test_expected_eos_counts_upstream_instances(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        # producers expect none; each IsPrime instance expects 1 (one
        # producer instance); each PrintPrime expects 2 (two IsPrime)
        assert workflow.expected_eos[0] == 0
        assert workflow.expected_eos[1] == workflow.expected_eos[2] == 1
        assert workflow.expected_eos[3] == workflow.expected_eos[4] == 2

    def test_result_ports_are_unconnected_outputs(self):
        workflow = build_concrete_workflow(build_pipeline_graph(), None)
        collector_index = workflow.pe_names.index("Collector")
        assert (collector_index, "output") in workflow.result_ports

    def test_make_instance_is_independent(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        a = workflow.make_instance(1)
        b = workflow.make_instance(2)
        assert a is not b
        assert a.instance_id == 0 and b.instance_id == 1

    def test_root_pe_indices(self):
        workflow = build_concrete_workflow(build_diamond_graph(), 4)
        roots = workflow.root_pe_indices()
        assert [workflow.pe_names[i] for i in roots] == ["OneToTenProducer"]

    def test_describe_mentions_every_pe(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        text = workflow.describe()
        for name in workflow.pe_names:
            assert name in text


class TestRouter:
    def test_shuffle_round_robin_over_instances(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        router = Router(workflow, 0)  # the producer
        first = router.route(PEOutput("output", "a"))
        second = router.route(PEOutput("output", "b"))
        assert [m[0] for m in first] == [1]
        assert [m[0] for m in second] == [2]

    def test_result_port_writes_not_routed(self):
        workflow = build_concrete_workflow(build_pipeline_graph(), None)
        collector_index = workflow.pe_names.index("Collector")
        router = Router(workflow, collector_index)
        assert router.is_result_port("output")
        assert router.route(PEOutput("output", [1])) == []

    def test_eos_broadcast_to_all_dest_instances(self):
        workflow = build_concrete_workflow(build_isprime_graph(), 5)
        router = Router(workflow, 0)
        assert sorted(router.eos_targets()) == [(1, "input"), (2, "input")]

    def test_fan_out_duplicates_to_both_branches(self):
        workflow = build_concrete_workflow(build_diamond_graph(), None)
        router = Router(workflow, workflow.pe_names.index("OneToTenProducer"))
        messages = router.route(PEOutput("output", 7))
        assert len(messages) == 2  # one per outgoing connection
        assert all(value == 7 for _gid, _port, value in messages)
