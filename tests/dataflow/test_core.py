"""Unit tests for PE base classes and port mechanics."""

import pytest

from repro.dataflow.core import (
    ConsumerPE,
    GenericPE,
    IterativePE,
    PEOutput,
    ProducerPE,
    make_iterative_pe,
)
from repro.errors import GraphError
from tests.helpers import Collector, OneToTenProducer


class TestPortDeclaration:
    def test_producer_has_single_output(self):
        pe = ProducerPE()
        assert list(pe.port_names(inputs=False)) == ["output"]
        assert list(pe.port_names(inputs=True)) == []

    def test_iterative_has_input_and_output(self):
        pe = IterativePE()
        assert list(pe.port_names(inputs=True)) == ["input"]
        assert list(pe.port_names(inputs=False)) == ["output"]

    def test_consumer_has_single_input(self):
        pe = ConsumerPE()
        assert list(pe.port_names(inputs=True)) == ["input"]
        assert list(pe.port_names(inputs=False)) == []

    def test_generic_custom_ports(self):
        pe = GenericPE()
        pe._add_input("left", grouping=[0])
        pe._add_input("right")
        pe._add_output("merged")
        assert set(pe.port_names(inputs=True)) == {"left", "right"}
        assert set(pe.port_names(inputs=False)) == {"merged"}
        assert pe.inputconnections["left"].grouping == [0]

    def test_duplicate_input_port_rejected(self):
        pe = GenericPE()
        pe._add_input("input")
        with pytest.raises(GraphError, match="duplicate input port"):
            pe._add_input("input")

    def test_duplicate_output_port_rejected(self):
        pe = GenericPE()
        pe._add_output("out")
        with pytest.raises(GraphError, match="duplicate output port"):
            pe._add_output("out")

    def test_is_source_reflects_input_ports(self):
        assert ProducerPE().is_source
        assert not IterativePE().is_source


class TestProcessSemantics:
    def test_return_value_routed_to_default_output(self):
        class Doubler(IterativePE):
            def _process(self, data):
                return data * 2

        outputs = Doubler().process({"input": 21})
        assert outputs == [PEOutput("output", 42)]

    def test_write_and_return_combine(self):
        class Both(IterativePE):
            def _process(self, data):
                self.write("output", "written")
                return "returned"

        outputs = Both().process({"input": None})
        assert [(o.port, o.value) for o in outputs] == [
            ("output", "written"),
            ("output", "returned"),
        ]

    def test_multiple_writes_per_call(self):
        class Fan(IterativePE):
            def _process(self, data):
                for i in range(3):
                    self.write("output", i)

        outputs = Fan().process({"input": "x"})
        assert [o.value for o in outputs] == [0, 1, 2]

    def test_none_return_emits_nothing(self):
        class Silent(IterativePE):
            def _process(self, data):
                return None

        assert Silent().process({"input": 1}) == []

    def test_write_to_unknown_port_rejected(self):
        class Bad(IterativePE):
            def _process(self, data):
                self.write("nope", data)

        with pytest.raises(GraphError, match="no output port"):
            Bad().process({"input": 1})

    def test_consumer_return_value_rejected(self):
        class BadConsumer(ConsumerPE):
            def _process(self, data):
                return data

        with pytest.raises(GraphError, match="no output port"):
            BadConsumer().process({"input": 1})

    def test_producer_process_takes_no_data(self):
        class Five(ProducerPE):
            def _process(self):
                return 5

        assert Five().process({})[0].value == 5

    def test_generic_default_output_single_port(self):
        class One(GenericPE):
            def __init__(self):
                GenericPE.__init__(self)
                self._add_input("input")
                self._add_output("only")

            def _process(self, inputs):
                return inputs["input"]

        outputs = One().process({"input": 9})
        assert outputs == [PEOutput("only", 9)]

    def test_return_with_no_output_port_rejected(self):
        class NoPort(GenericPE):
            def __init__(self):
                GenericPE.__init__(self)
                self._add_input("input")

            def _process(self, inputs):
                return 1

        with pytest.raises(GraphError, match="declares no output port"):
            NoPort().process({"input": 1})

    def test_return_ambiguous_output_rejected(self):
        class TwoPorts(GenericPE):
            def __init__(self):
                GenericPE.__init__(self)
                self._add_input("input")
                self._add_output("a")
                self._add_output("b")

            def _process(self, inputs):
                return 1

        with pytest.raises(GraphError, match="declares no output port"):
            TwoPorts().process({"input": 1})


class TestLifecycle:
    def test_postprocess_collects_writes(self):
        collector = Collector()
        collector.process({"input": 2})
        collector.process({"input": 1})
        outputs = collector.postprocess()
        assert outputs == [PEOutput("output", [1, 2])]

    def test_stateful_counter_keeps_state(self):
        producer = OneToTenProducer()
        values = [producer.process({})[0].value for _ in range(4)]
        assert values == [1, 2, 3, 4]

    def test_clone_creates_independent_state(self):
        producer = OneToTenProducer()
        producer.process({})
        clone = producer.clone()
        assert clone.counter == producer.counter
        clone.process({})
        assert clone.counter == producer.counter + 1

    def test_clone_assigns_instance_id_independently(self):
        pe = OneToTenProducer()
        clone = pe.clone()
        clone.instance_id = 3
        assert pe.instance_id is None


class TestFunctionLifting:
    def test_make_iterative_pe_wraps_function(self):
        pe = make_iterative_pe(lambda x: x + 1, name="inc")
        assert pe.name == "inc"
        assert pe.process({"input": 41})[0].value == 42

    def test_make_iterative_pe_uses_function_name(self):
        def triple(x):
            return 3 * x

        pe = make_iterative_pe(triple)
        assert pe.name == "triple"
        assert pe.process({"input": 2})[0].value == 6
