"""Tests for the simulated Redis broker."""

import multiprocessing as mp
import time

import pytest

from repro.brokersim import BrokerServer
from repro.errors import MappingError


@pytest.fixture()
def broker():
    server = BrokerServer(n_clients=4)
    server.start()
    yield server
    server.shutdown()


class TestLists:
    def test_rpush_blpop_fifo(self, broker):
        client = broker.client(0)
        client.rpush("queue", "a")
        client.rpush("queue", "b", "c")
        assert client.blpop("queue", timeout=1.0) == ("queue", "a")
        assert client.blpop("queue", timeout=1.0) == ("queue", "b")
        assert client.blpop("queue", timeout=1.0) == ("queue", "c")

    def test_lpush_prepends(self, broker):
        client = broker.client(0)
        client.rpush("queue", "middle")
        client.lpush("queue", "front")
        assert client.lpop("queue") == "front"

    def test_llen_and_lrange(self, broker):
        client = broker.client(0)
        client.rpush("queue", 1, 2, 3)
        assert client.llen("queue") == 3
        assert client.lrange("queue", 0, -1) == [1, 2, 3]
        assert client.lrange("queue", 1, 1) == [2]

    def test_lpop_empty_returns_none(self, broker):
        assert broker.client(0).lpop("missing") is None

    def test_blpop_timeout_returns_none(self, broker):
        client = broker.client(0)
        t0 = time.monotonic()
        assert client.blpop("empty", timeout=0.2) is None
        assert time.monotonic() - t0 >= 0.15

    def test_blpop_woken_by_push_from_other_client(self, broker):
        waiter, pusher = broker.client(0), broker.client(1)

        def push_later():
            time.sleep(0.1)
            pusher.rpush("channel", "payload")

        import threading

        thread = threading.Thread(target=push_later)
        thread.start()
        result = waiter.blpop("channel", timeout=5.0)
        thread.join()
        assert result == ("channel", "payload")

    def test_pickled_values_round_trip(self, broker):
        client = broker.client(0)
        payload = {"nested": [1, (2, 3)], "name": "x"}
        client.rpush("objects", payload)
        assert client.blpop("objects", timeout=1.0)[1] == payload


class TestStringsAndHashes:
    def test_set_get(self, broker):
        client = broker.client(0)
        client.set("key", 42)
        assert client.get("key") == 42
        assert client.get("missing") is None

    def test_incr(self, broker):
        client = broker.client(0)
        assert client.incr("counter") == 1
        assert client.incr("counter") == 2

    def test_hset_hget_hgetall(self, broker):
        client = broker.client(0)
        client.hset("hash", "a", 1)
        client.hset("hash", "b", 2)
        assert client.hget("hash", "a") == 1
        assert client.hget("hash", "missing") is None
        assert client.hgetall("hash") == {"a": 1, "b": 2}

    def test_delete_and_keys(self, broker):
        client = broker.client(0)
        client.set("s", 1)
        client.rpush("l", 1)
        client.hset("h", "f", 1)
        assert sorted(client.keys()) == ["h", "l", "s"]
        assert client.delete("s") == 1
        assert client.delete("s") == 0
        assert client.get("s") is None


class TestProtocol:
    def test_ping(self, broker):
        assert broker.client(0).ping() == "PONG"

    def test_unknown_command_raises(self, broker):
        client = broker.client(0)
        with pytest.raises(MappingError, match="unknown command"):
            client._call("FLUSHALL")

    def test_client_id_out_of_range(self, broker):
        with pytest.raises(MappingError, match="out of range"):
            broker.client(99)

    def test_context_manager_shutdown(self):
        with BrokerServer(n_clients=1) as server:
            assert server.client(0).ping() == "PONG"
        # after exit the broker process is gone
        assert not server._process.is_alive()

    def test_shutdown_idempotent(self, broker):
        broker.shutdown()
        broker.shutdown()


def _worker_pushes(client, n):
    for i in range(n):
        client.rpush("shared", i)


class TestMultiProcess:
    def test_concurrent_pushers_from_processes(self, broker):
        n_each = 25
        procs = [
            mp.Process(target=_worker_pushes, args=(broker.client(i + 1), n_each))
            for i in range(3)
        ]
        for proc in procs:
            proc.start()
        collected = []
        client = broker.client(0)
        for _ in range(3 * n_each):
            popped = client.blpop("shared", timeout=10.0)
            assert popped is not None
            collected.append(popped[1])
        for proc in procs:
            proc.join(timeout=5.0)
        assert sorted(collected) == sorted(list(range(n_each)) * 3)
