"""Tier-1 gate: the repo's own source must lint clean.

This is the point of the whole framework — the invariants in the rule
table (:mod:`repro.analysis`) hold over the shipped tree on every test
run, so a regression (a blocking call sneaking into an async handler,
a DAO write that forgets to stamp, a journal call drifting above its
index mutation) fails CI the moment it is written, with the rule's
message explaining which documented invariant broke and why.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import all_rules, lint_paths, render_findings

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_lints_clean():
    findings, errors = lint_paths([SRC])
    assert not errors, "\n".join(f"{e.path}: {e.message}" for e in errors)
    assert not findings, "\n" + render_findings(findings)


def test_rule_registry_is_complete():
    rules = all_rules()
    # the six repo invariants plus the two dead-code passes
    expected = {
        "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
        "RPR101", "RPR102",
    }
    assert expected <= set(rules)
    for name, rule in rules.items():
        assert rule.name == name
        assert rule.summary, f"{name} has no summary"


def test_cli_lint_exits_clean():
    from repro.cli import main

    assert main(["lint", str(SRC)]) == 0


def test_cli_lint_json_shape(capsys):
    import json

    from repro.cli import main

    assert main(["lint", str(SRC), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"findings": [], "errors": []}


def test_cli_lint_reports_findings(tmp_path, capsys):
    import json

    from repro.cli import main

    bad = tmp_path / "repro" / "server" / "handler.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import time\n\n\nasync def handle(r):\n    time.sleep(1)\n",
        encoding="utf-8",
    )
    assert main(["lint", str(tmp_path)]) == 1
    assert "RPR001" in capsys.readouterr().out

    assert main(["lint", str(tmp_path), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    (finding,) = payload["findings"]
    assert finding["rule"] == "RPR001"
    assert finding["line"] == 5
    assert finding["file"].endswith("handler.py")


def test_cli_lint_unparseable_exits_2(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n", encoding="utf-8")
    assert main(["lint", str(tmp_path)]) == 2
    assert "error" in capsys.readouterr().out
