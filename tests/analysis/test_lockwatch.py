"""Unit tests for the runtime lock-order / lock-discipline detector.

The AB/BA deadlock test is deterministic: the two threads are run
*sequentially* (thread 1 takes A→B and exits, then thread 2 takes
B→A), which can never deadlock for real but writes both edge
directions into the global order graph — exactly the point of
witness-style detection: the *potential* is recorded even when the
fatal interleaving never happens.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis.lockwatch import LockWatch, current_watch


@pytest.fixture()
def watch():
    w = LockWatch(blocking_allow=())
    w.install()
    try:
        yield w
    finally:
        w.uninstall()


def _run(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join(10)
    assert not thread.is_alive()


class TestInstallation:
    def test_locks_are_instrumented_while_active(self, watch):
        lock = threading.Lock()
        assert type(lock).__name__ == "InstrumentedLock"
        assert current_watch() is watch

    def test_uninstall_restores_factories(self):
        w = LockWatch()
        w.install()
        w.uninstall()
        assert type(threading.Lock()).__name__ != "InstrumentedLock"
        assert current_watch() is None

    def test_install_refcounts(self):
        w = LockWatch()
        w.install()
        w.install()
        w.uninstall()
        assert type(threading.Lock()).__name__ == "InstrumentedLock"
        w.uninstall()
        assert type(threading.Lock()).__name__ != "InstrumentedLock"

    def test_second_watch_rejected(self, watch):
        with pytest.raises(RuntimeError):
            LockWatch().install()


class TestLockOrderCycle:
    def test_ab_ba_is_detected_sequentially(self, watch):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def t1():
            with lock_a:
                with lock_b:
                    pass

        def t2():
            with lock_b:
                with lock_a:
                    pass

        _run(t1)
        _run(t2)
        kinds = [v["kind"] for v in watch.violations]
        assert kinds == ["lock-order-cycle"]
        violation = watch.violations[0]
        assert "->" in violation["cycle"]
        assert violation["stack"]  # acquisition stack captured
        with pytest.raises(AssertionError, match="lock-order-cycle"):
            watch.raise_violations()

    def test_consistent_order_is_clean(self, watch):
        lock_a = threading.Lock()
        lock_b = threading.Lock()

        def t(_):
            with lock_a:
                with lock_b:
                    pass

        for i in range(2):
            _run(lambda: t(i))
        assert watch.violations == []
        watch.raise_violations()  # no-op

    def test_three_lock_cycle(self, watch):
        # A→B, B→C, C→A: no two-lock inversion, still a cycle.
        # Separate lines matter: locks are aggregated by allocation
        # site, and same-site edges carry no ordering information.
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        lock_c = threading.Lock()

        def pair(first, second):
            def body():
                with first:
                    with second:
                        pass
            return body

        _run(pair(lock_a, lock_b))
        _run(pair(lock_b, lock_c))
        _run(pair(lock_c, lock_a))
        assert [v["kind"] for v in watch.violations] == ["lock-order-cycle"]

    def test_reentrant_rlock_is_not_an_edge(self, watch):
        rlock = threading.RLock()
        with rlock:
            with rlock:
                pass
        assert watch.violations == []
        assert watch.edges == {}


class TestBlockingUnderLock:
    def test_sleep_under_lock_is_flagged(self, watch):
        lock = threading.Lock()
        with lock:
            time.sleep(0)
        assert [v["kind"] for v in watch.violations] == [
            "blocking-call-under-lock"
        ]
        assert watch.violations[0]["call"] == "time.sleep"
        assert watch.violations[0]["held"]

    def test_sleep_outside_lock_is_fine(self, watch):
        lock = threading.Lock()
        with lock:
            pass
        time.sleep(0)
        assert watch.violations == []

    def test_allowlist_exempts_caller(self):
        w = LockWatch(blocking_allow=("test_lockwatch.py",))
        w.install()
        try:
            lock = threading.Lock()
            with lock:
                time.sleep(0)
        finally:
            w.uninstall()
        assert w.violations == []


class TestConditionIntegration:
    def test_condition_wait_releases_held_state(self, watch):
        # Condition.wait sleeps *after* releasing the lock — must not
        # read as a blocking call under the lock.
        cond = threading.Condition()
        done = threading.Event()

        def waiter():
            with cond:
                cond.wait(timeout=0.5)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        with cond:
            cond.notify_all()
        thread.join(10)
        assert done.is_set()
        blocking = [
            v
            for v in watch.violations
            if v["kind"] == "blocking-call-under-lock"
        ]
        assert blocking == []

    def test_event_wait_is_clean(self, watch):
        event = threading.Event()

        def setter():
            time.sleep(0.02)
            event.set()

        thread = threading.Thread(target=setter)
        thread.start()
        assert event.wait(timeout=5)
        thread.join(10)
        assert [
            v
            for v in watch.violations
            if v["kind"] == "blocking-call-under-lock"
        ] == []

    def test_lock_still_owned_after_wait(self, watch):
        cond = threading.Condition()
        with cond:
            cond.wait(timeout=0.01)
            # the lock must be re-held after the wait times out
            assert cond._is_owned()
        assert watch.violations == []


class TestReporting:
    def test_render_violations_includes_stacks(self, watch):
        lock = threading.Lock()
        with lock:
            time.sleep(0)
        text = watch.render_violations()
        assert "blocking-call-under-lock" in text
        assert "time.sleep" in text
