"""Golden-file tests for the bundled lint rules.

Each rule gets at least one positive snippet (must fire) and one
negative snippet (must stay silent), linted through the public
:func:`repro.analysis.lint_source` entry point under a
``repro/...``-shaped virtual path so ``applies_to`` scoping is
exercised too.  The RPR004 positive reconstructs the PR 8
journal-before-mutation bug shape.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import lint_source


def findings_for(source, path, rule=None):
    rules = [rule] if rule else None
    found = lint_source(textwrap.dedent(source), path, rules=rules)
    return [(f.rule, f.line) for f in found]


def rules_fired(source, path, rule=None):
    return {r for r, _ in findings_for(source, path, rule)}


# ---------------------------------------------------------------------------
# RPR001 — no blocking calls in async def bodies under repro/server
# ---------------------------------------------------------------------------
class TestAsyncBlocking:
    def test_sleep_in_async_handler_fires(self):
        src = """
            import time

            async def handle(reader, writer):
                time.sleep(0.1)
        """
        assert rules_fired(src, "repro/server/http.py") == {"RPR001"}

    def test_resolves_through_import_alias(self):
        src = """
            from time import sleep as pause

            async def handle(reader, writer):
                pause(0.1)
        """
        assert rules_fired(src, "repro/server/http.py") == {"RPR001"}

    def test_sqlite_and_subprocess_fire(self):
        src = """
            import sqlite3
            import subprocess

            async def handle(request):
                conn = sqlite3.connect("x.db")
                subprocess.run(["ls"])
                return conn
        """
        found = findings_for(src, "repro/server/app.py", rule="RPR001")
        assert len(found) == 2

    def test_sync_function_is_fine(self):
        src = """
            import time

            def claim_poll():
                time.sleep(0.1)
        """
        assert rules_fired(src, "repro/server/http.py", "RPR001") == set()

    def test_nested_sync_def_inside_async_is_fine(self):
        # the blocking call runs in the executor, not on the loop
        src = """
            import time

            async def handle(request):
                def blocking_part():
                    time.sleep(0.1)
                return blocking_part
        """
        assert rules_fired(src, "repro/server/http.py", "RPR001") == set()

    def test_out_of_scope_path_is_ignored(self):
        src = """
            import time

            async def poll():
                time.sleep(0.1)
        """
        assert rules_fired(src, "repro/jobs/manager.py", "RPR001") == set()


# ---------------------------------------------------------------------------
# RPR002 — no await / blocking call while holding a lock
# ---------------------------------------------------------------------------
class TestLockDiscipline:
    def test_sleep_under_lock_fires(self):
        src = """
            import time

            def write(self):
                with self._lock:
                    time.sleep(0.5)
        """
        assert rules_fired(src, "repro/search/batcher.py") == {"RPR002"}

    def test_await_under_lock_fires(self):
        src = """
            async def write(self):
                with self.write_lock:
                    await self.flush()
        """
        assert rules_fired(src, "repro/server/app.py", "RPR002") == {
            "RPR002"
        }

    def test_work_after_lock_released_is_fine(self):
        src = """
            import time

            def write(self):
                with self._lock:
                    self.pending += 1
                time.sleep(0.5)
        """
        assert rules_fired(src, "repro/search/batcher.py", "RPR002") == set()

    def test_non_lock_context_manager_is_fine(self):
        src = """
            import time

            def load(self):
                with open("f.bin") as fh:
                    time.sleep(0.1)
                    return fh.read()
        """
        assert rules_fired(src, "repro/search/batcher.py", "RPR002") == set()

    def test_nested_function_under_lock_is_fine(self):
        # defining a function under a lock does not run it there
        src = """
            import time

            def write(self):
                with self._lock:
                    def later():
                        time.sleep(0.5)
                    self.callback = later
        """
        assert rules_fired(src, "repro/search/batcher.py", "RPR002") == set()


# ---------------------------------------------------------------------------
# RPR003 — DAO writes to pes/workflows must bump + stamp
# ---------------------------------------------------------------------------
DAO_PATH = "repro/registry/dao.py"


class TestDaoStamps:
    def test_sql_write_without_bump_or_stamp_fires_twice(self):
        src = """
            class SqliteDAO:
                def delete_pe(self, pe_id):
                    self._conn.execute("DELETE FROM pes WHERE id=?", (pe_id,))
        """
        found = findings_for(src, DAO_PATH, rule="RPR003")
        assert len(found) == 2  # missing bump AND missing stamp

    def test_sql_write_with_bump_and_stamp_is_fine(self):
        src = """
            class SqliteDAO:
                def delete_pe(self, pe_id):
                    self._conn.execute("DELETE FROM pes WHERE id=?", (pe_id,))
                    self._bump_mutation()
                    self._stamp_shards([pe_id])
        """
        assert rules_fired(src, DAO_PATH, "RPR003") == set()

    def test_memory_store_write_needs_counter(self):
        src = """
            class InMemoryDAO:
                def add_pe(self, record):
                    self._pes[record.pe_id] = record
        """
        found = findings_for(src, DAO_PATH, rule="RPR003")
        assert len(found) == 2

    def test_memory_store_write_with_counter_and_stamp_is_fine(self):
        src = """
            class InMemoryDAO:
                def add_pe(self, record):
                    self._pes[record.pe_id] = record
                    self._mutations += 1
                    self._stamp_shards([record.pe_id])
        """
        assert rules_fired(src, DAO_PATH, "RPR003") == set()

    def test_reads_and_other_tables_are_fine(self):
        src = """
            class SqliteDAO:
                def get_pe(self, pe_id):
                    return self._conn.execute(
                        "SELECT * FROM pes WHERE id=?", (pe_id,)
                    ).fetchone()

                def put_receipt(self, key):
                    self._conn.execute(
                        "INSERT INTO receipts VALUES (?)", (key,)
                    )
        """
        assert rules_fired(src, DAO_PATH, "RPR003") == set()

    def test_only_applies_to_dao_module(self):
        src = """
            class Helper:
                def clobber(self):
                    self._conn.execute("DELETE FROM pes")
        """
        assert (
            rules_fired(src, "repro/registry/service.py", "RPR003") == set()
        )


# ---------------------------------------------------------------------------
# RPR004 — journal calls lexically follow the index mutation (PR 8 bug)
# ---------------------------------------------------------------------------
SERVICE_PATH = "repro/registry/service.py"


class TestJournalOrder:
    def test_pr8_bug_shape_journal_before_mutation_fires(self):
        # the shipped PR 8 bug: journal first, then mutate the live
        # index — an inline compaction triggered by the journal append
        # folds an index snapshot that is missing this batch
        src = """
            class RegistryService:
                def register_pe(self, user, record):
                    self._journal_delta(user.user_id, record, "add")
                    self.index.add(record.pe_id, record.vector)
        """
        assert rules_fired(src, SERVICE_PATH) == {"RPR004"}

    def test_mutation_then_journal_is_fine(self):
        src = """
            class RegistryService:
                def register_pe(self, user, record):
                    self.index.add(record.pe_id, record.vector)
                    self._journal_delta(user.user_id, record, "add")
        """
        assert rules_fired(src, SERVICE_PATH, "RPR004") == set()

    def test_index_helper_counts_as_mutation(self):
        src = """
            class RegistryService:
                def remove_pe(self, user, pe_id):
                    self._unindex_pe(user.user_id, pe_id)
                    self._journal_pe(user.user_id, pe_id, "remove")
        """
        assert rules_fired(src, SERVICE_PATH, "RPR004") == set()

    def test_journal_before_index_helper_fires(self):
        src = """
            class RegistryService:
                def remove_pe(self, user, pe_id):
                    self._journal_pe(user.user_id, pe_id, "remove")
                    self._unindex_pe(user.user_id, pe_id)
        """
        assert rules_fired(src, SERVICE_PATH, "RPR004") == {"RPR004"}

    def test_journal_helpers_themselves_are_exempt(self):
        src = """
            class RegistryService:
                def _journal_delta(self, user_id, record, op):
                    self.journal.append((user_id, record, op))
        """
        assert rules_fired(src, SERVICE_PATH, "RPR004") == set()


# ---------------------------------------------------------------------------
# RPR005 — determinism surface: no entropy, no set iteration
# ---------------------------------------------------------------------------
FUSION_PATH = "repro/search/fusion.py"


class TestDeterminism:
    def test_time_and_random_fire(self):
        src = """
            import random
            import time

            def rank(hits):
                jitter = random.random()
                now = time.time()
                return [(h, now + jitter) for h in hits]
        """
        found = findings_for(src, FUSION_PATH, rule="RPR005")
        assert len(found) == 2

    def test_set_iteration_fires(self):
        src = """
            def merge(a, b):
                return [k for k in set(a)]
        """
        assert rules_fired(src, FUSION_PATH, "RPR005") == {"RPR005"}

    def test_sorted_set_is_fine(self):
        src = """
            def merge(a, b):
                return [k for k in sorted(set(a))]
        """
        assert rules_fired(src, FUSION_PATH, "RPR005") == set()

    def test_set_membership_is_fine(self):
        src = """
            def dedupe(hits):
                seen = set()
                out = []
                for h in hits:
                    if h.doc_id not in seen:
                        seen.add(h.doc_id)
                        out.append(h)
                return out
        """
        assert rules_fired(src, FUSION_PATH, "RPR005") == set()

    def test_time_outside_surface_is_fine(self):
        src = """
            import time

            def stamp():
                return time.time()
        """
        assert rules_fired(src, "repro/jobs/manager.py", "RPR005") == set()


# ---------------------------------------------------------------------------
# RPR006 — error responses only through the envelope constructors
# ---------------------------------------------------------------------------
class TestErrorEnvelope:
    def test_raw_error_dict_fires(self):
        src = """
            def handle(request):
                return Response(
                    404, {"error": "NotFound", "code": 404, "message": "?"}
                )
        """
        assert rules_fired(src, "repro/server/shardnode.py") == {"RPR006"}

    def test_constructor_is_fine(self):
        src = """
            from repro.errors import error_envelope

            def handle(request):
                return Response(404, error_envelope("NotFound", 404, "?"))
        """
        assert (
            rules_fired(src, "repro/server/shardnode.py", "RPR006") == set()
        )

    def test_unrelated_dict_is_fine(self):
        src = """
            def handle(request):
                return Response(200, {"result": "ok", "count": 3})
        """
        assert (
            rules_fired(src, "repro/server/shardnode.py", "RPR006") == set()
        )

    def test_outside_server_is_ignored(self):
        src = """
            def job_error():
                return {"error": "InternalError", "message": "boom"}
        """
        assert rules_fired(src, "repro/jobs/manager.py", "RPR006") == set()


# ---------------------------------------------------------------------------
# RPR101 / RPR102 — dead code
# ---------------------------------------------------------------------------
class TestDeadCode:
    def test_unused_import_fires(self):
        src = """
            import json
            import os

            def dump(obj):
                return json.dumps(obj)
        """
        found = findings_for(src, "repro/util.py", rule="RPR101")
        assert found == [("RPR101", 3)]

    def test_all_export_counts_as_use(self):
        src = """
            from repro.errors import ReproError

            __all__ = ["ReproError"]
        """
        assert rules_fired(src, "repro/util.py", "RPR101") == set()

    def test_init_py_reexports_exempt(self):
        src = """
            from repro.errors import ReproError
        """
        assert rules_fired(src, "repro/sub/__init__.py", "RPR101") == set()

    def test_type_checking_imports_exempt(self):
        src = """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.server.app import LaminarServer

            def build(app: "LaminarServer"):
                return app
        """
        assert rules_fired(src, "repro/util.py", "RPR101") == set()

    def test_unused_local_fires(self):
        src = """
            def compute(x):
                tmp = x * 2
                return x + 1
        """
        assert rules_fired(src, "repro/util.py", "RPR102") == {"RPR102"}

    def test_underscore_discard_is_fine(self):
        src = """
            def compute(pair):
                _unused = pair.validate()
                return pair.left
        """
        assert rules_fired(src, "repro/util.py", "RPR102") == set()

    def test_use_in_nested_scope_counts(self):
        src = """
            def compute(x):
                doubled = x * 2
                return lambda: doubled
        """
        assert rules_fired(src, "repro/util.py", "RPR102") == set()


# ---------------------------------------------------------------------------
# Suppression directives
# ---------------------------------------------------------------------------
class TestSuppression:
    SRC = """
        import time

        def write(self):
            with self._lock:
                time.sleep(0.5){directive}
    """

    def _lint(self, directive=""):
        return rules_fired(
            self.SRC.format(directive=directive), "repro/search/batcher.py"
        )

    def test_unsuppressed_fires(self):
        assert self._lint() == {"RPR002"}

    def test_line_disable_suppresses(self):
        assert self._lint("  # lint: disable=RPR002 — reason") == set()

    def test_line_disable_other_rule_does_not(self):
        assert self._lint("  # lint: disable=RPR001 — reason") == {"RPR002"}

    def test_disable_all_suppresses(self):
        assert self._lint("  # lint: disable=all") == set()

    def test_comma_list(self):
        assert self._lint("  # lint: disable=RPR001,RPR002 — r") == set()

    def test_file_scope_disable(self):
        src = """
            # lint: disable-file=RPR002 — whole module is poll loops
            import time

            def a(self):
                with self._lock:
                    time.sleep(0.1)

            def b(self):
                with self._lock:
                    time.sleep(0.2)
        """
        assert rules_fired(src, "repro/search/batcher.py") == set()

    def test_wrong_line_does_not_suppress(self):
        src = """
            import time

            # lint: disable=RPR002 — comment on its own line above
            def write(self):
                with self._lock:
                    time.sleep(0.5)
        """
        assert rules_fired(src, "repro/search/batcher.py") == {"RPR002"}


# ---------------------------------------------------------------------------
# Framework plumbing
# ---------------------------------------------------------------------------
class TestFramework:
    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1\n", "repro/util.py", rules=["RPR999"])

    def test_findings_sorted_and_located(self):
        src = textwrap.dedent(
            """
            import json
            import os

            def f(x):
                dead = x
                return x
            """
        )
        found = lint_source(src, "repro/util.py")
        assert [f.rule for f in found] == ["RPR101", "RPR101", "RPR102"]
        assert found[0].line < found[2].line
        as_json = found[0].to_json()
        assert set(as_json) == {"file", "line", "col", "rule", "message"}
