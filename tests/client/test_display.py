"""Tests for terminal rendering of search/registry results."""

from repro.client.display import render_registry, render_search_hits, render_table


class TestRenderTable:
    def test_column_alignment(self):
        text = render_table(["id", "name"], [[1, "alpha"], [22, "b"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "alpha" in text

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderHits:
    def test_semantic_layout(self):
        hits = [
            {"peId": 2, "peName": "IsPrime", "description": "checks primes",
             "score": 0.91},
        ]
        text = render_search_hits("semantic", hits)
        assert "IsPrime" in text and "0.9100" in text

    def test_semantic_layout_with_workflow_hits(self):
        hits = [
            {"workflowId": 3, "entryPoint": "isPrime",
             "description": "prints primes", "score": 0.8},
        ]
        text = render_search_hits("semantic", hits)
        assert "workflow" in text and "isPrime" in text

    def test_code_layout(self):
        hits = [
            {"peId": 1, "peName": "NumberProducer", "description": "rng",
             "score": 0.36, "continuation": "return x"},
        ]
        text = render_search_hits("code", hits)
        assert "NumberProducer" in text

    def test_text_layout(self):
        hits = [
            {"kind": "workflow", "id": 2, "name": "isPrime",
             "description": "prints primes", "matchedOn": "name"},
        ]
        text = render_search_hits("text", hits)
        assert "isPrime" in text and "name" in text

    def test_no_results(self):
        assert render_search_hits("text", []) == "(no results)"

    def test_long_descriptions_clipped(self):
        hits = [
            {"peId": 1, "peName": "X", "description": "word " * 50,
             "score": 0.5},
        ]
        text = render_search_hits("semantic", hits)
        assert "..." in text


class TestRenderRegistry:
    def test_lists_both_sections(self):
        text = render_registry(
            [{"peId": 1, "peName": "A", "description": "d", "peImports": ["numpy"]}],
            [{"workflowId": 1, "entryPoint": "w", "description": "", "peIds": [1]}],
        )
        assert "Processing Elements:" in text
        assert "Workflows:" in text
        assert "numpy" in text

    def test_empty_registry(self):
        assert render_registry([], []) == "(registry is empty)"
