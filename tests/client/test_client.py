"""End-to-end tests of the thirteen client functions (§3.4.1)."""

import pytest

from repro.dataflow.graph import WorkflowGraph
from repro.errors import (
    AuthenticationError,
    DuplicateError,
    NotFoundError,
    ReproError,
    ValidationError,
)
from tests.helpers import (
    AddTen,
    Collector,
    EvenFilter,
    OneToTenProducer,
    build_pipeline_graph,
)


class TestAuth:
    def test_register_and_login(self, stack_client):
        # fixture already registered+logged in; register another user
        body = stack_client.register("other", "pw")
        assert body["userName"] == "other"

    def test_duplicate_register_raises_client_side(self, stack_client):
        with pytest.raises(DuplicateError):
            stack_client.register("tester", "again")

    def test_login_failure_raises(self, stack_client):
        with pytest.raises(AuthenticationError):
            stack_client.login("tester", "wrong-password")

    def test_functions_require_login(self, fast_bundle):
        from repro.client import LaminarClient, local_stack

        client = LaminarClient(local_stack(models=fast_bundle), models=fast_bundle, echo=False)
        with pytest.raises(ReproError, match="not logged in"):
            client.get_Registry()


class TestPERegistration:
    def test_register_pe_with_description(self, stack_client):
        body = stack_client.register_PE(AddTen, "Adds ten to each number")
        assert body["peName"] == "AddTen"
        assert body["description"] == "Adds ten to each number"
        assert body["descriptionOrigin"] == "user"
        assert body["peId"] >= 1

    def test_register_pe_auto_summarized(self, stack_client):
        body = stack_client.register_PE(EvenFilter)
        assert body["descriptionOrigin"] == "auto"
        assert len(body["description"]) > 5

    def test_register_pe_instance_uses_class(self, stack_client):
        body = stack_client.register_PE(OneToTenProducer())
        assert body["peName"] == "OneToTenProducer"

    def test_register_non_pe_rejected(self, stack_client):
        with pytest.raises(ValidationError, match="PE class or instance"):
            stack_client.register_PE(42)

    def test_get_pe_returns_usable_class(self, stack_client):
        stack_client.register_PE(AddTen)
        cls = stack_client.get_PE("AddTen")
        assert cls().process({"input": 1})[0].value == 11

    def test_get_pe_by_id(self, stack_client):
        pe_id = stack_client.register_PE(AddTen)["peId"]
        cls = stack_client.get_PE(pe_id)
        assert cls.__name__ == "AddTen"

    def test_remove_pe_by_name_and_id(self, stack_client):
        stack_client.register_PE(AddTen)
        assert stack_client.remove_PE("AddTen") is True
        pe_id = stack_client.register_PE(EvenFilter)["peId"]
        assert stack_client.remove_PE(pe_id) is True
        with pytest.raises(NotFoundError):
            stack_client.get_PE("AddTen")


class TestWorkflowRegistration:
    def test_register_workflow_registers_pes(self, stack_client):
        body = stack_client.register_Workflow(
            build_pipeline_graph(), "pipeline", "adds ten and collects"
        )
        assert body["entryPoint"] == "pipeline"
        assert len(body["peIds"]) == 3
        pes = stack_client.get_PEs_By_Workflow("pipeline")
        assert {p["peName"] for p in pes} == {
            "OneToTenProducer", "AddTen", "Collector",
        }

    def test_get_workflow_round_trip(self, stack_client):
        stack_client.register_Workflow(build_pipeline_graph(), "pipeline")
        graph = stack_client.get_Workflow("pipeline")
        assert isinstance(graph, WorkflowGraph)
        assert len(graph) == 3

    def test_remove_workflow(self, stack_client):
        stack_client.register_Workflow(build_pipeline_graph(), "pipeline")
        assert stack_client.remove_Workflow("pipeline") is True
        with pytest.raises(NotFoundError):
            stack_client.get_Workflow("pipeline")

    def test_get_registry_lists_everything(self, stack_client):
        stack_client.register_PE(AddTen)
        stack_client.register_Workflow(build_pipeline_graph(), "pipeline")
        registry = stack_client.get_Registry()
        names = {p["peName"] for p in registry["pes"]}
        assert "AddTen" in names
        assert [w["entryPoint"] for w in registry["workflows"]] == ["pipeline"]

    def test_describe_prints_info(self, stack_client, capsys):
        stack_client.echo = True
        stack_client.register_PE(AddTen, "adds ten")
        stack_client.describe("AddTen")
        assert "adds ten" in capsys.readouterr().out


class TestRun:
    def test_run_registered_workflow_by_name(self, stack_client):
        stack_client.register_Workflow(build_pipeline_graph(), "pipeline")
        outcome = stack_client.run("pipeline", input=3)
        assert outcome.status == "ok"
        assert outcome.results["Collector.output"] == [[11, 12, 13]]

    def test_run_by_id(self, stack_client):
        body = stack_client.register_Workflow(build_pipeline_graph(), "pipeline")
        outcome = stack_client.run(body["workflowId"], input=2)
        assert outcome.results["Collector.output"] == [[11, 12]]

    def test_run_graph_auto_registers(self, stack_client):
        outcome = stack_client.run(build_pipeline_graph(), input=2)
        assert outcome.status == "ok"
        # the workflow and its PEs are now registered (run() streamlines it)
        registry = stack_client.get_Registry()
        assert [w["entryPoint"] for w in registry["workflows"]] == ["pipeline"]

    def test_run_graph_without_registration(self, stack_client):
        outcome = stack_client.run(build_pipeline_graph(), input=2, register=False)
        assert outcome.status == "ok"
        assert stack_client.get_Registry()["workflows"] == []

    def test_run_with_multi_mapping(self, stack_client):
        outcome = stack_client.run(
            build_pipeline_graph(), input=4, process="MULTI", args={"num": 4},
            register=False,
        )
        assert outcome.mapping == "multi"
        assert outcome.nprocs == 4

    def test_unknown_mapping_rejected(self, stack_client):
        with pytest.raises(ValidationError, match="unknown mapping"):
            stack_client.run(build_pipeline_graph(), input=1, process="SPARK")

    def test_unknown_workflow_type_rejected(self, stack_client):
        with pytest.raises(ValidationError, match="name, id or WorkflowGraph"):
            stack_client.run(3.14)

    def test_missing_resources_dir_rejected(self, stack_client):
        with pytest.raises(ValidationError, match="not found"):
            stack_client.run(
                build_pipeline_graph(), input=1, resources="no-such-dir"
            )

    def test_run_with_resources(self, stack_client, tmp_path, monkeypatch):
        from tests.helpers import FileLineReader

        resources = tmp_path / "resources"
        resources.mkdir()
        (resources / "lines.txt").write_text("a\nb\n")
        monkeypatch.chdir(tmp_path)

        graph = WorkflowGraph("reader")
        graph.connect(FileLineReader(), "output", Collector(), "input")
        outcome = stack_client.run(
            graph,
            input=[{"input": "resources/lines.txt"}],
            resources=True,
            register=False,
        )
        assert outcome.results["Collector.output"] == [["a", "b"]]

    def test_stdout_forwarded_to_client(self, stack_client, capsys):
        from tests.helpers import Printer

        stack_client.echo = True
        graph = WorkflowGraph("printer")
        graph.connect(OneToTenProducer(), "output", Printer(), "input")
        stack_client.run(graph, input=2, register=False)
        out = capsys.readouterr().out
        assert "value: 1" in out and "value: 2" in out


class TestSearchFunctions:
    def test_text_search_workflow(self, stack_client):
        stack_client.register_Workflow(
            build_pipeline_graph(), "pipeline", "adds ten to numbers"
        )
        hits = stack_client.search_Registry("pipe", "workflow")
        assert hits and hits[0]["name"] == "pipeline"

    def test_semantic_search_pe(self, stack_client):
        stack_client.register_PE(AddTen, "Adds ten to each incoming number")
        stack_client.register_PE(EvenFilter, "Forwards only the even numbers")
        hits = stack_client.search_Registry(
            "a PE that adds ten to a number", "pe", "text"
        )
        assert hits[0]["peName"] == "AddTen"

    def test_code_search_pe(self, stack_client):
        stack_client.register_PE(AddTen)
        stack_client.register_PE(EvenFilter)
        hits = stack_client.search_Registry("num + 10", "pe", "code")
        assert hits[0]["peName"] == "AddTen"
        assert "continuation" in hits[0]
