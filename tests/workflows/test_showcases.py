"""Tests for the paper's two showcase workflows (§5)."""

import pytest

from repro.dataflow.mappings import run_workflow
from repro.datasets.galaxies import write_coordinates_file
from repro.datasets.votable import internal_extinction
from repro.workflows.astrophysics import build_internal_extinction_graph
from repro.workflows.isprime import IsPrime, build_isprime_graph
from repro.workflows.library import ALL_LIBRARY_PES


class TestIsPrime:
    def test_graph_shape(self):
        graph = build_isprime_graph()
        assert [type(pe).__name__ for pe in graph.topological_order()] == [
            "NumberProducer", "IsPrime", "PrintPrime",
        ]

    def test_isprime_pe_logic(self, capsys):
        pe = IsPrime()
        assert pe.process({"input": 7})[0].value == 7
        assert pe.process({"input": 8}) == []
        assert pe.process({"input": 1}) == []
        assert pe.process({"input": 2})[0].value == 2
        capsys.readouterr()

    def test_workflow_prints_only_primes(self):
        result = run_workflow(build_isprime_graph(), input=20, mapping="simple")
        printed = [
            int(line.rsplit(" ", 3)[1])
            for line in result.stdout.splitlines()
            if line.startswith("the num")
        ]
        for value in printed:
            assert all(value % i != 0 for i in range(2, value))

    @pytest.mark.parametrize("mapping", ["simple", "multi"])
    def test_figure9_scenario(self, mapping):
        """input=5, num=5: five checks, primes reported."""
        result = run_workflow(
            build_isprime_graph(), input=5, mapping=mapping, nprocs=5, timeout=90
        )
        checked = [
            line for line in result.stdout.splitlines() if "before checking" in line
        ]
        assert len(checked) == 5


class TestInternalExtinction:
    def _catalog(self, tmp_path, n=8):
        return write_coordinates_file(tmp_path / "coordinates.txt", n, seed=7)

    def test_graph_shape_matches_figure_10(self):
        graph = build_internal_extinction_graph()
        assert [type(pe).__name__ for pe in graph.topological_order()] == [
            "ReadRaDec", "GetVOTable", "FilterColumns", "InternalExtinction",
        ]

    @pytest.mark.parametrize("mapping", ["simple", "multi", "redis"])
    def test_computes_extinction_for_every_galaxy(self, mapping, tmp_path):
        catalog = self._catalog(tmp_path, n=6)
        graph = build_internal_extinction_graph(latency_s=0.0, seed=11)
        result = run_workflow(
            graph,
            input=[{"input": str(catalog)}],
            mapping=mapping,
            nprocs=5,
            timeout=120,
        )
        values = [
            value
            for values in result.results.values()
            for value in values
        ]
        assert len(values) == 6
        for name, extinction in values:
            assert str(name).startswith("CIG")
            assert 0.0 <= float(extinction) <= 1.7

    def test_deterministic_across_mappings(self, tmp_path):
        catalog = self._catalog(tmp_path, n=5)

        def run(mapping):
            graph = build_internal_extinction_graph(latency_s=0.0, seed=3)
            result = run_workflow(
                graph, input=[{"input": str(catalog)}], mapping=mapping,
                nprocs=4, timeout=120,
            )
            return sorted(
                tuple(v) for values in result.results.values() for v in values
            )

        assert run("simple") == run("multi")

    def test_extinction_values_match_formula(self, tmp_path):
        from repro.datasets.votable import VOTableService, parse_votable
        from repro.datasets.galaxies import parse_coordinates

        catalog = self._catalog(tmp_path, n=3)
        graph = build_internal_extinction_graph(latency_s=0.0, seed=5)
        result = run_workflow(
            graph, input=[{"input": str(catalog)}], mapping="simple"
        )
        produced = dict(
            v for values in result.results.values() for v in values
        )
        service = VOTableService(seed=5)
        for ra, dec in parse_coordinates(catalog.read_text()):
            [row] = parse_votable(service.query(ra, dec))
            expected = round(internal_extinction(row["t"], row["logr25"]), 4)
            assert produced[row["name"]] == pytest.approx(expected)


class TestLibrary:
    def test_figure7_population_size(self):
        assert len(ALL_LIBRARY_PES) == 22

    def test_every_library_pe_instantiable(self):
        for cls in ALL_LIBRARY_PES:
            pe = cls()
            assert pe.name == cls.__name__

    def test_library_pipeline_runs(self):
        from repro.dataflow.graph import WorkflowGraph
        from repro.workflows.library import (
            CounterProducer, IsEven, SquareNumber, CollectList,
        )

        graph = WorkflowGraph("lib")
        counter, even, square, collect = (
            CounterProducer(), IsEven(), SquareNumber(), CollectList(),
        )
        graph.connect(counter, "output", even, "input")
        graph.connect(even, "output", square, "input")
        graph.connect(square, "output", collect, "input")
        result = run_workflow(graph, input=6, mapping="simple")
        assert result.results["CollectList.output"] == [[0, 4, 16]]

    def test_wordcount_library_pes(self):
        from repro.dataflow.graph import WorkflowGraph
        from repro.workflows.library import CountWords, SentenceProducer, Tokenizer

        graph = WorkflowGraph("wc")
        graph.connect(SentenceProducer(), "output", Tokenizer(), "input")
        tokenizer = graph.get_pes()[1]
        graph.connect(tokenizer, "output", CountWords(), "input")
        result = run_workflow(graph, input=4, mapping="simple")
        counts = dict(result.results["CountWords.output"])
        assert counts["the"] >= 3
