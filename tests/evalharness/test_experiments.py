"""Integration tests for the table-reproduction drivers.

These run the real experiment code at reduced scale and assert the
paper's qualitative shape — the same checks the benchmarks record into
EXPERIMENTS.md.
"""

import pytest

from repro.evalharness.experiments import (
    Table5Config,
    run_table5,
    run_table6,
    run_table7,
)
from repro.evalharness.reporting import environment_header, format_table


@pytest.fixture(scope="module")
def table6():
    return run_table6()


@pytest.fixture(scope="module")
def table7():
    return run_table7()


class TestTable6:
    def test_all_shape_checks_pass(self, table6):
        assert all(table6["checks"].values()), table6["checks"]

    def test_mrr_levels_plausible(self, table6):
        scores = table6["scores"]
        assert 0.2 < scores["unixcoder-base"]["cosqa_mrr"] < 0.7
        assert 0.3 < scores["unixcoder-code-search"]["cosqa_mrr"] < 0.85
        assert scores["unixcoder-code-search"]["csn_mrr"] > 0.6

    def test_table_renders(self, table6):
        assert "unixcoder-base" in table6["table"]
        assert "CSN-like" in table6["table"]


class TestTable7:
    def test_all_shape_checks_pass(self, table7):
        assert all(table7["checks"].values()), table7["checks"]

    def test_covers_all_seven_paper_models(self, table7):
        labels = {row[0] for row in table7["rows"]}
        assert labels == {
            "CodeBERT",
            "GraphCodeBERT",
            "ReACC-retriever-py",
            "thenlper/gte-large",
            "BAAI/bge-large-en",
            "unixcoder-clone-detection",
            "unixcoder-code-search",
        }

    def test_reacc_p1_margin_substantial(self, table7):
        scores = table7["scores"]
        reacc = scores["ReACC-retriever-py"].p_at_1
        runner_up = max(
            s.p_at_1 for label, s in scores.items() if label != "ReACC-retriever-py"
        )
        assert reacc > runner_up


class TestTable5:
    def test_small_config_shape(self):
        # install_scale is deliberately high so the Laminar-vs-original
        # ordering rests on structural overhead (auto-install, transport)
        # rather than millisecond scheduling noise on small machines;
        # the Simple-vs-Multi ordering is still wall-clock, so allow one
        # retry on a loaded (or single-core) runner
        for _attempt in range(2):
            result = run_table5(
                Table5Config(
                    n_galaxies=16,
                    votable_latency_s=0.006,
                    nprocs=5,
                    install_scale=0.01,
                )
            )
            if all(result["checks"].values()):
                break
        assert all(result["checks"].values()), result["checks"]

    def test_times_positive_and_ordered(self):
        result = run_table5(
            Table5Config(n_galaxies=10, votable_latency_s=0.004, nprocs=4)
        )
        times = result["times"]
        for method in times.values():
            for value in method.values():
                assert value > 0


class TestReporting:
    def test_format_table(self):
        text = format_table("Title", ["a", "bb"], [["1", "22"], ["333", "4"]])
        assert text.splitlines()[0] == "Title"
        assert "333" in text

    def test_environment_header_mentions_python(self):
        assert "Python" in environment_header()
