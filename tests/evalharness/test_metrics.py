"""Tests for ranking metrics, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evalharness.metrics import (
    average_precision_at_k,
    mean_average_precision_at_k,
    mean_reciprocal_rank,
    precision_at_1,
    rank_corpus,
    reciprocal_rank,
)


def ranking(*indices):
    return np.array(indices)


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(ranking(3, 1, 2), {3}) == 1.0

    def test_third_position(self):
        assert reciprocal_rank(ranking(5, 9, 2), {2}) == pytest.approx(1 / 3)

    def test_absent_is_zero(self):
        assert reciprocal_rank(ranking(1, 2), {7}) == 0.0

    def test_empty_relevance(self):
        assert reciprocal_rank(ranking(1, 2), set()) == 0.0

    def test_first_relevant_counts(self):
        assert reciprocal_rank(ranking(4, 2, 1), {2, 1}) == pytest.approx(0.5)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision_at_k(ranking(0, 1, 2, 3), {0, 1}, k=100) == 1.0

    def test_interleaved(self):
        # relevant at positions 1 and 3: (1/1 + 2/3)/2
        ap = average_precision_at_k(ranking(0, 9, 1, 8), {0, 1}, k=100)
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_k_truncates(self):
        ap = average_precision_at_k(ranking(9, 8, 0), {0}, k=2)
        assert ap == 0.0

    def test_relevant_larger_than_k_normalized(self):
        relevant = set(range(100))
        ap = average_precision_at_k(np.arange(200), relevant, k=10)
        assert ap == 1.0  # perfect within the reachable window


class TestAggregates:
    def test_mrr_mean(self):
        rankings = np.array([[0, 1], [1, 0]])
        assert mean_reciprocal_rank(rankings, [{0}, {0}]) == pytest.approx(0.75)

    def test_map_mean(self):
        rankings = np.array([[0, 1], [1, 0]])
        value = mean_average_precision_at_k(rankings, [{0}, {0}], k=2)
        assert value == pytest.approx(0.75)

    def test_p_at_1(self):
        rankings = np.array([[0, 1], [1, 0], [2, 0]])
        assert precision_at_1(rankings, [{0}, {0}, {0}]) == pytest.approx(1 / 3)

    def test_empty_inputs(self):
        empty = np.zeros((0, 3), dtype=int)
        assert mean_reciprocal_rank(empty, []) == 0.0
        assert mean_average_precision_at_k(empty, []) == 0.0
        assert precision_at_1(empty, []) == 0.0


@st.composite
def ranking_case(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    permutation = draw(st.permutations(list(range(n))))
    relevant = draw(st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1))
    return np.array(permutation), relevant


class TestMetricProperties:
    @given(ranking_case())
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, case):
        rank_array, relevant = case
        rr = reciprocal_rank(rank_array, relevant)
        ap = average_precision_at_k(rank_array, relevant, k=100)
        assert 0.0 <= rr <= 1.0
        assert 0.0 <= ap <= 1.0

    @given(ranking_case())
    @settings(max_examples=100, deadline=None)
    def test_rr_at_least_ap_relation(self, case):
        """AP can never exceed 1; RR>=1/n always when relevant non-empty."""
        rank_array, relevant = case
        rr = reciprocal_rank(rank_array, relevant)
        assert rr >= 1.0 / len(rank_array)

    @given(st.integers(min_value=2, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_perfect_ranking_gives_ones(self, n):
        rank_array = np.arange(n)
        relevant = {0, 1}
        assert reciprocal_rank(rank_array, relevant) == 1.0
        assert average_precision_at_k(rank_array, relevant, k=100) == 1.0


class TestRankCorpus:
    def test_ranks_by_similarity(self):
        corpus = np.eye(3, dtype=np.float32)
        queries = np.array([[0.0, 1.0, 0.0]], dtype=np.float32)
        rankings = rank_corpus(queries, corpus)
        assert rankings[0][0] == 1

    def test_exclusion_masks_index(self):
        corpus = np.eye(3, dtype=np.float32)
        queries = np.array([[0.0, 1.0, 0.0]], dtype=np.float32)
        rankings = rank_corpus(queries, corpus, exclude=[1])
        assert rankings[0][0] != 1
        assert rankings[0][-1] == 1  # masked to -inf -> last

    def test_no_exclusion_none_entries(self):
        corpus = np.eye(2, dtype=np.float32)
        rankings = rank_corpus(corpus, corpus, exclude=[None, None])
        assert rankings[0][0] == 0 and rankings[1][0] == 1
