"""Shared test PEs and workflow builders.

Defined in a real file (not interactively) so ``inspect.getsource`` works
and registration-time source extraction / import analysis is exercised
for real.
"""

from __future__ import annotations

from repro.dataflow.core import ConsumerPE, GenericPE, IterativePE, ProducerPE
from repro.dataflow.graph import WorkflowGraph


class OneToTenProducer(ProducerPE):
    """Produce the integers 1, 2, 3, ... in order (deterministic)."""

    def __init__(self) -> None:
        ProducerPE.__init__(self)
        self.counter = 0

    def _process(self):
        self.counter += 1
        return self.counter


class AddTen(IterativePE):
    """Add ten to each incoming number."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        return num + 10


class EvenFilter(IterativePE):
    """Forward only even numbers."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, num):
        if num % 2 == 0:
            return num


class Collector(GenericPE):
    """Collect everything; emit the sorted list in postprocess."""

    def __init__(self) -> None:
        GenericPE.__init__(self)
        self._add_input("input", grouping="global")
        self._add_output("output")
        self.items = []

    def _process(self, inputs):
        self.items.append(inputs["input"])

    def _postprocess(self):
        self.write("output", sorted(self.items))


class Printer(ConsumerPE):
    """Print each value (stdout-capture tests)."""

    def __init__(self) -> None:
        ConsumerPE.__init__(self)

    def _process(self, data):
        print("value:", data)


class PairProducer(ProducerPE):
    """Produce deterministic (key, 1) pairs cycling over three keys."""

    KEYS = ("alpha", "beta", "gamma")

    def __init__(self) -> None:
        ProducerPE.__init__(self)
        self.cursor = 0

    def _process(self):
        key = self.KEYS[self.cursor % 3]
        self.cursor += 1
        return (key, 1)


class KeyCounter(GenericPE):
    """Count pairs per key with group-by routing (stateful)."""

    def __init__(self) -> None:
        from collections import defaultdict

        GenericPE.__init__(self)
        self._add_input("input", grouping=[0])
        self._add_output("output")
        self.counts = defaultdict(int)

    def _process(self, inputs):
        key, n = inputs["input"]
        self.counts[key] += n

    def _postprocess(self):
        for key, count in sorted(self.counts.items()):
            self.write("output", (key, count))


class FileLineReader(IterativePE):
    """Read a file path from the stream, emit one line at a time."""

    def __init__(self) -> None:
        IterativePE.__init__(self)

    def _process(self, path):
        with open(path) as handle:
            for line in handle:
                self.write("output", line.strip())


class FailingPE(IterativePE):
    """Raise on a specific input value (failure-injection tests)."""

    def __init__(self, poison=13) -> None:
        IterativePE.__init__(self)
        self.poison = poison

    def _process(self, num):
        if num == self.poison:
            raise RuntimeError(f"poisoned input {num}")
        return num


def build_pipeline_graph(name: str = "pipeline") -> WorkflowGraph:
    """Producer -> AddTen -> Collector."""
    graph = WorkflowGraph(name)
    graph.connect(OneToTenProducer(), "output", AddTen(), "input")
    add_ten = graph.get_pes()[1]
    graph.connect(add_ten, "output", Collector(), "input")
    return graph


def build_wordcount_graph(name: str = "wordcount") -> WorkflowGraph:
    """PairProducer -> KeyCounter (group-by)."""
    graph = WorkflowGraph(name)
    graph.connect(PairProducer(), "output", KeyCounter(), "input")
    return graph


def build_diamond_graph(name: str = "diamond") -> WorkflowGraph:
    """Producer fans out to two branches that merge into one collector."""
    graph = WorkflowGraph(name)
    producer = OneToTenProducer()
    add = AddTen()
    even = EvenFilter()
    collect = Collector()
    graph.connect(producer, "output", add, "input")
    graph.connect(producer, "output", even, "input")
    graph.connect(add, "output", collect, "input")
    graph.connect(even, "output", collect, "input")
    return graph
