"""Shared fixtures: an unfitted (fast) model bundle and a local stack."""

from __future__ import annotations

import pytest

from repro.client import LaminarClient, local_stack
from repro.ml.bundle import ModelBundle


@pytest.fixture(scope="session")
def fast_bundle() -> ModelBundle:
    """An unfitted model bundle — cheap to build, shared by the session."""
    return ModelBundle.default(fit=False)


@pytest.fixture()
def stack_client(fast_bundle) -> LaminarClient:
    """A logged-in client on a fresh single-process Laminar deployment."""
    client = LaminarClient(
        local_stack(models=fast_bundle), models=fast_bundle, echo=False
    )
    client.register("tester", "secret")
    client.login("tester", "secret")
    return client
