"""Shared fixtures: an unfitted (fast) model bundle, a local stack, and
the opt-in lockwatch instrumentation for the concurrency-heavy suites."""

from __future__ import annotations

import pytest

from repro.client import LaminarClient, local_stack
from repro.ml.bundle import ModelBundle

#: suites that run under lock-order/blocking-call instrumentation —
#: the concurrency-heavy surfaces (batcher, scatter, write core, jobs).
#: Matched against the test module's posix path.
_LOCKWATCH_SUITES = (
    "tests/search/test_batcher",
    "tests/search/test_scatter",
    "tests/server/test_scatter_serving",
    "tests/server/test_v1_write_api",
    "tests/server/test_write_concurrency",
    "tests/jobs/test_manager",
)


@pytest.fixture()
def lockwatch():
    """Install lock-order/blocking-call instrumentation for one test.

    Yields the active :class:`~repro.analysis.lockwatch.LockWatch`;
    at teardown, uninstalls and fails the test if any lock-order cycle
    or blocking-call-under-lock was recorded.  ``v1_write.py`` is on
    the blocking allowlist — its claim poll deliberately sleeps under
    the write lock (see the suppression comment at the call site).
    """
    from repro.analysis.lockwatch import LockWatch

    watch = LockWatch(blocking_allow=("v1_write.py",))
    watch.install()
    try:
        yield watch
    finally:
        watch.uninstall()
        watch.raise_violations()


@pytest.fixture(autouse=True)
def _lockwatch_for_concurrency_suites(request):
    """Autouse shim: turn on ``lockwatch`` for the configured suites."""
    module = getattr(request, "module", None)
    path = (getattr(module, "__file__", "") or "").replace("\\", "/")
    if any(suite in path for suite in _LOCKWATCH_SUITES):
        request.getfixturevalue("lockwatch")


@pytest.fixture(scope="session")
def fast_bundle() -> ModelBundle:
    """An unfitted model bundle — cheap to build, shared by the session."""
    return ModelBundle.default(fit=False)


@pytest.fixture()
def stack_client(fast_bundle) -> LaminarClient:
    """A logged-in client on a fresh single-process Laminar deployment."""
    client = LaminarClient(
        local_stack(models=fast_bundle), models=fast_bundle, echo=False
    )
    client.register("tester", "secret")
    client.login("tester", "secret")
    return client
