"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.mapping == "MULTI" and args.num == 5

    def test_eval_table_choices(self):
        assert build_parser().parse_args(["eval", "6"]).table == 6
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval", "9"])

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--db", "reg.db", "--no-fit"]
        )
        assert args.port == 9000 and args.db == "reg.db" and args.no_fit

    def test_search_defaults(self):
        args = build_parser().parse_args(["search", "prime numbers"])
        assert args.query == "prime numbers"
        assert args.search_type == "both" and args.query_type == "semantic"
        assert args.k is None and args.db is None

    def test_search_options(self):
        args = build_parser().parse_args(
            ["search", "randint", "--query-type", "code", "--type", "pe",
             "-k", "3", "--no-fit"]
        )
        assert args.query_type == "code" and args.search_type == "pe"
        assert args.k == 3 and args.no_fit

    def test_register_options(self):
        args = build_parser().parse_args(
            ["register", "adder", "--code", "def adder(): pass",
             "--if-version", "0", "--idempotency-key", "k1", "--json"]
        )
        assert args.name == "adder" and args.kind == "pe"
        assert args.if_version == 0 and args.idempotency_key == "k1"
        assert args.json and args.bulk is None

    def test_register_bulk_allows_missing_name(self):
        args = build_parser().parse_args(["register", "--bulk", "items.json"])
        assert args.name is None and args.bulk == "items.json"

    def test_delete_options(self):
        args = build_parser().parse_args(
            ["delete", "adder", "--kind", "workflow", "--if-version", "2"]
        )
        assert args.name == "adder" and args.kind == "workflow"
        assert args.if_version == 2


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--input", "4", "--mapping", "SIMPLE"])
        assert code == 0
        out = capsys.readouterr().out
        assert "isPrime" in out
        assert "before checking" in out

    def test_eval_table6(self, capsys):
        assert main(["eval", "6"]) == 0
        out = capsys.readouterr().out
        assert "unixcoder-code-search" in out
        assert "MISS" not in out

    def test_search_empty_registry(self, capsys):
        code = main(["search", "anything", "--no-fit"])
        assert code == 0
        assert "(no results)" in capsys.readouterr().out

    def test_search_unknown_user_on_persistent_db(self, capsys, tmp_path):
        """A read-only command must not create users in a persistent
        registry — unknown user is an error, not a registration."""
        from repro.registry.dao import SqliteDAO

        db = tmp_path / "reg.db"
        SqliteDAO(db).close()  # initialize an empty registry
        code = main(
            ["search", "x", "--db", str(db), "--user", "ghost", "--no-fit"]
        )
        assert code == 1
        assert "unknown user" in capsys.readouterr().out
        dao = SqliteDAO(db)
        assert dao.get_user_by_name("ghost") is None
        dao.close()

    def test_search_sqlite_roundtrip(self, capsys, tmp_path):
        """Register via one server process, search it from the CLI: the
        index is bulk-loaded from the stored embeddings at startup."""
        from repro.ml.bundle import ModelBundle
        from repro.net.transport import Request
        from repro.registry.dao import SqliteDAO
        from repro.server import LaminarServer

        db = tmp_path / "reg.db"
        server = LaminarServer(
            dao=SqliteDAO(db), models=ModelBundle.default(fit=False)
        )
        server.dispatch(
            Request("POST", "/auth/register", {"userName": "cli", "password": "cli"})
        )
        token = server.dispatch(
            Request("POST", "/auth/login", {"userName": "cli", "password": "cli"})
        ).body["token"]
        server.dispatch(
            Request(
                "POST",
                "/registry/cli/pe/add",
                {
                    "peName": "PrimeChecker",
                    "peCode": "eA==",
                    "description": "checks whether a number is prime",
                },
                token=token,
            )
        )
        server.registry.dao.close()

        code = main(["search", "prime", "--db", str(db), "--no-fit", "-k", "1"])
        assert code == 0
        assert "PrimeChecker" in capsys.readouterr().out

    def test_register_requires_name_or_bulk(self, capsys):
        assert main(["register", "--no-fit"]) == 1
        assert "name is required" in capsys.readouterr().out

    def test_register_search_delete_roundtrip(self, capsys, tmp_path):
        """The write commands drive the v1 endpoints against a real
        SQLite registry; search then serves what register stored."""
        import json

        db = str(tmp_path / "reg.db")
        code = main(
            ["register", "PrimeChecker", "--code", "def is_prime(n): pass",
             "--description", "checks whether a number is prime",
             "--db", db, "--no-fit", "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["op"] == "register" and envelope["count"] == 1
        assert envelope["items"][0]["created"] is True

        assert main(["search", "prime", "--db", db, "--no-fit", "-k", "1"]) == 0
        assert "PrimeChecker" in capsys.readouterr().out

        # conditional delete with the wrong revision refuses
        assert main(
            ["delete", "PrimeChecker", "--db", db, "--no-fit",
             "--if-version", "9"]
        ) == 1
        assert "delete failed" in capsys.readouterr().out
        assert main(["delete", "PrimeChecker", "--db", db, "--no-fit"]) == 0
        assert "removed pe" in capsys.readouterr().out

    def test_register_idempotent_replay(self, capsys, tmp_path):
        import json

        db = str(tmp_path / "reg.db")
        argv = ["register", "stable", "--code", "def stable(): pass",
                "--db", db, "--no-fit", "--idempotency-key", "cli-key",
                "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        replay = json.loads(capsys.readouterr().out)
        assert replay == first  # stored envelope verbatim

    def test_register_bulk_file(self, capsys, tmp_path):
        import json

        db = str(tmp_path / "reg.db")
        bulk = tmp_path / "items.json"
        bulk.write_text(json.dumps([
            {"peName": f"batch{i}", "peCode": f"def batch{i}(): pass"}
            for i in range(4)
        ]))
        code = main(
            ["register", "--bulk", str(bulk), "--db", db, "--no-fit",
             "--json"]
        )
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["op"] == "bulk-register" and envelope["count"] == 4

    def test_endpoints_prints_table3(self, capsys):
        assert main(["endpoints"]) == 0
        out = capsys.readouterr().out
        assert "POST    /registry/{user}/pe/add" in out
        assert "POST    /execution/{user}/run" in out

    def test_serve_builds_and_binds(self):
        # exercise the serve path without blocking: build + bind manually
        from repro.cli import _build_server
        from repro.server.http import serve_http

        server = _build_server(None, fit=False)
        with serve_http(server, port=0) as handle:
            assert handle.url.startswith("http://127.0.0.1:")


class TestIngestAndJobs:
    def test_ingest_parser_options(self):
        args = build_parser().parse_args(
            ["ingest", "/some/tree", "--batch-size", "8", "--no-wait",
             "--no-fit", "--json"]
        )
        assert args.path == "/some/tree" and args.batch_size == 8
        assert args.no_wait and args.no_fit and args.json
        assert args.server is None and args.db is None

    def test_jobs_parser_options(self):
        args = build_parser().parse_args(
            ["jobs", "job-000001", "--cancel", "--state", "running"]
        )
        assert args.job_id == "job-000001" and args.cancel
        assert args.state == "running"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs", "--state", "sideways"])

    def test_ingest_streams_progress_and_succeeds(self, capsys, tmp_path):
        (tmp_path / "mod.py").write_text(
            'def alpha(x):\n    """Doc."""\n    return x\n'
        )
        assert main(["ingest", str(tmp_path), "--no-fit"]) == 0
        out = capsys.readouterr().out
        assert "queued" in out
        assert "succeeded: 1 inserted, 0 deduped" in out

    def test_ingest_missing_directory_fails_fast(self, capsys, tmp_path):
        assert main(["ingest", str(tmp_path / "nowhere"), "--no-fit"]) == 1
        assert "not a directory" in capsys.readouterr().out

    def test_jobs_listing_starts_empty(self, capsys):
        assert main(["jobs"]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_jobs_cancel_requires_an_id(self, capsys):
        assert main(["jobs", "--cancel"]) == 1
        assert "requires a job id" in capsys.readouterr().out
