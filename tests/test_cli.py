"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.mapping == "MULTI" and args.num == 5

    def test_eval_table_choices(self):
        assert build_parser().parse_args(["eval", "6"]).table == 6
        with pytest.raises(SystemExit):
            build_parser().parse_args(["eval", "9"])

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--db", "reg.db", "--no-fit"]
        )
        assert args.port == 9000 and args.db == "reg.db" and args.no_fit


class TestCommands:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--input", "4", "--mapping", "SIMPLE"])
        assert code == 0
        out = capsys.readouterr().out
        assert "isPrime" in out
        assert "before checking" in out

    def test_eval_table6(self, capsys):
        assert main(["eval", "6"]) == 0
        out = capsys.readouterr().out
        assert "unixcoder-code-search" in out
        assert "MISS" not in out

    def test_endpoints_prints_table3(self, capsys):
        assert main(["endpoints"]) == 0
        out = capsys.readouterr().out
        assert "POST    /registry/{user}/pe/add" in out
        assert "POST    /execution/{user}/run" in out

    def test_serve_builds_and_binds(self):
        # exercise the serve path without blocking: build + bind manually
        from repro.cli import _build_server
        from repro.server.http import serve_http

        server = _build_server(None, fit=False)
        with serve_http(server, port=0) as handle:
            assert handle.url.startswith("http://127.0.0.1:")
