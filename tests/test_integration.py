"""Full-stack integration scenarios spanning every subsystem."""

import pytest

from repro.client import LaminarClient, local_stack
from repro.dataflow.graph import WorkflowGraph
from repro.datasets.galaxies import write_coordinates_file
from repro.net.latency import LatencyModel
from repro.registry.dao import SqliteDAO
from repro.workflows.astrophysics import build_internal_extinction_graph
from repro.workflows.isprime import build_isprime_graph
from repro.workflows.library import ALL_LIBRARY_PES
from tests.helpers import build_pipeline_graph


class TestPaperSession:
    """The end-to-end session the paper walks through (§3.4, §5.1)."""

    def test_full_isprime_lifecycle(self, stack_client):
        client = stack_client
        # register the showcase workflow (auto-registers its PEs)
        client.register_Workflow(
            build_isprime_graph(), "isPrime",
            "Workflow that prints random prime numbers",
        )
        # Figure 6: text search finds it by partial name
        hits = client.search_Registry("prime", "workflow")
        assert hits[0]["name"] == "isPrime"
        # Figure 7: semantic search surfaces the IsPrime PE first
        hits = client.search_Registry(
            "A PE that checks if a number is prime", "pe", "text"
        )
        assert hits[0]["peName"] == "IsPrime"
        # Figure 8: code completion finds the producer
        hits = client.search_Registry("random.randint(1, 1000)", "pe", "code")
        assert hits[0]["peName"] == "NumberProducer"
        # Listing 4 / Figure 9: run with Multi and five processes
        outcome = client.run("isPrime", input=5, process="MULTI", args={"num": 5})
        assert outcome.status == "ok"
        checked = [
            line for line in outcome.stdout.splitlines() if "before checking" in line
        ]
        assert len(checked) == 5

    def test_astrophysics_listing_5_to_7(self, stack_client, tmp_path, monkeypatch):
        client = stack_client
        write_coordinates_file(tmp_path / "resources" / "coordinates.txt", 5, seed=2)
        monkeypatch.chdir(tmp_path)
        graph = build_internal_extinction_graph(latency_s=0.0, seed=2)
        # Listing 5: register
        client.register_Workflow(
            graph, "Astrophysics",
            "A workflow to compute the internal extinction of galaxies",
        )
        # Listing 6: retrieve
        fetched = client.get_Workflow("Astrophysics")
        assert isinstance(fetched, WorkflowGraph)
        # Listing 7: execute with resources (redis mapping, smaller procs)
        outcome = client.run(
            "Astrophysics",
            input=[{"input": "resources/coordinates.txt"}],
            process="REDIS",
            args={"num": 5},
            resources=True,
        )
        assert outcome.status == "ok"
        values = [v for vs in outcome.results.values() for v in vs]
        assert len(values) == 5


class TestFigure7Population:
    def test_register_22_pes_and_search(self, stack_client):
        client = stack_client
        for cls in ALL_LIBRARY_PES:
            client.register_PE(cls)
        registry = client.get_Registry()
        assert len(registry["pes"]) == 22
        hits = client.search_Registry(
            "a PE that counts how often each word occurs", "pe", "text", k=5
        )
        assert "CountWords" in [h["peName"] for h in hits]

    def test_code_completion_over_library(self, stack_client):
        client = stack_client
        for cls in ALL_LIBRARY_PES:
            client.register_PE(cls)
        hits = client.search_Registry(
            "heapq.heappush(self.heap", "pe", "code", k=3
        )
        assert hits[0]["peName"] == "TopK"


class TestDeployments:
    def test_sqlite_backed_stack(self, tmp_path, fast_bundle):
        dao = SqliteDAO(tmp_path / "registry.db")
        client = LaminarClient(
            local_stack(dao=dao, models=fast_bundle), models=fast_bundle, echo=False
        )
        client.register("sq", "pw")
        client.login("sq", "pw")
        client.register_Workflow(build_pipeline_graph(), "pipeline")
        outcome = client.run("pipeline", input=3)
        assert outcome.results["Collector.output"] == [[11, 12, 13]]
        # the registry row really is in sqlite
        assert dao.find_workflow_by_entry_point("pipeline")

    def test_latency_shaped_remote_stack(self, fast_bundle):
        latency = LatencyModel(name="test-wan", rtt_s=0.005, sleep=True)
        client = LaminarClient(
            local_stack(latency=latency, models=fast_bundle),
            models=fast_bundle,
            echo=False,
        )
        client.register("remote", "pw")
        client.login("remote", "pw")
        outcome = client.run(build_pipeline_graph(), input=2, register=False)
        assert outcome.status == "ok"
        # every request paid the WAN cost in both directions
        assert latency.accounted_s > 0.01

    def test_two_users_share_one_stack(self, fast_bundle):
        transport = local_stack(models=fast_bundle)
        alice = LaminarClient(transport, models=fast_bundle, echo=False)
        alice.register("alice", "a")
        alice.login("alice", "a")
        bob = LaminarClient(transport, models=fast_bundle, echo=False)
        bob.register("bob", "b")
        bob.login("bob", "b")

        alice.register_Workflow(build_pipeline_graph(), "pipeline")
        # bob cannot see alice's workflow (privacy rule of §3.1)
        assert bob.get_Registry()["workflows"] == []
        # bob registering the identical workflow becomes co-owner
        bob.register_Workflow(build_pipeline_graph(), "pipeline")
        body = bob.get_Registry()["workflows"][0]
        assert len(body["owners"]) == 2


@pytest.mark.parametrize("mapping", ["SIMPLE", "MULTI", "MPI", "REDIS"])
class TestAllMappingsThroughServerlessStack:
    def test_serverless_run(self, stack_client, mapping):
        outcome = stack_client.run(
            build_pipeline_graph(),
            input=4,
            process=mapping,
            args={"num": 4},
            register=False,
        )
        assert outcome.status == "ok"
        merged = sorted(
            v
            for values in outcome.results["Collector.output"]
            for v in values
        )
        assert merged == [11, 12, 13, 14]
