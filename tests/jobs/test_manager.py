"""JobManager lifecycle: states, progress, cancellation, retention."""

import threading
import time

import pytest

from repro.errors import ValidationError
from repro.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobCancelled,
    JobManager,
)


@pytest.fixture()
def manager():
    mgr = JobManager(workers=2, retention_ttl=None, retention_cap=None)
    yield mgr
    mgr.shutdown(wait=False)


def wait_state(manager, job_id, states, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = manager.get(job_id)
        if snapshot and snapshot["state"] in states:
            return snapshot
        time.sleep(0.005)
    raise AssertionError(
        f"job {job_id} never reached {states}: {manager.get(job_id)}"
    )


class TestLifecycle:
    def test_success_records_result_and_timestamps(self, manager):
        snapshot = manager.submit(
            "demo", lambda ctx: {"answer": 42}, owner="u", params={"a": 1}
        )
        assert snapshot["state"] == "queued"
        assert snapshot["jobId"].startswith("job-")
        assert snapshot["params"] == {"a": 1}
        done = wait_state(manager, snapshot["jobId"], ("succeeded",))
        assert done["result"] == {"answer": 42}
        assert done["error"] is None
        assert done["createdAt"] <= done["startedAt"] <= done["finishedAt"]

    def test_none_return_is_success_without_result(self, manager):
        snapshot = manager.submit("demo", lambda ctx: None)
        done = wait_state(manager, snapshot["jobId"], ("succeeded",))
        assert done["result"] is None

    def test_repro_error_becomes_structured_failure(self, manager):
        def body(ctx):
            raise ValidationError("bad input", params={"field": "x"})

        snapshot = manager.submit("demo", body)
        done = wait_state(manager, snapshot["jobId"], ("failed",))
        assert done["error"]["error"] == "ValidationError"
        assert done["error"]["message"] == "bad input"
        assert done["error"]["params"] == {"field": "'x'"}
        # a job failure is not an HTTP response
        assert "code" not in done["error"]

    def test_arbitrary_exception_becomes_internal_error(self, manager):
        def body(ctx):
            raise RuntimeError("boom")

        snapshot = manager.submit("demo", body)
        done = wait_state(manager, snapshot["jobId"], ("failed",))
        assert done["error"]["error"] == "InternalError"
        assert "RuntimeError: boom" in done["error"]["message"]
        assert "traceback" in done["error"]["details"].lower() or (
            "boom" in done["error"]["details"]
        )

    def test_ids_are_sequential_and_listing_is_newest_first(self, manager):
        first = manager.submit("demo", lambda ctx: None)
        second = manager.submit("demo", lambda ctx: None)
        assert first["jobId"] < second["jobId"]
        wait_state(manager, second["jobId"], TERMINAL_STATES)
        wait_state(manager, first["jobId"], TERMINAL_STATES)
        listed = manager.list()
        assert [s["jobId"] for s in listed] == [
            second["jobId"],
            first["jobId"],
        ]

    def test_list_filters_by_owner_and_state(self, manager):
        mine = manager.submit("demo", lambda ctx: None, owner="alice")
        manager.submit("demo", lambda ctx: None, owner="bob")
        wait_state(manager, mine["jobId"], ("succeeded",))
        manager.join()
        assert [
            s["owner"] for s in manager.list(owner="alice")
        ] == ["alice"]
        assert all(
            s["state"] == "succeeded"
            for s in manager.list(state="succeeded")
        )
        assert manager.list(state="failed") == []

    def test_states_are_the_documented_vocabulary(self):
        assert JOB_STATES == (
            "queued",
            "running",
            "succeeded",
            "failed",
            "cancelled",
        )
        assert TERMINAL_STATES == {"succeeded", "failed", "cancelled"}


class TestProgress:
    def test_counters_are_monotonic(self, manager):
        seen = []

        def body(ctx):
            seen.append(ctx.advance("items", 3))
            seen.append(ctx.advance("items"))
            seen.append(ctx.advance("items", 0))
            return None

        snapshot = manager.submit("demo", body)
        done = wait_state(manager, snapshot["jobId"], ("succeeded",))
        assert seen == [3, 4, 4]
        assert done["progress"] == {"items": 4}

    def test_negative_delta_is_rejected(self, manager):
        failures = []

        def body(ctx):
            try:
                ctx.advance("items", -1)
            except ValueError as exc:
                failures.append(str(exc))
            return None

        snapshot = manager.submit("demo", body)
        wait_state(manager, snapshot["jobId"], ("succeeded",))
        assert failures and "monotonic" in failures[0]


class TestCancellation:
    def test_cancel_unknown_job_returns_none(self, manager):
        assert manager.cancel("job-999999") is None

    def test_cancel_queued_job_never_runs(self):
        manager = JobManager(workers=1)
        try:
            release = threading.Event()
            blocker = manager.submit("demo", lambda ctx: release.wait(5) and None)
            wait_state(manager, blocker["jobId"], ("running",))
            queued = manager.submit("demo", lambda ctx: {"ran": True})
            cancelled = manager.cancel(queued["jobId"])
            assert cancelled["state"] == "cancelled"
            release.set()
            done = wait_state(manager, queued["jobId"], TERMINAL_STATES)
            assert done["state"] == "cancelled"
            assert done["result"] is None
        finally:
            release.set()
            manager.shutdown(wait=False)

    def test_cancel_running_job_settles_at_checkpoint(self, manager):
        entered = threading.Event()
        release = threading.Event()

        def body(ctx):
            entered.set()
            release.wait(5)
            ctx.checkpoint()
            return {"ran": True}

        snapshot = manager.submit("demo", body)
        assert entered.wait(5)
        flagged = manager.cancel(snapshot["jobId"])
        assert flagged["state"] == "running"
        assert flagged["cancelRequested"] is True
        release.set()
        done = wait_state(manager, snapshot["jobId"], TERMINAL_STATES)
        assert done["state"] == "cancelled"

    def test_cancel_terminal_job_is_a_noop(self, manager):
        snapshot = manager.submit("demo", lambda ctx: {"ok": True})
        done = wait_state(manager, snapshot["jobId"], ("succeeded",))
        again = manager.cancel(done["jobId"])
        assert again["state"] == "succeeded"
        assert again["result"] == {"ok": True}

    def test_checkpoint_raises_job_cancelled(self, manager):
        raised = []

        def body(ctx):
            manager.cancel(ctx.job_id)
            try:
                ctx.checkpoint()
            except JobCancelled:
                raised.append(True)
                raise
            return None

        snapshot = manager.submit("demo", body)
        done = wait_state(manager, snapshot["jobId"], TERMINAL_STATES)
        assert raised == [True]
        assert done["state"] == "cancelled"


class TestRetentionAndConcurrency:
    def test_ttl_prunes_terminal_records(self):
        now = [1000.0]
        manager = JobManager(
            workers=1, retention_ttl=60.0, retention_cap=None, clock=lambda: now[0]
        )
        try:
            snapshot = manager.submit("demo", lambda ctx: None)
            wait_state(manager, snapshot["jobId"], ("succeeded",))
            assert manager.get(snapshot["jobId"]) is not None
            now[0] += 61.0
            assert manager.get(snapshot["jobId"]) is None
            assert manager.list() == []
        finally:
            manager.shutdown(wait=False)

    def test_ttl_never_prunes_live_jobs(self):
        now = [1000.0]
        manager = JobManager(
            workers=1, retention_ttl=60.0, retention_cap=None, clock=lambda: now[0]
        )
        try:
            release = threading.Event()
            running = manager.submit("demo", lambda ctx: release.wait(5) and None)
            wait_state(manager, running["jobId"], ("running",))
            now[0] += 3600.0
            assert manager.get(running["jobId"])["state"] == "running"
            release.set()
        finally:
            release.set()
            manager.shutdown(wait=False)

    def test_cap_evicts_oldest_finished_first(self):
        now = [0.0]
        manager = JobManager(
            workers=1, retention_ttl=None, retention_cap=2, clock=lambda: now[0]
        )
        try:
            ids = []
            for _ in range(4):
                now[0] += 1.0
                snapshot = manager.submit("demo", lambda ctx: None)
                wait_state(manager, snapshot["jobId"], ("succeeded",))
                ids.append(snapshot["jobId"])
            manager.submit("demo", lambda ctx: None)  # triggers prune
            manager.join()
            survivors = {s["jobId"] for s in manager.list()}
            assert ids[0] not in survivors
            assert ids[-1] in survivors
        finally:
            manager.shutdown(wait=False)

    def test_worker_pool_is_bounded(self):
        manager = JobManager(workers=2)
        try:
            release = threading.Event()
            peak = [0]
            active = [0]
            lock = threading.Lock()

            def body(ctx):
                with lock:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                release.wait(5)
                with lock:
                    active[0] -= 1
                return None

            for _ in range(6):
                manager.submit("demo", body)
            time.sleep(0.2)
            running = sum(
                1 for s in manager.list() if s["state"] == "running"
            )
            assert running <= 2
            release.set()
            assert manager.join(timeout=10.0)
            assert peak[0] <= 2
        finally:
            release.set()
            manager.shutdown(wait=False)

    def test_zero_workers_is_rejected(self):
        with pytest.raises(ValueError):
            JobManager(workers=0)
