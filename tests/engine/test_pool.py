"""Tests for the multiple-Execution-Engine extension (§3.3/§8)."""

import pytest

from repro.engine import EnginePool, ExecutionEngine, ExecutionRequest
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.net.latency import LatencyModel
from repro.serialization import serialize_object
from tests.helpers import build_pipeline_graph


def request_for(graph, **kw):
    return ExecutionRequest(workflow_code=serialize_object(graph), **kw)


class TestPoolManagement:
    def test_default_local_engine_present(self):
        pool = EnginePool()
        assert "local" in pool
        assert len(pool) == 1

    def test_register_and_get(self):
        pool = EnginePool()
        pool.register("gpu-cluster", ExecutionEngine(name="gpu-cluster"))
        assert pool.get("gpu-cluster").name == "gpu-cluster"

    def test_duplicate_name_rejected(self):
        pool = EnginePool()
        with pytest.raises(DuplicateError):
            pool.register("local", ExecutionEngine())

    def test_empty_name_rejected(self):
        pool = EnginePool()
        with pytest.raises(ValidationError):
            pool.register("  ", ExecutionEngine())

    def test_create_from_config(self):
        pool = EnginePool()
        entry = pool.create(
            "azure", install_scale=0.0, latency_preset="azure-wan",
            description="cloud engine",
        )
        assert entry.latency is not None
        assert entry.stats()["latency"] == "azure-wan"

    def test_unknown_engine_rejected(self):
        with pytest.raises(NotFoundError, match="not registered"):
            EnginePool().get("missing")

    def test_remove_engine(self):
        pool = EnginePool()
        pool.create("temp")
        pool.remove("temp")
        assert "temp" not in pool

    def test_default_engine_not_removable(self):
        with pytest.raises(ValidationError, match="cannot be removed"):
            EnginePool().remove("local")


class TestDispatch:
    def test_pinned_execution(self):
        pool = EnginePool()
        pool.create("second")
        outcome = pool.execute(
            request_for(build_pipeline_graph(), input=2), engine_name="second"
        )
        assert outcome.status == "ok"
        assert outcome.engine_name == "second"

    def test_least_load_balancing(self):
        pool = EnginePool()
        pool.create("second")
        names = [
            pool.execute(request_for(build_pipeline_graph(), input=1)).engine_name
            for _ in range(4)
        ]
        # alternates: each run goes to the currently least-used engine
        assert names.count("local") == 2 and names.count("second") == 2

    def test_latency_charged_per_execution(self):
        pool = EnginePool()
        latency = LatencyModel(name="wan", rtt_s=0.01, sleep=False)
        pool.register("remote", ExecutionEngine(name="remote"), latency=latency)
        pool.execute(
            request_for(build_pipeline_graph(), input=1), engine_name="remote"
        )
        assert latency.accounted_s > 0.0

    def test_stats_shape(self):
        pool = EnginePool()
        pool.create("extra", description="spare capacity")
        stats = pool.stats()
        assert [s["name"] for s in stats] == ["extra", "local"]
        assert stats[0]["description"] == "spare capacity"


class TestThroughTheStack:
    def test_client_engine_functions(self, stack_client):
        client = stack_client
        body = client.register_Engine(
            "remote", latency="azure-wan", description="cloud"
        )
        assert body["name"] == "remote"
        engines = client.get_Engines()
        assert {e["name"] for e in engines} == {"local", "remote"}

        outcome = client.run(
            build_pipeline_graph(), input=2, register=False, engine="remote"
        )
        assert outcome.engine_name == "remote"
        assert client.remove_Engine("remote") is True
        assert {e["name"] for e in client.get_Engines()} == {"local"}

    def test_duplicate_engine_via_client(self, stack_client):
        stack_client.register_Engine("dup")
        with pytest.raises(DuplicateError):
            stack_client.register_Engine("dup")

    def test_unknown_engine_via_client(self, stack_client):
        with pytest.raises(NotFoundError):
            stack_client.run(
                build_pipeline_graph(), input=1, register=False, engine="mars"
            )
