"""Tests for the simulated conda environment."""

import time

import pytest

from repro.engine.environment import (
    DEFAULT_PREINSTALLED,
    SimulatedCondaEnvironment,
)
from repro.errors import EnvironmentError_


class TestEnsure:
    def test_preinstalled_not_reinstalled(self):
        env = SimulatedCondaEnvironment()
        report = env.ensure(["numpy", "dispel4py"])
        assert report.installed_now == []
        assert set(report.already_present) == {"numpy", "dispel4py"}

    def test_missing_packages_installed(self):
        env = SimulatedCondaEnvironment()
        report = env.ensure(["astropy", "scipy"])
        assert set(report.installed_now) == {"astropy", "scipy"}
        assert env.is_installed("astropy")

    def test_ensure_idempotent(self):
        env = SimulatedCondaEnvironment()
        env.ensure(["astropy"])
        report = env.ensure(["astropy"])
        assert report.installed_now == []
        assert report.already_present == ["astropy"]

    def test_duplicates_in_request_collapse(self):
        env = SimulatedCondaEnvironment()
        report = env.ensure(["scipy", "scipy"])
        assert report.requested == ["scipy"]

    def test_unknown_package_charged_default_cost(self):
        env = SimulatedCondaEnvironment()
        before = env.accounted_install_s
        env.ensure(["leftpad"])
        assert env.accounted_install_s > before

    def test_strict_mode_rejects_unknown(self):
        env = SimulatedCondaEnvironment(strict=True)
        with pytest.raises(EnvironmentError_, match="not available"):
            env.ensure(["leftpad"])

    def test_report_json(self):
        report = SimulatedCondaEnvironment().ensure(["astropy"])
        body = report.to_json()
        assert body["installedNow"] == ["astropy"]
        assert body["seconds"] >= 0


class TestLatencyModel:
    def test_zero_scale_is_instant(self):
        env = SimulatedCondaEnvironment(install_latency_scale=0.0)
        t0 = time.perf_counter()
        env.ensure(["astropy", "scipy", "pandas"])
        assert time.perf_counter() - t0 < 0.2

    def test_scale_sleeps_proportionally(self):
        env = SimulatedCondaEnvironment(install_latency_scale=0.005)
        t0 = time.perf_counter()
        env.ensure(["astropy"])  # 14s nominal * 0.005 = 70ms
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.05

    def test_accounting_independent_of_scale(self):
        fast = SimulatedCondaEnvironment(install_latency_scale=0.0)
        fast.ensure(["astropy"])
        assert fast.accounted_install_s == pytest.approx(14.0)


class TestReset:
    def test_reset_restores_defaults(self):
        env = SimulatedCondaEnvironment()
        env.ensure(["astropy"])
        env.reset()
        assert env.installed == set(DEFAULT_PREINSTALLED)
        assert env.accounted_install_s == 0.0
        assert not env.is_installed("astropy")

    def test_repro_package_preinstalled(self):
        # PEs importing the bundled substrates need no installation
        assert "repro" in DEFAULT_PREINSTALLED
