"""Tests for the serverless Execution Engine (§3.3)."""

import pytest

from repro.engine import ExecutionEngine, ExecutionRequest, SimulatedCondaEnvironment
from repro.errors import ExecutionError, ValidationError
from repro.serialization import pack_resources, serialize_object
from tests.helpers import (
    AddTen,
    Collector,
    FileLineReader,
    build_pipeline_graph,
)
from repro.dataflow.graph import WorkflowGraph


@pytest.fixture()
def engine():
    return ExecutionEngine(SimulatedCondaEnvironment())


def request_for(graph, **kw):
    return ExecutionRequest(
        workflow_code=serialize_object(graph),
        workflow_name=kw.pop("name", "test-workflow"),
        **kw,
    )


class TestExecution:
    def test_simple_run(self, engine):
        outcome = engine.execute(request_for(build_pipeline_graph(), input=3))
        assert outcome.status == "ok"
        assert outcome.results["Collector.output"] == [[11, 12, 13]]
        assert outcome.mapping == "simple"

    def test_parallel_run(self, engine):
        outcome = engine.execute(
            request_for(build_pipeline_graph(), input=4, mapping="multi", nprocs=3)
        )
        assert outcome.status == "ok"
        assert outcome.nprocs == 3

    def test_root_detection_reported(self, engine):
        outcome = engine.execute(request_for(build_pipeline_graph(), input=1))
        assert outcome.root_pes == ["OneToTenProducer"]

    def test_timings_breakdown_present(self, engine):
        outcome = engine.execute(request_for(build_pipeline_graph(), input=1))
        for key in ("deserialize_s", "install_s", "resources_s", "execute_s", "total_s"):
            assert key in outcome.timings
        assert outcome.timings["total_s"] >= outcome.timings["execute_s"]

    def test_invocation_counter(self, engine):
        engine.execute(request_for(build_pipeline_graph(), input=1))
        engine.execute(request_for(build_pipeline_graph(), input=1))
        assert engine.invocations == 2


class TestPayloadShapes:
    def test_single_pe_class_faas_style(self, engine):
        # FaaS-style: a lone PE invoked with data items, like a function
        request = ExecutionRequest(
            workflow_code=serialize_object(AddTen),
            workflow_name="addten",
            input=[{"input": 5}, {"input": 7}],
        )
        outcome = engine.execute(request)
        assert outcome.status == "ok"
        assert outcome.root_pes == ["AddTen"]
        assert sorted(outcome.results["AddTen.output"]) == [15, 17]

    def test_builder_callable(self, engine):
        request = ExecutionRequest(
            workflow_code=serialize_object(build_pipeline_graph),
            input=2,
        )
        outcome = engine.execute(request)
        assert outcome.results["Collector.output"] == [[11, 12]]

    def test_garbage_payload_raises_execution_error(self, engine):
        request = ExecutionRequest(workflow_code=serialize_object(42))
        with pytest.raises(ExecutionError, match="unsupported type"):
            engine.execute(request)

    def test_corrupt_code_raises(self, engine):
        request = ExecutionRequest(workflow_code="@@@not-base64@@@")
        with pytest.raises(ExecutionError, match="cannot deserialize"):
            engine.execute(request)

    def test_from_json_requires_workflow_code(self):
        with pytest.raises(ValidationError, match="workflowCode"):
            ExecutionRequest.from_json({"input": 3})

    def test_request_json_round_trip(self):
        request = request_for(build_pipeline_graph(), input=5, mapping="multi")
        restored = ExecutionRequest.from_json(request.to_json())
        assert restored.mapping == "multi"
        assert restored.input == 5


class TestAutoInstall:
    def test_declared_imports_installed(self):
        env = SimulatedCondaEnvironment()
        engine = ExecutionEngine(env)
        outcome = engine.execute(
            request_for(build_pipeline_graph(), input=1, imports=["astropy"])
        )
        assert outcome.installed_packages == ["astropy"]
        assert env.is_installed("astropy")

    def test_second_run_already_installed(self):
        engine = ExecutionEngine(SimulatedCondaEnvironment())
        engine.execute(request_for(build_pipeline_graph(), input=1, imports=["astropy"]))
        outcome = engine.execute(
            request_for(build_pipeline_graph(), input=1, imports=["astropy"])
        )
        assert outcome.installed_packages == []


class TestResources:
    def _file_graph(self):
        graph = WorkflowGraph("files")
        graph.connect(FileLineReader(), "output", Collector(), "input")
        return graph

    def test_resources_staged_into_workdir(self, engine, tmp_path):
        resources = tmp_path / "resources"
        resources.mkdir()
        (resources / "coordinates.txt").write_text("one\ntwo\n")
        outcome = engine.execute(
            request_for(
                self._file_graph(),
                input=[{"input": "resources/coordinates.txt"}],
                resources_payload=pack_resources(resources),
            )
        )
        assert outcome.results["Collector.output"] == [["one", "two"]]

    def test_workdir_is_ephemeral(self, engine, tmp_path):
        import glob

        resources = tmp_path / "resources"
        resources.mkdir()
        (resources / "x.txt").write_text("x\n")
        engine.execute(
            request_for(
                self._file_graph(),
                input=[{"input": "resources/x.txt"}],
                resources_payload=pack_resources(resources),
            )
        )
        leftovers = glob.glob("/tmp/laminar-exec-*")
        assert leftovers == []


class TestOutcomeSerialization:
    def test_outcome_json_round_trip(self, engine):
        outcome = engine.execute(request_for(build_pipeline_graph(), input=2))
        restored = type(outcome).from_json(outcome.to_json())
        assert restored.status == "ok"
        assert restored.results == {
            "Collector.output": [[11, 12]]
        }

    def test_summary_mentions_workflow_and_results(self, engine):
        outcome = engine.execute(request_for(build_pipeline_graph(), input=2))
        text = outcome.summary()
        assert "test-workflow" in text
        assert "Collector.output" in text
