"""Tests for vectorized cosine retrieval helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ValidationError
from repro.ml.similarity import cosine_similarity_matrix, cosine_topk, rank_of
from repro.ml.vectorize import l2_normalize


def _unit(rows, dim, seed=0):
    rng = np.random.default_rng(seed)
    return l2_normalize(rng.normal(size=(rows, dim)).astype(np.float32))


class TestSimilarityMatrix:
    def test_shape(self):
        sims = cosine_similarity_matrix(_unit(3, 16), _unit(5, 16))
        assert sims.shape == (3, 5)

    def test_identity_on_same_matrix(self):
        matrix = _unit(4, 16)
        sims = cosine_similarity_matrix(matrix, matrix)
        np.testing.assert_allclose(np.diag(sims), 1.0, atol=1e-5)

    def test_1d_query_promoted(self):
        matrix = _unit(4, 16)
        sims = cosine_similarity_matrix(matrix[0], matrix)
        assert sims.shape == (1, 4)

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValidationError, match="dimension mismatch"):
            cosine_similarity_matrix(_unit(2, 8), _unit(2, 16))

    @given(
        arrays(np.float32, (4, 8), elements=st.floats(-1, 1, width=32)),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounded_for_normalized_inputs(self, raw):
        matrix = l2_normalize(raw)
        sims = cosine_similarity_matrix(matrix, matrix)
        assert np.all(sims <= 1.0 + 1e-4)
        assert np.all(sims >= -1.0 - 1e-4)


class TestTopK:
    def test_orders_by_similarity(self):
        corpus = _unit(20, 16, seed=1)
        query = corpus[7]
        indices, scores = cosine_topk(query, corpus, k=5)
        assert indices[0] == 7
        assert scores[0] == pytest.approx(1.0, abs=1e-5)
        assert all(scores[i] >= scores[i + 1] for i in range(4))

    def test_k_larger_than_corpus(self):
        corpus = _unit(3, 8)
        indices, _ = cosine_topk(corpus[0], corpus, k=10)
        assert len(indices) == 3

    def test_k_zero_rejected(self):
        corpus = _unit(3, 8)
        with pytest.raises(ValidationError):
            cosine_topk(corpus[0], corpus, k=0)

    def test_partial_selection_matches_full_sort(self):
        corpus = _unit(50, 16, seed=2)
        query = _unit(1, 16, seed=3)[0]
        indices, _ = cosine_topk(query, corpus, k=10)
        sims = corpus @ query
        expected = np.argsort(-sims)[:10]
        np.testing.assert_array_equal(indices, expected)


class TestRankOf:
    def test_self_rank_is_one(self):
        corpus = _unit(10, 16, seed=4)
        assert rank_of(corpus[3], corpus, 3) == 1

    def test_pessimistic_tie_breaking(self):
        base = _unit(1, 16, seed=5)[0]
        corpus = np.stack([base, base, _unit(1, 16, seed=6)[0]])
        # identical vectors at 0 and 1: target index 1 ranks AFTER index 0
        assert rank_of(base, corpus, 1) == 2
        assert rank_of(base, corpus, 0) == 1
