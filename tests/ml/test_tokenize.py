"""Tests for code/NL tokenizers, including totality properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tokenize import (
    char_ngrams,
    code_identifiers,
    identifier_subtokens,
    split_subtokens,
    stem,
    token_ngrams,
    tokenize_code,
    tokenize_text,
)


class TestCodeTokenizer:
    def test_basic_statement(self):
        tokens = tokenize_code("result = random.randint(1, 1000)")
        assert "result" in tokens
        assert "randint" in tokens
        assert "<num>" in tokens
        assert "(" in tokens and ")" in tokens

    def test_strings_abstracted_with_words_kept(self):
        tokens = tokenize_code('greeting = "Hello World"')
        assert "<str>" in tokens
        assert "hello" in tokens and "world" in tokens

    def test_operators_tokenized(self):
        tokens = tokenize_code("a == b != c <= d ** e // f")
        for op in ("==", "!=", "<=", "**", "//"):
            assert op in tokens

    def test_partial_code_never_raises(self):
        # completion queries are partial programs
        tokenize_code("def broken(:")
        tokenize_code("for i in range(")
        tokenize_code("")

    @given(st.text(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_total_on_arbitrary_text(self, text):
        tokens = tokenize_code(text)
        assert all(isinstance(t, str) and t for t in tokens)


class TestSubtokens:
    def test_snake_case(self):
        assert split_subtokens("read_ra_dec") == ("read", "ra", "dec")

    def test_camel_case(self):
        assert split_subtokens("getVoTable") == ("get", "vo", "table")

    def test_pascal_case(self):
        assert split_subtokens("NumberProducer") == ("number", "producer")

    def test_allcaps_run(self):
        assert split_subtokens("HTTPServer") == ("http", "server")

    def test_digits_dropped(self):
        assert split_subtokens("var2name3") == ("var", "name")

    def test_empty(self):
        assert split_subtokens("") == ()
        assert split_subtokens("_") == ()

    @given(st.text(alphabet=st.characters(categories=("Ll", "Lu", "Nd")), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_subtokens_lowercase_alpha(self, identifier):
        for sub in split_subtokens(identifier):
            assert sub.islower()
            assert sub.isalpha()


class TestTextTokenizer:
    def test_synonym_bridge(self):
        tokens = tokenize_text("checks whether a number is prime")
        assert "check" in tokens  # 'checks' -> synonym 'check'
        assert "num" in tokens  # 'number' -> 'num'

    def test_no_normalization_mode(self):
        tokens = tokenize_text("checks numbers", synonyms=False, stemming=False)
        assert tokens == ["checks", "numbers"]

    def test_stemming(self):
        assert stem("sorting") == "sort"
        assert stem("sorted") == "sort"
        assert stem("is") == "is"  # too short to strip

    @given(st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_total_on_arbitrary_text(self, text):
        tokens = tokenize_text(text)
        assert all(t for t in tokens)


class TestNgramsAndIdentifiers:
    def test_char_ngrams_window(self):
        assert char_ngrams("abcd", 3) == ["abc", "bcd"]

    def test_char_ngrams_collapse_whitespace(self):
        assert char_ngrams("a  b", 3) == ["a b"]

    def test_char_ngrams_short_input(self):
        assert char_ngrams("ab", 3) == ["ab"]
        assert char_ngrams("", 3) == []

    def test_token_ngrams(self):
        grams = token_ngrams(["a", "b", "c"], 2)
        assert len(grams) == 2
        assert grams[0] != grams[1]

    def test_token_ngrams_too_short(self):
        assert token_ngrams(["a"], 2) == []

    def test_code_identifiers_skip_keywords(self):
        names = code_identifiers("def f(x):\n    return x + len(y)")
        assert "f" in names and "x" in names and "y" in names
        assert "def" not in names and "return" not in names and "len" not in names

    def test_identifier_subtokens_flatten(self):
        subs = identifier_subtokens("def is_prime(num): pass")
        assert "is" in subs and "prime" in subs and "num" in subs
