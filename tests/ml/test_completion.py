"""Tests for retrieval-based code completion (the ReACC role)."""

import pytest

from repro.ml.completion import CodeCompleter, align_continuation

PRODUCER = (
    "class NumberProducer(ProducerPE):\n"
    "    def _process(self):\n"
    "        result = random.randint(1, 1000)\n"
    "        return result\n"
)
PRIME = (
    "class IsPrime(IterativePE):\n"
    "    def _process(self, num):\n"
    "        if all(num % i != 0 for i in range(2, num)):\n"
    "            return num\n"
)


class TestAlignment:
    def test_continuation_after_matched_region(self):
        query = "result = random.randint(1, 1000)"
        continuation = align_continuation(query, PRODUCER)
        assert "return result" in continuation
        assert "class NumberProducer" not in continuation

    def test_no_alignment_returns_whole_candidate(self):
        continuation = align_continuation("zzz qqq www", PRIME)
        assert continuation == PRIME

    def test_empty_query_returns_candidate(self):
        assert align_continuation("", PRIME) == PRIME

    def test_empty_candidate(self):
        assert align_continuation("x = 1", "") == ""

    def test_prefix_query_full_alignment(self):
        lines = PRIME.splitlines()
        partial = "\n".join(lines[:2])
        continuation = align_continuation(partial, PRIME)
        assert continuation.strip().startswith("if all(")


class TestCompleter:
    @pytest.fixture()
    def completer(self):
        return CodeCompleter().index(
            ["NumberProducer", "IsPrime"], [PRODUCER, PRIME]
        )

    def test_figure_8_scenario(self, completer):
        """The paper's query: random.randint(1, 1000) -> NumberProducer."""
        matches = completer.complete("random.randint(1, 1000)", k=2)
        assert matches[0].name == "NumberProducer"
        assert matches[0].score > matches[1].score

    def test_continuation_attached(self, completer):
        [match] = completer.complete("result = random.randint(1, 1000)", k=1)
        assert "return result" in match.continuation

    def test_k_bounds_results(self, completer):
        assert len(completer.complete("num", k=1)) == 1

    def test_empty_index_returns_nothing(self):
        assert CodeCompleter().complete("anything") == []

    def test_index_validates_alignment(self):
        with pytest.raises(ValueError, match="align"):
            CodeCompleter().index(["a"], [])

    def test_size_property(self, completer):
        assert completer.size == 2

    def test_reindex_replaces(self, completer):
        completer.index(["Only"], [PRIME])
        assert completer.size == 1
        assert completer.complete("num", k=5)[0].name == "Only"
