"""Tests for hashing vectorization and IDF weighting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.ml.vectorize import HashingVectorizer, IdfWeighter, l2_normalize

features = st.lists(st.text(min_size=1, max_size=12), max_size=30)


class TestHashingVectorizer:
    def test_deterministic(self):
        v = HashingVectorizer(dim=128, salt="s")
        a = v.transform_one(["x", "y", "x"])
        b = v.transform_one(["x", "y", "x"])
        np.testing.assert_array_equal(a, b)

    def test_counts_accumulate(self):
        v = HashingVectorizer(dim=128, salt="s")
        one = v.transform_one(["tok"])
        two = v.transform_one(["tok", "tok"])
        np.testing.assert_allclose(two, one * 2)

    def test_salt_changes_space(self):
        a = HashingVectorizer(dim=128, salt="a").transform_one(["tok"])
        b = HashingVectorizer(dim=128, salt="b").transform_one(["tok"])
        assert not np.array_equal(a, b)

    def test_batch_transform_shape(self):
        v = HashingVectorizer(dim=64, salt="s")
        matrix = v.transform([["a"], ["b", "c"], []])
        assert matrix.shape == (3, 64)
        assert matrix.dtype == np.float32
        np.testing.assert_array_equal(matrix[2], np.zeros(64))

    def test_weights_mapping_applied(self):
        v = HashingVectorizer(dim=64, salt="s")
        unweighted = v.transform_one(["a"])
        weighted = v.transform_one(["a"], weights={"a": 3.0})
        np.testing.assert_allclose(weighted, unweighted * 3.0)

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValidationError):
            HashingVectorizer(dim=0)

    @given(features)
    @settings(max_examples=60, deadline=None)
    def test_vector_norm_bounded_by_feature_count(self, feats):
        v = HashingVectorizer(dim=256, salt="s")
        vec = v.transform_one(feats)
        assert np.linalg.norm(vec) <= len(feats) + 1e-6


class TestIdfWeighter:
    def test_unfitted_weight_is_one(self):
        assert IdfWeighter().weight("anything") == 1.0

    def test_common_features_downweighted(self):
        idf = IdfWeighter().fit([["common", "rare1"], ["common"], ["common", "x"]])
        assert idf.weight("common") < idf.weight("rare1")

    def test_unseen_gets_max_weight(self):
        idf = IdfWeighter().fit([["a"], ["a", "b"]])
        assert idf.weight("never-seen") >= idf.weight("b") >= idf.weight("a")

    def test_mapping_view(self):
        idf = IdfWeighter().fit([["a", "b"], ["a"]])
        mapping = idf.as_mapping()
        assert mapping.get("a") == pytest.approx(idf.weight("a"))
        assert len(mapping) == 2

    def test_is_fitted_flag(self):
        idf = IdfWeighter()
        assert not idf.is_fitted
        idf.fit([["x"]])
        assert idf.is_fitted


class TestNormalize:
    def test_rows_unit_norm(self):
        matrix = np.array([[3.0, 4.0], [1.0, 0.0]], dtype=np.float32)
        normalized = l2_normalize(matrix)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), [1.0, 1.0])

    def test_zero_rows_stay_zero(self):
        matrix = np.zeros((2, 4), dtype=np.float32)
        normalized = l2_normalize(matrix)
        assert not np.isnan(normalized).any()
        np.testing.assert_array_equal(normalized, matrix)

    def test_1d_vector(self):
        vec = l2_normalize(np.array([3.0, 4.0], dtype=np.float32))
        np.testing.assert_allclose(np.linalg.norm(vec), 1.0)

    def test_1d_zero_vector(self):
        vec = l2_normalize(np.zeros(4, dtype=np.float32))
        assert not np.isnan(vec).any()
