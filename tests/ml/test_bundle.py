"""Tests for the model bundle wiring."""

from repro.ml.bundle import ModelBundle
from repro.ml.models import ReACCRetriever, UnixCoderCodeSearch
from repro.ml.summarize import CodeT5Summarizer


class TestBundle:
    def test_default_components(self):
        bundle = ModelBundle.default(fit=False)
        assert isinstance(bundle.code_search, UnixCoderCodeSearch)
        assert isinstance(bundle.completion, ReACCRetriever)
        assert isinstance(bundle.summarizer, CodeT5Summarizer)

    def test_unfitted_when_requested(self):
        bundle = ModelBundle.default(fit=False)
        assert not bundle.code_search.is_fitted
        assert not bundle.completion.is_fitted

    def test_fitted_on_code_bank(self):
        bundle = ModelBundle.default(fit=True)
        assert bundle.code_search.is_fitted
        assert bundle.completion.is_fitted

    def test_fitting_improves_over_unfitted_on_codebank_query(self):
        """IDF fitting (the fine-tuning substitute) must actually help."""
        from repro.datasets import build_csn
        from repro.evalharness.metrics import evaluate_retrieval

        dataset = build_csn()
        unfitted = ModelBundle.default(fit=False).code_search
        fitted = ModelBundle.default(fit=True).code_search
        assert (
            evaluate_retrieval(fitted, dataset).mrr
            >= evaluate_retrieval(unfitted, dataset).mrr
        )
