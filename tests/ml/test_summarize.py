"""Tests for the CodeT5-substitute summarizer."""

from repro.ml.summarize import CodeT5Summarizer, summarize_code


class TestDocstringPriority:
    def test_docstring_wins(self):
        source = 'def f(x):\n    """Compute the froop of x."""\n    return x\n'
        summary = summarize_code(source)
        assert summary.text == "Compute the froop of x."
        assert summary.source == "docstring"

    def test_process_method_docstring_used_for_pe(self):
        source = (
            "class MyPE(IterativePE):\n"
            "    def _process(self, data):\n"
            '        """Stream the squares of incoming values."""\n'
            "        return data * data\n"
        )
        assert summarize_code(source).text == "Stream the squares of incoming values."

    def test_multiline_docstring_first_line_only(self):
        source = 'def f():\n    """First line.\n\n    More detail.\n    """\n'
        assert summarize_code(source).text == "First line."


class TestCommentFallback:
    def test_leading_comment_used(self):
        source = (
            "class NumberProducer(ProducerPE):\n"
            "    def _process(self):\n"
            "        # Generate a random number\n"
            "        return random.randint(1, 1000)\n"
        )
        summary = summarize_code(source)
        assert summary.text == "Generate a random number."
        assert summary.source == "comment"


class TestTemplateFallback:
    def test_is_prefix_name(self):
        source = (
            "class IsPrime(IterativePE):\n"
            "    def _process(self, num):\n"
            "        if all(num % i != 0 for i in range(2, num)):\n"
            "            return num\n"
        )
        text = summarize_code(source).text
        assert "checks whether the input is prime" in text

    def test_verb_name_phrasing(self):
        source = (
            "class FilterColumns(IterativePE):\n"
            "    def _process(self, row):\n"
            "        return row\n"
        )
        text = summarize_code(source).text.lower()
        assert "filters columns" in text

    def test_producer_suffix_phrasing(self):
        source = (
            "class NumberProducer(ProducerPE):\n"
            "    def _process(self):\n"
            "        return 4\n"
        )
        text = summarize_code(source).text.lower()
        assert "produces number data" in text

    def test_idiom_mining(self):
        source = (
            "class R(ProducerPE):\n"
            "    def _process(self):\n"
            "        return random.randint(1, 10)\n"
        )
        text = summarize_code(source).text.lower()
        assert "random" in text

    def test_name_parameter_used_for_fragments(self):
        text = summarize_code("x % 2 == 0", name="IsEven").text
        assert "even" in text.lower()

    def test_unparsable_code_still_summarized(self):
        text = summarize_code(")(", name="Mystery").text
        assert text.endswith(".")
        assert len(text) > 5

    def test_no_name_no_parse_generic(self):
        text = summarize_code(")(").text
        assert "streaming data" in text


class TestWrapper:
    def test_codet5_summarizer_interface(self):
        summarizer = CodeT5Summarizer()
        assert summarizer.name == "codet5-base-multi-sum"
        text = summarizer.summarize("def add(a, b):\n    return a + b\n")
        assert isinstance(text, str) and text
