"""Tests for AST feature extraction (structure, dataflow, docstrings)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.ast_features import (
    ast_sequence,
    dataflow_pairs,
    docstring_of,
    function_names,
    parse_lenient,
    structural_features,
)

SAMPLE = '''
def is_prime(num):
    """Check whether num is prime."""
    if num < 2:
        return False
    for divisor in range(2, num):
        if num % divisor == 0:
            return False
    return True
'''


class TestParseLenient:
    def test_full_module(self):
        assert parse_lenient(SAMPLE) is not None

    def test_indented_fragment(self):
        assert parse_lenient("    x = 1\n    y = x + 1") is not None

    def test_bare_return_fragment(self):
        assert parse_lenient("return x * 2") is not None

    def test_truncated_code_prefix(self):
        truncated = SAMPLE.strip().rsplit("\n", 2)[0] + "\n    if num %"
        assert parse_lenient(truncated) is not None

    def test_hopeless_input_returns_none(self):
        assert parse_lenient(")(*&^%$") is None

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_never_raises(self, text):
        parse_lenient(text)


class TestAstSequence:
    def test_preorder_sequence(self):
        sequence = ast_sequence(SAMPLE)
        assert sequence[0] == "Module"
        assert "FunctionDef" in sequence
        assert "For" in sequence and "If" in sequence

    def test_ctx_nodes_filtered(self):
        assert "Load" not in ast_sequence("x = y")

    def test_unparsable_gives_empty(self):
        assert ast_sequence(")(") == []


class TestStructuralFeatures:
    def test_families_present(self):
        features = structural_features(SAMPLE)
        prefixes = {f.split(":", 1)[0] for f in features}
        assert {"ast2", "call", "op", "shape"} <= prefixes

    def test_call_targets_extracted(self):
        assert "call:range" in structural_features(SAMPLE)

    def test_operator_kinds(self):
        features = structural_features(SAMPLE)
        assert "op:Mod" in features
        assert "op:Lt" in features

    def test_rename_invariance(self):
        renamed = SAMPLE.replace("num", "zzz").replace("divisor", "qqq")
        assert structural_features(SAMPLE) == structural_features(renamed)

    def test_shape_summary(self):
        features = structural_features(SAMPLE)
        assert "shape:loops=1" in features
        assert any(f.startswith("shape:depth=") for f in features)


class TestDataflow:
    def test_def_use_pairs_slot_normalized(self):
        a = dataflow_pairs("def f(a):\n    b = a + 1\n    return b\n")
        b = dataflow_pairs("def f(x):\n    y = x + 1\n    return y\n")
        assert a == b
        assert a  # non-empty

    def test_augmented_assignment(self):
        features = dataflow_pairs("total = 0\nfor x in xs:\n    total += x\n")
        assert any("aug" in f for f in features)

    def test_loop_target_marked_iter(self):
        features = dataflow_pairs("for item in seq:\n    print(item)\n")
        assert any(f.endswith("<-iter") for f in features)

    def test_unparsable_gives_empty(self):
        assert dataflow_pairs("((((") == []


class TestDocAndNames:
    def test_docstring_of_function(self):
        assert docstring_of(SAMPLE) == "Check whether num is prime."

    def test_docstring_missing(self):
        assert docstring_of("def f():\n    return 1\n") == ""

    def test_function_names(self):
        assert function_names(SAMPLE) == ["is_prime"]

    def test_class_names_included(self):
        names = function_names("class Foo:\n    def bar(self):\n        pass\n")
        assert "Foo" in names and "bar" in names
