"""Tests for the embedding-model zoo and the bi-encoder contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.ml.embedding import BiEncoder, CrossEncoder, looks_like_code
from repro.ml.models import MODEL_REGISTRY, get_model

CODE_A = "def is_prime(num):\n    return all(num % i for i in range(2, num))\n"
CODE_B = "def sort_items(xs):\n    return sorted(xs)\n"


class TestRegistry:
    def test_all_models_instantiable(self):
        for name in MODEL_REGISTRY:
            model = get_model(name)
            assert model.name == name

    def test_paper_aliases(self):
        assert get_model("BAAI/bge-large-en").name == "bge-large-en"
        assert get_model("thenlper/gte-large").name == "gte-large"
        assert get_model("ReACC-retriever-py").name == "reacc-py-retriever"

    def test_unknown_model_rejected(self):
        with pytest.raises(ValidationError, match="unknown model"):
            get_model("gpt-17")


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
class TestEmbeddingContract:
    """Every zoo model must satisfy the bi-encoder interface."""

    def test_shape_and_dtype(self, name):
        model = get_model(name, dim=512)
        matrix = model.embed([CODE_A, CODE_B], kind="code")
        assert matrix.shape == (2, 512)
        assert matrix.dtype == np.float32

    def test_rows_l2_normalized(self, name):
        model = get_model(name)
        matrix = model.embed([CODE_A, CODE_B, "check primes"], kind="auto")
        norms = np.linalg.norm(matrix, axis=1)
        for norm in norms:
            assert norm == pytest.approx(1.0, abs=1e-5) or norm == 0.0

    def test_deterministic(self, name):
        model = get_model(name)
        a = model.embed_one(CODE_A, kind="code")
        b = model.embed_one(CODE_A, kind="code")
        np.testing.assert_array_equal(a, b)

    def test_self_similarity_is_maximal(self, name):
        model = get_model(name)
        matrix = model.embed([CODE_A, CODE_B], kind="code")
        sims = matrix @ matrix.T
        assert sims[0, 0] == pytest.approx(1.0, abs=1e-5)
        assert sims[0, 1] <= sims[0, 0] + 1e-6

    def test_empty_text_embeds_to_zero_or_unit(self, name):
        vec = get_model(name).embed_one("", kind="text")
        norm = float(np.linalg.norm(vec))
        assert norm == pytest.approx(0.0, abs=1e-6) or norm == pytest.approx(1.0, abs=1e-5)

    def test_fit_returns_self(self, name):
        model = get_model(name)
        assert model.fit([CODE_A, CODE_B], kind="code") is model
        assert model.is_fitted


class TestKindDetection:
    def test_code_detected(self):
        assert looks_like_code(CODE_A)
        assert looks_like_code("x = random.randint(1, 1000)")

    def test_text_detected(self):
        assert not looks_like_code("a PE that checks if a number is prime")
        assert not looks_like_code("find the maximum value")


class TestModelBehaviours:
    """The mechanism-level properties DESIGN.md §5 promises."""

    def test_code_search_bridges_nl_to_identifiers(self):
        model = get_model("unixcoder-code-search")
        query = model.embed_one("checks whether a number is prime", kind="text")
        corpus = model.embed([CODE_A, CODE_B], kind="code")
        sims = corpus @ query
        assert sims[0] > sims[1]

    def test_base_model_misses_subtoken_alignment(self):
        base = get_model("unixcoder-base")
        tuned = get_model("unixcoder-code-search")
        query = "checks whether a number is prime"
        def margin(model):
            qvec = model.embed_one(query, kind="text")
            corpus = model.embed([CODE_A, CODE_B], kind="code")
            sims = corpus @ qvec
            return sims[0] - sims[1]
        assert margin(tuned) > margin(base)

    def test_clone_detection_rename_robust(self):
        model = get_model("unixcoder-clone-detection")
        renamed = CODE_A.replace("num", "value").replace("is_prime", "check_p")
        matrix = model.embed([CODE_A, renamed, CODE_B], kind="code")
        sims = matrix @ matrix.T
        assert sims[0, 1] > sims[0, 2]

    def test_reacc_prefix_robust(self):
        model = get_model("reacc-py-retriever")
        partial = CODE_A.splitlines()[0] + "\n"
        query = model.embed_one(partial, kind="code")
        corpus = model.embed([CODE_A, CODE_B], kind="code")
        sims = corpus @ query
        assert sims[0] > sims[1]

    def test_gte_destroyed_by_renaming_more_than_clone_model(self):
        gte = get_model("gte-large")
        clone_model = get_model("unixcoder-clone-detection")
        renamed = CODE_A.replace("num", "zq").replace("is_prime", "fn")
        def self_sim(model):
            matrix = model.embed([CODE_A, renamed], kind="code")
            return float(matrix[0] @ matrix[1])
        assert self_sim(clone_model) > self_sim(gte)

    def test_codebert_similarities_compressed(self):
        """Anisotropy: all pairwise similarities bunched together."""
        model = get_model("codebert")
        corpus = model.embed([CODE_A, CODE_B, CODE_A + CODE_B], kind="code")
        sims = corpus @ corpus.T
        off_diagonal = sims[np.triu_indices(3, k=1)]
        assert off_diagonal.min() > 0.3  # everything looks similar


class TestBiEncoder:
    def test_index_and_search(self):
        model = get_model("unixcoder-code-search")
        encoder = BiEncoder(model).index([CODE_A, CODE_B])
        results = encoder.search("test whether an integer is prime", k=2)
        assert results[0][0] == 0

    def test_search_before_index_rejected(self):
        encoder = BiEncoder(get_model("unixcoder-base"))
        with pytest.raises(RuntimeError, match="index"):
            encoder.search("x")


class TestCrossEncoder:
    def test_scores_relevant_pair_higher(self):
        model = get_model("unixcoder-code-search")
        cross = CrossEncoder(model)
        relevant = cross.score_pair("check if a number is prime", CODE_A)
        irrelevant = cross.score_pair("check if a number is prime", CODE_B)
        assert relevant > irrelevant

    def test_rank_orders_candidates(self):
        cross = CrossEncoder(get_model("unixcoder-code-search"))
        ranked = cross.rank("sort a list", [CODE_A, CODE_B])
        assert ranked[0][0] == 1

    def test_scores_bounded(self):
        cross = CrossEncoder(get_model("unixcoder-code-search"))
        score = cross.score_pair("primes", CODE_A)
        assert 0.0 <= score <= 1.0 + 1e-9


@given(st.text(max_size=150))
@settings(max_examples=30, deadline=None)
def test_every_model_total_on_arbitrary_input(text):
    """No input may crash an embedder (queries are user-controlled)."""
    for name in MODEL_REGISTRY:
        vec = get_model(name).embed_one(text, kind="auto")
        assert not np.isnan(vec).any()
