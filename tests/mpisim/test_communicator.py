"""Tests for the simulated MPI communicator and launcher."""

import pytest

from repro.errors import MappingError
from repro.mpisim import ANY_SOURCE, ANY_TAG, Communicator, MPIRunError, mpi_run


# ----------------------------------------------------------------------
# module-level rank functions (spawn-safe, cloudpickled by the launcher)
# ----------------------------------------------------------------------

def _ring(comm):
    """Pass a token around the ring; every rank returns what it saw."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(comm.rank, dest=right, tag=1)
    return comm.recv(source=left, tag=1)


def _collectives(comm):
    data = comm.bcast({"seed": 7} if comm.rank == 0 else None, root=0)
    share = comm.scatter(
        [i * i for i in range(comm.size)] if comm.rank == 0 else None, root=0
    )
    gathered = comm.gather(share + data["seed"], root=0)
    total = comm.allreduce(comm.rank, op=lambda a, b: a + b)
    everyone = comm.allgather(comm.rank)
    comm.barrier()
    return {
        "bcast": data,
        "scatter": share,
        "gather": gathered,
        "allreduce": total,
        "allgather": everyone,
    }


def _wildcard_recv(comm):
    if comm.rank == 0:
        seen = sorted(comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(comm.size - 1))
        return seen
    comm.send(comm.rank * 10, dest=0, tag=comm.rank)
    return None


def _selective_recv(comm):
    """Rank 0 receives from rank 2 FIRST even if rank 1 sent earlier."""
    if comm.rank == 0:
        from_two = comm.recv(source=2, tag=0)
        from_one = comm.recv(source=1, tag=0)
        return (from_two, from_one)
    comm.send(f"hello from {comm.rank}", dest=0, tag=0)
    return None


def _crash(comm):
    if comm.rank == 1:
        raise ValueError("rank 1 exploded")
    return comm.rank


def _nonblocking(comm):
    if comm.rank == 0:
        request = comm.isend({"a": 7}, dest=1, tag=11)
        request.wait()
        return "sent"
    if comm.rank == 1:
        request = comm.irecv(source=0, tag=11)
        return request.wait()
    return None


class TestPointToPoint:
    def test_ring_exchange(self):
        results = mpi_run(4, _ring, timeout=60)
        assert results == [3, 0, 1, 2]

    def test_wildcard_receive(self):
        results = mpi_run(3, _wildcard_recv, timeout=60)
        assert results[0] == [10, 20]

    def test_selective_receive_buffers_nonmatching(self):
        results = mpi_run(3, _selective_recv, timeout=60)
        assert results[0] == ("hello from 2", "hello from 1")

    def test_nonblocking_send_recv(self):
        results = mpi_run(2, _nonblocking, timeout=60)
        assert results == ["sent", {"a": 7}]


class TestCollectives:
    def test_all_collectives_agree(self):
        results = mpi_run(4, _collectives, timeout=60)
        for rank, result in enumerate(results):
            assert result["bcast"] == {"seed": 7}
            assert result["scatter"] == rank * rank
            assert result["allreduce"] == 6  # 0+1+2+3
            assert result["allgather"] == [0, 1, 2, 3]
        assert results[0]["gather"] == [7, 8, 11, 16]
        assert results[1]["gather"] is None


class TestErrors:
    def test_rank_failure_raises(self):
        with pytest.raises(MPIRunError) as excinfo:
            mpi_run(3, _crash, timeout=60)
        assert "rank 1 exploded" in (excinfo.value.details or "")

    def test_zero_ranks_rejected(self):
        with pytest.raises(MappingError, match=">= 1"):
            mpi_run(0, _ring)

    def test_single_rank_ring(self):
        # self-send must work (rank sends to itself)
        assert mpi_run(1, _ring, timeout=60) == [0]


class TestLocalCommunicator:
    """Direct (single-process) communicator checks."""

    def _make(self):
        import queue

        inboxes = {0: queue.Queue()}
        return Communicator(0, 1, inboxes)

    def test_rank_size_accessors(self):
        comm = self._make()
        assert comm.Get_rank() == 0
        assert comm.Get_size() == 1
        assert comm.rank == 0 and comm.size == 1

    def test_send_to_invalid_rank_rejected(self):
        comm = self._make()
        with pytest.raises(MappingError, match="invalid rank"):
            comm.send("x", dest=5)

    def test_negative_user_tag_rejected(self):
        comm = self._make()
        with pytest.raises(MappingError, match="reserved"):
            comm.send("x", dest=0, tag=-1)

    def test_recv_timeout(self):
        comm = self._make()
        with pytest.raises(MappingError, match="timed out"):
            comm.recv(timeout=0.05)

    def test_probe_and_self_send(self):
        comm = self._make()
        assert not comm.probe()
        comm.send("ping", dest=0, tag=4)
        assert comm.probe(source=0, tag=4)
        assert comm.recv(source=0, tag=4) == "ping"

    def test_invalid_rank_construction(self):
        import queue

        with pytest.raises(MappingError, match="out of range"):
            Communicator(5, 2, {0: queue.Queue(), 1: queue.Queue()})
