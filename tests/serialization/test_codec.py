"""Tests for the cloudpickle+base64 codec and source extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.serialization.codec import (
    deserialize_object,
    extract_source,
    serialize_object,
    serialize_with,
    source_or_empty,
)
from tests.helpers import AddTen, OneToTenProducer, build_pipeline_graph

json_like = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=20,
)


class TestRoundTrip:
    @given(json_like)
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_data_round_trips(self, value):
        assert deserialize_object(serialize_object(value)) == value

    def test_payload_is_ascii_base64(self):
        payload = serialize_object({"key": "value"})
        assert isinstance(payload, str)
        payload.encode("ascii")  # must not raise

    def test_pe_class_round_trips(self):
        cls = deserialize_object(serialize_object(AddTen))
        pe = cls()
        assert pe.process({"input": 5})[0].value == 15

    def test_pe_instance_with_state_round_trips(self):
        producer = OneToTenProducer()
        producer.process({})
        clone = deserialize_object(serialize_object(producer))
        assert clone.counter == producer.counter

    def test_workflow_graph_round_trips(self):
        graph = build_pipeline_graph()
        restored = deserialize_object(serialize_object(graph))
        assert len(restored) == len(graph)
        assert [type(pe).__name__ for pe in restored] == [
            type(pe).__name__ for pe in graph
        ]

    def test_interactively_defined_class_round_trips(self):
        # the reason the paper chose cloudpickle over stdlib pickle
        namespace = {}
        exec(
            "from repro.dataflow.core import IterativePE\n"
            "class Dyn(IterativePE):\n"
            "    def _process(self, x):\n"
            "        return x * 3\n",
            namespace,
        )
        cls = deserialize_object(serialize_object(namespace["Dyn"]))
        assert cls().process({"input": 2})[0].value == 6


class TestErrors:
    def test_bad_base64_rejected(self):
        with pytest.raises(SerializationError, match="base64"):
            deserialize_object("not base64 at all!!!")

    def test_valid_base64_bad_pickle_rejected(self):
        import base64

        payload = base64.b64encode(b"garbage bytes").decode()
        with pytest.raises(SerializationError, match="pickle"):
            deserialize_object(payload)

    def test_unpicklable_object_rejected(self):
        import threading

        with pytest.raises(SerializationError, match="cannot cloudpickle"):
            serialize_object(threading.Lock())


class TestCodecSelection:
    def test_cloudpickle_codec(self):
        assert deserialize_object(serialize_with([1, 2], "cloudpickle")) == [1, 2]

    def test_pickle_codec(self):
        assert deserialize_object(serialize_with([1, 2], "pickle")) == [1, 2]

    def test_source_codec_returns_text(self):
        text = serialize_with(AddTen, "source")
        assert "class AddTen" in text

    def test_unknown_codec_rejected(self):
        with pytest.raises(SerializationError, match="unknown codec"):
            serialize_with(1, "dill")

    def test_pickle_fails_on_dynamic_class(self):
        namespace = {}
        exec(
            "from repro.dataflow.core import IterativePE\n"
            "class Dyn2(IterativePE):\n"
            "    def _process(self, x):\n"
            "        return x\n",
            namespace,
        )
        with pytest.raises(SerializationError):
            serialize_with(namespace["Dyn2"], "pickle")


class TestSourceExtraction:
    def test_extract_from_class(self):
        source = extract_source(AddTen)
        assert "def _process" in source
        assert "num + 10" in source

    def test_extract_from_instance_falls_back_to_class(self):
        assert "class AddTen" in extract_source(AddTen())

    def test_dunder_source_attribute_wins(self):
        class Carrier:
            __source__ = "def fake(): pass\n"

        assert extract_source(Carrier) == "def fake(): pass\n"

    def test_missing_source_raises(self):
        namespace = {}
        exec("class NoSource:\n    pass\n", namespace)
        with pytest.raises(SerializationError, match="cannot locate source"):
            extract_source(namespace["NoSource"])

    def test_source_or_empty_swallows(self):
        namespace = {}
        exec("class NoSource2:\n    pass\n", namespace)
        assert source_or_empty(namespace["NoSource2"]) == ""
