"""Tests for the AST import analyzer (findimports substitute)."""

import pytest

from repro.errors import SerializationError
from repro.serialization.imports import (
    analyze_imports,
    external_requirements,
    merge_requirements,
)


class TestAnalyze:
    def test_plain_import(self):
        [info] = analyze_imports("import numpy\n")
        assert info.module == "numpy"
        assert info.root == "numpy"
        assert not info.is_stdlib

    def test_from_import_with_names(self):
        [info] = analyze_imports("from astropy.io import fits, votable\n")
        assert info.module == "astropy.io"
        assert info.root == "astropy"
        assert info.names == ("fits", "votable")

    def test_aliased_import(self):
        [info] = analyze_imports("import numpy as np\n")
        assert info.names == ("np",)

    def test_stdlib_detection(self):
        infos = analyze_imports("import os\nimport json\nimport requests\n")
        stdlib_flags = {i.module: i.is_stdlib for i in infos}
        assert stdlib_flags == {"os": True, "json": True, "requests": False}

    def test_imports_inside_methods_found(self):
        # the dispel4py idiom of Listing 2
        source = (
            "class CountWords:\n"
            "    def __init__(self):\n"
            "        from collections import defaultdict\n"
            "        self.count = defaultdict(int)\n"
            "    def _process(self, inputs):\n"
            "        import os\n"
            "        return os.getpid()\n"
        )
        modules = {i.module for i in analyze_imports(source)}
        assert modules == {"collections", "os"}

    def test_duplicates_collapsed(self):
        source = "import os\nimport os\nfrom os import path\n"
        modules = [i.module for i in analyze_imports(source)]
        assert modules == ["os"]

    def test_relative_import_ignored(self):
        assert analyze_imports("from . import sibling\n") == []

    def test_syntax_error_raises(self):
        with pytest.raises(SerializationError, match="does not parse"):
            analyze_imports("def broken(:\n")

    def test_empty_source(self):
        assert analyze_imports("") == []


class TestRequirements:
    def test_only_external_roots(self):
        source = "import os\nimport numpy\nfrom astropy.io import fits\n"
        assert external_requirements(source) == ["astropy", "numpy"]

    def test_merge_across_sources(self):
        merged = merge_requirements(
            ["import numpy\n", "import scipy\nimport numpy\n", "", None]
        )
        assert merged == ["numpy", "scipy"]

    def test_future_import_is_stdlib(self):
        assert external_requirements("from __future__ import annotations\n") == []
