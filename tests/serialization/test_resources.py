"""Tests for resource-directory packing (the Listing 7 mechanism)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.serialization.resources import pack_resources, unpack_resources

file_names = st.text(
    alphabet=st.sampled_from("abcdefgh1234"), min_size=1, max_size=8
).map(lambda s: s + ".txt")

file_contents = st.text(max_size=200)


class TestRoundTrip:
    def test_single_file(self, tmp_path):
        src = tmp_path / "resources"
        src.mkdir()
        (src / "coordinates.txt").write_text("10.5\t-3.2\n")
        payload = pack_resources(src)
        dest = tmp_path / "unpacked"
        written = unpack_resources(payload, dest)
        assert written == ["coordinates.txt"]
        assert (dest / "coordinates.txt").read_text() == "10.5\t-3.2\n"

    def test_nested_directories(self, tmp_path):
        src = tmp_path / "resources"
        (src / "deep" / "deeper").mkdir(parents=True)
        (src / "top.txt").write_text("top")
        (src / "deep" / "deeper" / "leaf.txt").write_text("leaf")
        written = unpack_resources(pack_resources(src), tmp_path / "out")
        assert written == ["deep/deeper/leaf.txt", "top.txt"]
        assert (tmp_path / "out" / "deep" / "deeper" / "leaf.txt").read_text() == "leaf"

    @given(
        files=st.dictionaries(file_names, file_contents, min_size=1, max_size=6)
    )
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_files_round_trip(self, tmp_path_factory, files):
        src = tmp_path_factory.mktemp("src")
        for name, content in files.items():
            # byte-level IO: newline translation must not mask pack bugs
            (src / name).write_bytes(content.encode("utf-8"))
        dest = tmp_path_factory.mktemp("dest")
        unpack_resources(pack_resources(src), dest)
        for name, content in files.items():
            assert (dest / name).read_bytes() == content.encode("utf-8")

    def test_binary_content(self, tmp_path):
        src = tmp_path / "resources"
        src.mkdir()
        (src / "blob.bin").write_bytes(bytes(range(256)))
        dest = tmp_path / "out"
        unpack_resources(pack_resources(src), dest)
        assert (dest / "blob.bin").read_bytes() == bytes(range(256))


class TestSafety:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="does not exist"):
            pack_resources(tmp_path / "nope")

    def test_symlink_rejected(self, tmp_path):
        src = tmp_path / "resources"
        src.mkdir()
        (src / "real.txt").write_text("x")
        (src / "link.txt").symlink_to(src / "real.txt")
        with pytest.raises(SerializationError, match="symlink"):
            pack_resources(src)

    def test_bad_base64_rejected(self, tmp_path):
        with pytest.raises(SerializationError, match="base64"):
            unpack_resources("!!!", tmp_path / "out")

    def test_bad_tar_rejected(self, tmp_path):
        import base64

        payload = base64.b64encode(b"not a tar").decode()
        with pytest.raises(SerializationError, match="tar"):
            unpack_resources(payload, tmp_path / "out")

    def test_empty_directory_packs(self, tmp_path):
        src = tmp_path / "resources"
        src.mkdir()
        assert unpack_resources(pack_resources(src), tmp_path / "out") == []
