"""Tests for the shared error hierarchy and JSON envelopes (§3.2.5)."""

import pytest

from repro.errors import (
    AuthenticationError,
    DuplicateError,
    ExecutionError,
    GraphError,
    MappingError,
    NotFoundError,
    ReproError,
    SerializationError,
    TransportError,
    ValidationError,
    error_from_json,
)

ALL_ERRORS = [
    ReproError,
    ValidationError,
    GraphError,
    MappingError,
    SerializationError,
    NotFoundError,
    DuplicateError,
    AuthenticationError,
    ExecutionError,
    TransportError,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_everything_is_a_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_graph_error_is_validation_error(self):
        assert issubclass(GraphError, ValidationError)

    def test_http_codes(self):
        assert ValidationError.code == 400
        assert AuthenticationError.code == 401
        assert NotFoundError.code == 404
        assert DuplicateError.code == 409
        assert ReproError.code == 500


class TestEnvelope:
    def test_minimal_envelope(self):
        body = ValidationError("bad input").to_json()
        assert body == {
            "error": "ValidationError",
            "code": 400,
            "message": "bad input",
        }

    def test_params_and_details_included(self):
        err = NotFoundError(
            "PE not found", params={"peId": 7}, details="check the id"
        )
        body = err.to_json()
        assert body["params"] == {"peId": "7"}
        assert body["details"] == "check the id"

    def test_envelope_is_json_serializable(self):
        import json

        err = MappingError("boom", params={"obj": object()})
        json.dumps(err.to_json())  # params repr()'d -> always serializable


class TestRehydration:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_round_trip_preserves_class(self, cls):
        original = cls("something failed", details="why")
        restored = error_from_json(original.to_json())
        assert type(restored) is cls
        assert restored.message == "something failed"
        assert restored.details == "why"

    def test_unknown_kind_degrades_to_base(self):
        restored = error_from_json({"error": "AlienError", "message": "x"})
        assert type(restored) is ReproError

    def test_empty_body_safe(self):
        restored = error_from_json({})
        assert isinstance(restored, ReproError)
