"""Tests for workflow-level semantic search (the §8 extension)."""

import pytest

from repro.ml.models import UnixCoderCodeSearch
from repro.registry.entities import WorkflowRecord
from repro.search import SemanticSearcher
from repro.workflows.isprime import build_isprime_graph
from tests.helpers import build_pipeline_graph


@pytest.fixture(scope="module")
def searcher():
    return SemanticSearcher(UnixCoderCodeSearch())


def wf(wid, entry, description, searcher=None):
    record = WorkflowRecord(
        workflow_id=wid,
        workflow_name=entry,
        entry_point=entry,
        description=description,
        workflow_code="eA==",
    )
    if searcher is not None:
        record.desc_embedding = searcher.embed_description(description)
    return record


class TestSearcher:
    def test_ranks_by_description_similarity(self, searcher):
        workflows = [
            wf(1, "isPrime", "prints random prime numbers", searcher),
            wf(2, "astro", "computes the internal extinction of galaxies", searcher),
        ]
        hits = searcher.search_workflows(
            "a workflow about galaxy dust extinction", workflows
        )
        assert hits[0].workflow_id == 2

    def test_missing_embedding_recomputed(self, searcher):
        workflows = [
            wf(1, "isPrime", "prints random prime numbers"),
            wf(2, "astro", "computes the internal extinction of galaxies"),
        ]
        hits = searcher.search_workflows("prime numbers", workflows)
        assert hits[0].workflow_id == 1

    def test_empty_list(self, searcher):
        assert searcher.search_workflows("anything", []) == []

    def test_json_shape(self, searcher):
        [hit] = searcher.search_workflows(
            "primes", [wf(1, "isPrime", "prints primes", searcher)]
        )
        body = hit.to_json()
        assert {"workflowId", "entryPoint", "description", "score"} <= set(body)


class TestThroughTheStack:
    def test_semantic_workflow_search(self, stack_client):
        client = stack_client
        client.register_Workflow(
            build_isprime_graph(), "isPrime",
            "Workflow that prints random prime numbers",
        )
        client.register_Workflow(
            build_pipeline_graph(), "pipeline",
            "Adds ten to a stream of numbers and collects the results",
        )
        hits = client.search_Registry(
            "a workflow that finds prime numbers", "workflow", "semantic"
        )
        assert hits[0]["entryPoint"] == "isPrime"

    def test_semantic_both_mixes_pes_and_workflows(self, stack_client):
        client = stack_client
        client.register_Workflow(
            build_isprime_graph(), "isPrime",
            "Workflow that prints random prime numbers",
        )
        hits = client.search_Registry(
            "prime numbers", "both", "semantic", k=10
        )
        kinds = {("workflow" if "workflowId" in h else "pe") for h in hits}
        assert kinds == {"pe", "workflow"}
        # scores sorted descending across both kinds
        scores = [h["score"] for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_text_query_type_keeps_paper_behaviour(self, stack_client):
        """query_type='text' on workflows stays Figure-6 text matching."""
        client = stack_client
        client.register_Workflow(
            build_isprime_graph(), "isPrime",
            "Workflow that prints random prime numbers",
        )
        hits = client.search_Registry("prime", "workflow", "text")
        assert hits[0]["name"] == "isPrime"
        assert "matchedOn" in hits[0]
