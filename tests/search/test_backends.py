"""IndexBackend protocol, backend registry and the IVF-flat engine."""

import threading

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.search import (
    KIND_DESC,
    HNSWBackend,
    IVFFlatBackend,
    IndexBackend,
    SearchBatcher,
    VectorIndex,
    backend_names,
    build_backends,
    create_backend,
)


def clustered_rows(rng, n, dim=32, centers=8, noise=0.15):
    """Unit rows drawn around a few cluster centers (IVF's home turf)."""
    anchors = rng.standard_normal((centers, dim)).astype(np.float32)
    rows = np.empty((n, dim), dtype=np.float32)
    for i in range(n):
        vec = anchors[i % centers] + noise * rng.standard_normal(dim).astype(
            np.float32
        )
        rows[i] = vec / np.linalg.norm(vec)
    return rows


@pytest.fixture()
def populated():
    """An exact index with one 400-row clustered shard."""
    rng = np.random.default_rng(11)
    rows = clustered_rows(rng, 400)
    ids = list(range(1, 401))
    base = VectorIndex()
    base.add_many("u", KIND_DESC, ids, rows)
    return base, ids, rows, rng


class TestRegistry:
    def test_exact_ivf_and_hnsw_registered(self):
        names = backend_names()
        assert names[0] == "exact"
        assert "ivf" in names
        assert "hnsw" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="unknown index backend"):
            create_backend("annoy-when")

    def test_create_by_name(self):
        exact = create_backend("exact")
        assert isinstance(exact, VectorIndex)
        ivf = create_backend("ivf", exact, nprobe=2)
        assert isinstance(ivf, IVFFlatBackend)
        assert ivf.base is exact
        hnsw = create_backend("hnsw", exact, m=4)
        assert isinstance(hnsw, HNSWBackend)
        assert hnsw.base is exact and hnsw.m == 4

    def test_build_backends_share_one_exact_index(self):
        backends = build_backends()
        assert set(backends) == set(backend_names())
        assert backends["ivf"].base is backends["exact"]
        assert backends["hnsw"].base is backends["exact"]
        # a mutation through the exact index is visible to the wrapper
        backends["exact"].add("u", KIND_DESC, 1, np.ones(4, np.float32))
        assert backends["ivf"].size("u", KIND_DESC) == 1
        assert backends["hnsw"].size("u", KIND_DESC) == 1

    def test_all_satisfy_the_protocol(self):
        assert isinstance(VectorIndex(), IndexBackend)
        assert isinstance(IVFFlatBackend(), IndexBackend)
        assert isinstance(HNSWBackend(), IndexBackend)

    def test_state_store_routing_attribute(self):
        # the service persists graph state next to (not inside) the IVF
        # store — keyed off this attribute
        assert HNSWBackend().state_store == "hnsw"
        assert getattr(IVFFlatBackend(), "state_store", "ivf") == "ivf"


class TestIVFParity:
    def test_full_probe_bitwise_identical_to_exact(self, populated):
        base, ids, _rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=16)
        for _ in range(5):
            q = rng.standard_normal(32).astype(np.float32)
            q /= np.linalg.norm(q)
            exact_ids, exact_scores = base.search_among(
                "u", KIND_DESC, ids, q, 10
            )
            ivf_ids, ivf_scores = ivf.search_among("u", KIND_DESC, ids, q, 10)
            assert ivf_ids == exact_ids
            assert np.array_equal(ivf_scores, exact_scores)

    def test_k_none_serves_exact_full_ordering(self, populated):
        base, ids, _rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=2)
        q = rng.standard_normal(32).astype(np.float32)
        got = ivf.search_among("u", KIND_DESC, ids, q, None)
        want = base.search_among("u", KIND_DESC, ids, q, None)
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])

    def test_small_shards_serve_exact(self):
        base = VectorIndex()
        rng = np.random.default_rng(3)
        rows = clustered_rows(rng, 20)
        base.add_many("u", KIND_DESC, list(range(20)), rows)
        ivf = IVFFlatBackend(base, nprobe=1)  # min_train_rows default 64
        q = rows[0]
        got = ivf.search_among("u", KIND_DESC, list(range(20)), q, 5)
        want = base.search_among("u", KIND_DESC, list(range(20)), q, 5)
        assert got[0] == want[0] and np.array_equal(got[1], want[1])
        assert ivf.trainings == 0  # never clustered

    def test_probed_scores_are_exact_rerank(self, populated):
        """IVF-flat never approximates *scores* — only the candidate set."""
        base, ids, _rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=4)
        q = rng.standard_normal(32).astype(np.float32)
        q /= np.linalg.norm(q)
        exact_ids, exact_scores = base.search_among("u", KIND_DESC, ids, q, 20)
        by_id = dict(zip(exact_ids, exact_scores.tolist()))
        ivf_ids, ivf_scores = ivf.search_among("u", KIND_DESC, ids, q, 20)
        for rid, score in zip(ivf_ids, ivf_scores.tolist()):
            if rid in by_id:
                assert score == by_id[rid]

    def test_high_recall_on_clustered_data(self, populated):
        base, ids, rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=4)
        hits = 0
        trials = 20
        for i in range(trials):
            q = rows[i * 7] + 0.05 * rng.standard_normal(32).astype(np.float32)
            q /= np.linalg.norm(q)
            exact_ids, _ = base.search_among("u", KIND_DESC, ids, q, 10)
            ivf_ids, _ = ivf.search_among("u", KIND_DESC, ids, q, 10)
            hits += len(set(exact_ids) & set(ivf_ids))
        assert hits / (10 * trials) >= 0.9


class TestIVFMaintenance:
    def test_mutation_invalidates_training(self, populated):
        base, ids, _rows, rng = populated
        # retrain_fraction=0: eager retraining on any mutation
        ivf = IVFFlatBackend(base, nlist=16, nprobe=2, retrain_fraction=0)
        q = rng.standard_normal(32).astype(np.float32)
        ivf.search_among("u", KIND_DESC, ids, q, 5)
        assert ivf.trainings == 1
        new_vec = np.ones(32, dtype=np.float32) / np.sqrt(32.0)
        base.add("u", KIND_DESC, 999, new_vec)
        got = ivf.search_among("u", KIND_DESC, ids + [999], new_vec, 5)
        assert ivf.trainings == 2  # retrained after the add
        assert got is not None and got[0][0] == 999  # the new row is found

    def test_recent_mutations_serve_exact_until_retrain_amortizes(
        self, populated
    ):
        """Stale lists never serve; cheap writes don't retrain per query."""
        base, ids, _rows, rng = populated
        ivf = IVFFlatBackend(
            base, nlist=16, nprobe=2, retrain_fraction=0.02
        )  # 400 rows -> retrain after 8 accrued mutations
        q = rng.standard_normal(32).astype(np.float32)
        ivf.search_among("u", KIND_DESC, ids, q, 5)
        assert ivf.trainings == 1
        new_vec = np.ones(32, dtype=np.float32) / np.sqrt(32.0)
        base.add("u", KIND_DESC, 999, new_vec)
        got = ivf.search_among("u", KIND_DESC, ids + [999], new_vec, 5)
        # one mutation is below the threshold: no retrain, but the
        # query still finds the new row through the exact scan
        assert ivf.trainings == 1
        assert got is not None and got[0][0] == 999
        want = base.search_among("u", KIND_DESC, ids + [999], new_vec, 5)
        assert got[0] == want[0] and np.array_equal(got[1], want[1])
        # enough further mutations amortize a retrain
        for rid in range(1000, 1010):
            base.add("u", KIND_DESC, rid, new_vec)
        all_ids = ids + [999] + list(range(1000, 1010))
        ivf.search_among("u", KIND_DESC, all_ids, q, 5)
        assert ivf.trainings == 2

    def test_read_heavy_traffic_recovers_approximate_serving(
        self, populated
    ):
        """One write must not pin the backend to exact scans forever:
        after ~nlist stale-served queries the lists retrain."""
        base, ids, _rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=2)
        q = rng.standard_normal(32).astype(np.float32)
        ivf.search_among("u", KIND_DESC, ids, q, 5)
        assert ivf.trainings == 1
        base.add("u", KIND_DESC, 999, np.ones(32, dtype=np.float32))
        all_ids = ids + [999]
        # a single write is below the write threshold, so reads serve
        # exactly — but only for ~nlist queries, then a retrain fires
        for _ in range(20):
            ivf.search_among("u", KIND_DESC, all_ids, q, 5)
            if ivf.trainings == 2:
                break
        assert ivf.trainings == 2

    def test_degenerate_probe_width_never_trains(self, populated):
        base, ids, _rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=64)  # nprobe >= nlist
        q = rng.standard_normal(32).astype(np.float32)
        got = ivf.search_among("u", KIND_DESC, ids, q, 5)
        want = base.search_among("u", KIND_DESC, ids, q, 5)
        assert got[0] == want[0] and np.array_equal(got[1], want[1])
        assert ivf.trainings == 0  # the k-means was never paid

    def test_removed_id_never_returned(self, populated):
        base, ids, rows, _rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=16)
        base.remove("u", KIND_DESC, ids[0])
        remaining = ids[1:]
        got = ivf.search_among("u", KIND_DESC, remaining, rows[0], 10)
        assert got is not None and ids[0] not in got[0]

    def test_membership_mismatch_returns_none(self, populated):
        base, ids, rows, _rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=2)
        assert ivf.search_among("u", KIND_DESC, ids[:10], rows[0], 5) is None
        assert (
            ivf.search_among("u", KIND_DESC, ids + [12345], rows[0], 5) is None
        )

    def test_invalid_k_rejected(self, populated):
        base, ids, rows, _rng = populated
        ivf = IVFFlatBackend(base)
        with pytest.raises(ValidationError, match="k must be positive"):
            ivf.search_among("u", KIND_DESC, ids, rows[0], 0)

    def test_clear_drops_ivf_state(self, populated):
        base, ids, rows, _rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=2)
        ivf.search_among("u", KIND_DESC, ids, rows[0], 5)
        ivf.clear("u")
        assert ivf.size("u", KIND_DESC) == 0
        with ivf._states_lock:
            assert not ivf._states

    def test_snapshot_delegates_to_base(self, populated):
        base, _ids, _rows, _rng = populated
        ivf = IVFFlatBackend(base)
        assert ivf.snapshot().keys() == base.snapshot().keys()


class TestIVFBatchServing:
    def test_search_among_many_matches_single_shot(self, populated):
        base, ids, rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=4)
        queries = []
        for i in range(6):
            q = rows[i * 13] + 0.05 * rng.standard_normal(32).astype(
                np.float32
            )
            queries.append(q / np.linalg.norm(q))
        ks = [5, 10, 3, None, 5, 7]
        batched = ivf.search_among_many("u", KIND_DESC, ids, queries, ks)
        assert batched is not None
        for (got_ids, got_scores), q, k in zip(batched, queries, ks):
            want_ids, want_scores = ivf.search_among("u", KIND_DESC, ids, q, k)
            assert got_ids == want_ids
            assert np.array_equal(got_scores, want_scores)

    def test_batcher_with_ivf_backend_matches_single_shot(self, populated):
        base, ids, rows, rng = populated
        ivf = IVFFlatBackend(base, nlist=16, nprobe=4)
        records = {rid: {"id": rid} for rid in ids}
        batcher = SearchBatcher(window=0.05, max_batch=8)

        def serve(qvec):
            return batcher.submit(
                index=ivf,
                user="u",
                kind=KIND_DESC,
                owned_ids=lambda: sorted(records),
                k=5,
                query_vector=lambda: qvec,
                resolve=lambda wanted: [
                    records[rid] for rid in wanted if rid in records
                ],
                rid_of=lambda r: r["id"],
                build_hit=lambda r, s: (r["id"], s),
                fallback=lambda recs, q: [],
            )

        queries = [
            rows[i * 17] / np.linalg.norm(rows[i * 17]) for i in range(6)
        ]
        results = [None] * len(queries)
        barrier = threading.Barrier(len(queries))

        def worker(i):
            barrier.wait()
            results[i] = serve(queries[i])

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for q, got in zip(queries, results):
            assert got == serve(q)


class TestHNSWParity:
    def test_k_none_serves_exact_full_ordering(self, populated):
        base, ids, _rows, rng = populated
        hnsw = HNSWBackend(base, m=8, ef_search=4)
        q = rng.standard_normal(32).astype(np.float32)
        got = hnsw.search_among("u", KIND_DESC, ids, q, None)
        want = base.search_among("u", KIND_DESC, ids, q, None)
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])

    def test_small_shards_serve_exact(self):
        base = VectorIndex()
        rng = np.random.default_rng(3)
        rows = clustered_rows(rng, 20)
        base.add_many("u", KIND_DESC, list(range(20)), rows)
        hnsw = HNSWBackend(base)  # min_build_rows default 64
        q = rows[0]
        got = hnsw.search_among("u", KIND_DESC, list(range(20)), q, 5)
        want = base.search_among("u", KIND_DESC, list(range(20)), q, 5)
        assert got[0] == want[0] and np.array_equal(got[1], want[1])
        assert hnsw.builds == 0  # the graph was never built

    def test_results_are_exact_rerank(self, populated):
        """HNSW never approximates *scores* — only the candidate set.

        Every returned score is a true float32 dot product, matching
        the exact backend's score for the same id to accumulation
        (last-ulp) precision — BLAS may reduce a subset product in a
        different order than the full-shard scan — and the returned
        order is descending score with ascending-id tie-breaking.
        """
        base, ids, _rows, rng = populated
        hnsw = HNSWBackend(base, m=8, m0=16, ef_search=4)
        for _ in range(5):
            q = rng.standard_normal(32).astype(np.float32)
            q /= np.linalg.norm(q)
            exact_ids, exact_scores = base.search_among(
                "u", KIND_DESC, ids, q, None
            )
            by_id = dict(zip(exact_ids, exact_scores.tolist()))
            got_ids, got_scores = hnsw.search_among("u", KIND_DESC, ids, q, 10)
            for rid, score in zip(got_ids, got_scores.tolist()):
                assert score == pytest.approx(by_id[rid], abs=1e-6)
            ranked = list(zip(got_scores.tolist(), got_ids))
            for (s_a, id_a), (s_b, id_b) in zip(ranked, ranked[1:]):
                assert s_a > s_b or (s_a == s_b and id_a < id_b)

    def test_high_recall_on_clustered_data(self, populated):
        base, ids, rows, rng = populated
        hnsw = HNSWBackend(base, m=8, m0=32, ef_search=6)
        hits = 0
        trials = 20
        for i in range(trials):
            q = rows[i * 7] + 0.05 * rng.standard_normal(32).astype(np.float32)
            q /= np.linalg.norm(q)
            exact_ids, _ = base.search_among("u", KIND_DESC, ids, q, 10)
            got_ids, _ = hnsw.search_among("u", KIND_DESC, ids, q, 10)
            hits += len(set(exact_ids) & set(got_ids))
        assert hits / (10 * trials) >= 0.9

    def test_deterministic_across_instances(self, populated):
        """Same shard, same options -> identical graph and results (the
        level hash and the exact adjacency build use no RNG)."""
        base, ids, rows, _rng = populated
        a = HNSWBackend(base, m=8, m0=16, ef_search=4)
        b = HNSWBackend(base, m=8, m0=16, ef_search=4)
        for i in range(5):
            q = rows[i * 31] / np.linalg.norm(rows[i * 31])
            got_a = a.search_among("u", KIND_DESC, ids, q, 10)
            got_b = b.search_among("u", KIND_DESC, ids, q, 10)
            assert got_a[0] == got_b[0]
            assert np.array_equal(got_a[1], got_b[1])


class TestHNSWMaintenance:
    def test_append_extends_graph_in_place(self, populated):
        base, ids, rows, rng = populated
        hnsw = HNSWBackend(base, m=8, m0=32, ef_search=6, rebuild_fraction=0)
        q = rng.standard_normal(32).astype(np.float32)
        hnsw.search_among("u", KIND_DESC, ids, q, 5)
        assert hnsw.builds == 1
        # a duplicate of an existing row lands inside its cluster, so
        # the incrementally linked adjacency must reach it
        new_vec = rows[0].copy()
        base.add("u", KIND_DESC, 999, new_vec)
        got = hnsw.search_among("u", KIND_DESC, ids + [999], new_vec, 5)
        assert hnsw.builds == 1 and hnsw.extends == 1  # linked, not rebuilt
        assert got is not None and 999 in got[0]  # the new row is found
        # a non-append mutation still invalidates the graph: eager
        # rebuild at rebuild_fraction=0
        base.remove("u", KIND_DESC, ids[0])
        hnsw.search_among("u", KIND_DESC, ids[1:] + [999], q, 5)
        assert hnsw.builds == 2

    def test_extended_graph_matches_full_rebuild(self, populated):
        """Conformance: insert-time extension serves results bitwise
        identical to a graph built from scratch over the grown slab."""
        base, ids, rows, rng = populated
        opts = dict(m=8, ef_search=4, rebuild_fraction=0.02)
        hnsw = HNSWBackend(base, **opts)
        q = rng.standard_normal(32).astype(np.float32)
        hnsw.search_among("u", KIND_DESC, ids, q, 5)
        assert hnsw.builds == 1
        new_ids = list(ids)
        for step in range(3):
            vec = rng.standard_normal(32).astype(np.float32)
            vec /= np.linalg.norm(vec)
            base.add("u", KIND_DESC, 999 + step, vec)
            new_ids.append(999 + step)
        got = hnsw.search_among("u", KIND_DESC, new_ids, q, 10)
        # the appends routed + linked into the existing graph in place
        assert hnsw.builds == 1 and hnsw.extends == 1
        fresh = HNSWBackend(base, **opts)
        want = fresh.search_among("u", KIND_DESC, new_ids, q, 10)
        assert fresh.builds == 1 and fresh.extends == 0
        assert got is not None and want is not None
        assert got[0] == want[0]
        assert np.array_equal(got[1], want[1])
        for trial in range(5):
            probe = rows[trial * 13] + 0.05 * rng.standard_normal(32).astype(
                np.float32
            )
            probe /= np.linalg.norm(probe)
            got = hnsw.search_among("u", KIND_DESC, new_ids, probe, 10)
            want = fresh.search_among("u", KIND_DESC, new_ids, probe, 10)
            assert got[0] == want[0]
            assert np.array_equal(got[1], want[1])

    def test_removed_id_never_returned(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, m0=32, ef_search=8)
        base.remove("u", KIND_DESC, ids[0])
        remaining = ids[1:]
        got = hnsw.search_among("u", KIND_DESC, remaining, rows[0], 10)
        assert got is not None and ids[0] not in got[0]

    def test_membership_mismatch_returns_none(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, ef_search=4)
        assert hnsw.search_among("u", KIND_DESC, ids[:10], rows[0], 5) is None
        assert (
            hnsw.search_among("u", KIND_DESC, ids + [12345], rows[0], 5)
            is None
        )

    def test_invalid_k_rejected(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base)
        with pytest.raises(ValidationError, match="k must be positive"):
            hnsw.search_among("u", KIND_DESC, ids, rows[0], 0)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValidationError, match="m must be at least 2"):
            HNSWBackend(m=1)

    def test_clear_drops_graph_state(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, ef_search=4)
        hnsw.search_among("u", KIND_DESC, ids, rows[0], 5)
        hnsw.clear("u")
        assert hnsw.size("u", KIND_DESC) == 0
        with hnsw._states_lock:
            assert not hnsw._states

    def test_stats_surface_entry_count(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, ef_search=4)
        hnsw.search_among("u", KIND_DESC, ids, rows[0], 5)
        info = hnsw.stats()["u/desc"]
        assert 0 < info["hnswEntries"] < 400


class TestHNSWStateRoundTrip:
    def test_export_adopt_round_trip(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, m0=16, ef_search=4)
        hnsw.search_among("u", KIND_DESC, ids, rows[0], 5)
        assert hnsw.builds == 1
        states = hnsw.export_states()
        assert ("u", KIND_DESC) in states
        fresh = HNSWBackend(base, m=8, m0=16, ef_search=4)
        assert fresh.adopt_states(states) == 1
        got = fresh.search_among("u", KIND_DESC, ids, rows[0], 5)
        want = hnsw.search_among("u", KIND_DESC, ids, rows[0], 5)
        assert got[0] == want[0] and np.array_equal(got[1], want[1])
        assert fresh.builds == 0  # the adopted graph served directly

    def test_adopt_rejects_malformed_state(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, m0=16, ef_search=4)
        hnsw.search_among("u", KIND_DESC, ids, rows[0], 5)
        (levels, neighbors), = hnsw.export_states().values()
        fresh = HNSWBackend(base, m=8, m0=16)
        bad_rows = neighbors.copy()
        bad_rows[0, 0] = 400  # out of range for the 400-row slab
        assert (
            fresh.adopt_states({("u", KIND_DESC): (levels[:-1], neighbors)})
            == 0
        )
        assert (
            fresh.adopt_states({("u", KIND_DESC): (levels, bad_rows)}) == 0
        )

    def test_stale_export_omitted_after_mutation(self, populated):
        base, ids, rows, _rng = populated
        hnsw = HNSWBackend(base, m=8, ef_search=4)
        hnsw.search_among("u", KIND_DESC, ids, rows[0], 5)
        base.add("u", KIND_DESC, 999, np.ones(32, np.float32))
        assert hnsw.export_states() == {}


class TestHNSWBatchServing:
    def test_search_among_many_matches_single_shot(self, populated):
        base, ids, rows, rng = populated
        hnsw = HNSWBackend(base, m=8, m0=32, ef_search=6)
        queries = []
        for i in range(6):
            q = rows[i * 13] + 0.05 * rng.standard_normal(32).astype(
                np.float32
            )
            queries.append(q / np.linalg.norm(q))
        ks = [5, 10, 3, None, 5, 7]
        batched = hnsw.search_among_many("u", KIND_DESC, ids, queries, ks)
        assert batched is not None
        for (got_ids, got_scores), q, k in zip(batched, queries, ks):
            want_ids, want_scores = hnsw.search_among(
                "u", KIND_DESC, ids, q, k
            )
            assert got_ids == want_ids
            assert np.allclose(got_scores, want_scores, atol=1e-6)


class TestEmbedMany:
    def test_embed_many_bitwise_equals_embed_one(self, fast_bundle):
        model = fast_bundle.code_search
        texts = ["find prime numbers", "sort a list", "find prime numbers"]
        batch = model.embed_many(texts, kind="text")
        for i, text in enumerate(texts):
            assert np.array_equal(batch[i], model.embed_one(text, kind="text"))

    def test_batcher_embeds_distinct_queries_in_one_call(self):
        """The flush leader makes ONE embed_many call for a batch.

        Mirrors the production call shape: every request passes a
        *fresh bound method* (Python mints a new bound-method object
        per attribute access, exactly like ``searcher.embed_queries``),
        so this also guards the (function, instance) grouping key.
        """

        class Embedder:
            def __init__(self):
                self.calls = []

            def embed_queries(self, texts):
                self.calls.append(list(texts))
                out = np.zeros((len(texts), 8), dtype=np.float32)
                for i, text in enumerate(texts):
                    out[i, hash(text) % 8] = 1.0
                return out

        embedder = Embedder()
        index = VectorIndex()
        rids = list(range(1, 6))
        for rid in rids:
            vec = np.zeros(8, dtype=np.float32)
            vec[rid % 8] = 1.0
            index.add("u", KIND_DESC, rid, vec)
        records = {rid: {"id": rid} for rid in rids}
        batcher = SearchBatcher(window=0.25, max_batch=4)
        texts = ["alpha", "beta", "alpha", "gamma"]
        results = [None] * len(texts)
        barrier = threading.Barrier(len(texts))

        def worker(i):
            text = texts[i]
            embed_many = embedder.embed_queries  # fresh bound method
            barrier.wait()
            results[i] = batcher.submit(
                index=index,
                user="u",
                kind=KIND_DESC,
                owned_ids=lambda: sorted(records),
                k=3,
                query_vector=lambda: embed_many([text])[0],
                resolve=lambda wanted: [
                    records[rid] for rid in wanted if rid in records
                ],
                rid_of=lambda r: r["id"],
                build_hit=lambda r, s: (r["id"], s),
                fallback=lambda recs, q: [],
                embed_key=("t", text),
                embed_text=text,
                embed_many=embed_many,
            )

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(texts))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(result is not None for result in results)
        # every text embedded at most once overall (duplicate queries
        # coalesce through the shared embed_key), and any flush that
        # batched >= 2 requests embedded its distinct texts together
        embedded = [text for call in embedder.calls for text in call]
        assert len(embedded) == len(set(embedded))
        if batcher.stats()["batchedRequests"] > 0:
            assert any(len(call) > 1 for call in embedder.calls)
            assert batcher.stats()["batchEmbeds"] > 0

    def test_production_searcher_batches_distinct_queries(self, fast_bundle):
        """End-to-end: concurrent searches through a real searcher hit
        the model once per flush, not once per request."""
        from repro.search import SemanticSearcher

        calls = []
        searcher = SemanticSearcher(fast_bundle.code_search)
        original = type(fast_bundle.code_search).embed_many

        def counting_embed_many(model_self, texts, kind="auto"):
            calls.append(list(texts))
            return original(model_self, texts, kind)

        index = VectorIndex()
        records = {}
        for rid in range(1, 9):
            desc = f"record about topic {rid}"
            vec = searcher.embed_description(desc)
            index.add("u", KIND_DESC, rid, vec)
            records[rid] = type("R", (), {
                "pe_id": rid, "pe_name": f"r{rid}", "description": desc,
                "description_origin": "user", "desc_embedding": vec,
            })()
        batcher = SearchBatcher(window=0.25, max_batch=4)
        queries = ["find alpha", "find beta", "find gamma", "find delta"]
        results = [None] * len(queries)
        barrier = threading.Barrier(len(queries))
        patched = type(fast_bundle.code_search)
        patched.embed_many = counting_embed_many
        try:
            def worker(i):
                barrier.wait()
                results[i] = searcher.search_topk(
                    queries[i],
                    index=index,
                    user="u",
                    owned_ids=lambda: sorted(records),
                    resolve=lambda ids: [
                        records[r] for r in ids if r in records
                    ],
                    k=3,
                    batcher=batcher,
                )

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(queries))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            patched.embed_many = original
        assert all(r is not None for r in results)
        stats = batcher.stats()
        if stats["batchedRequests"] > 0:
            # at least one flush embedded multiple distinct queries in
            # one model call — the satellite's whole point
            assert stats["batchEmbeds"] > 0
            assert any(len(call) > 1 for call in calls)

    def test_batch_embed_populates_query_lru(self):
        seen = []

        def embed_many(texts):
            seen.extend(texts)
            return np.ones((len(texts), 4), dtype=np.float32)

        index = VectorIndex()
        index.add("u", KIND_DESC, 1, np.ones(4, np.float32))
        batcher = SearchBatcher(window=0.0)
        kwargs = dict(
            index=index,
            user="u",
            kind=KIND_DESC,
            owned_ids=lambda: [1],
            k=1,
            query_vector=lambda: embed_many(["q"])[0],
            resolve=lambda wanted: [{"id": 1}],
            rid_of=lambda r: r["id"],
            build_hit=lambda r, s: (r["id"], s),
            fallback=lambda recs, q: [],
            embed_key=("t", "q"),
            embed_text="q",
            embed_many=embed_many,
        )
        batcher.submit(**kwargs)
        assert seen == ["q"]
        batcher.submit(**kwargs)  # LRU hit: no second embed
        assert seen == ["q"]

    def test_missing_embed_key_falls_back_to_direct_embedding(self):
        """An embed spec without a cache key must not share a batch
        slot — each request embeds through its own thunk instead."""
        calls = []

        def embed_many(texts):
            calls.append(list(texts))
            return np.ones((len(texts), 4), dtype=np.float32)

        index = VectorIndex()
        index.add("u", KIND_DESC, 1, np.ones(4, np.float32))
        batcher = SearchBatcher(window=0.0)
        own_vectors = []

        def make_qv(tag):
            def qv():
                vec = np.full(4, float(tag), dtype=np.float32)
                own_vectors.append(tag)
                return vec

            return qv

        for tag in (1, 2):
            batcher.submit(
                index=index,
                user="u",
                kind=KIND_DESC,
                owned_ids=lambda: [1],
                k=1,
                query_vector=make_qv(tag),
                resolve=lambda wanted: [{"id": 1}],
                rid_of=lambda r: r["id"],
                build_hit=lambda r, s: (r["id"], s),
                fallback=lambda recs, q: [],
                embed_key=None,  # incomplete spec
                embed_text=f"text{tag}",
                embed_many=embed_many,
            )
        assert calls == []  # batch embedder never invoked
        assert own_vectors == [1, 2]  # each request used its own thunk

    def test_embed_failure_propagates_to_submitter(self):
        def embed_many(texts):
            raise RuntimeError("model down")

        index = VectorIndex()
        index.add("u", KIND_DESC, 1, np.ones(4, np.float32))
        batcher = SearchBatcher(window=0.0)
        with pytest.raises(RuntimeError, match="model down"):
            batcher.submit(
                index=index,
                user="u",
                kind=KIND_DESC,
                owned_ids=lambda: [1],
                k=1,
                query_vector=lambda: np.ones(4, np.float32),
                resolve=lambda wanted: [{"id": 1}],
                rid_of=lambda r: r["id"],
                build_hit=lambda r, s: (r["id"], s),
                fallback=lambda recs, q: [],
                embed_key=("t", "q"),
                embed_text="q",
                embed_many=embed_many,
            )
