"""SearchBatcher: coalescing, bitwise parity and fallback behaviour."""

import threading

import numpy as np
import pytest

from repro.errors import NotFoundError, ValidationError
from repro.search import KIND_DESC, SearchBatcher, VectorIndex, serve_topk


class Corpus:
    """A tiny record store mimicking the registry's resolve protocol."""

    def __init__(self, user, vectors):
        self.user = user
        self.records = {
            rid: {"id": rid, "vec": np.asarray(vec, dtype=np.float32)}
            for rid, vec in vectors.items()
        }
        self.resolve_calls = 0
        self.owned_calls = 0

    def owned_ids(self):
        self.owned_calls += 1
        return sorted(self.records)

    def resolve(self, ids):
        self.resolve_calls += 1
        return [self.records[rid] for rid in ids if rid in self.records]

    def brute_force(self, records, qvec, k=None):
        sims = np.stack([r["vec"] for r in records]) @ qvec
        order = np.argsort(-sims, kind="stable")
        hits = [(records[i]["id"], float(sims[i])) for i in order]
        return hits if k is None else hits[:k]


def unit(rng, dim=16):
    vec = rng.standard_normal(dim).astype(np.float32)
    return vec / np.linalg.norm(vec)


@pytest.fixture()
def stack():
    rng = np.random.default_rng(7)
    vectors = {rid: unit(rng) for rid in range(1, 21)}
    corpus = Corpus("u", vectors)
    index = VectorIndex()
    for rid, vec in vectors.items():
        index.add("u", KIND_DESC, rid, vec)
    return index, corpus, rng


def protocol_kwargs(index, corpus, qvec, k, kind=KIND_DESC):
    """The serve_topk/submit callback set, k-truncating fallback included
    (the real searchers apply k inside their brute-force fallback)."""
    return dict(
        index=index,
        user=corpus.user,
        kind=kind,
        owned_ids=corpus.owned_ids,
        k=k,
        query_vector=lambda: qvec,
        resolve=corpus.resolve,
        rid_of=lambda r: r["id"],
        build_hit=lambda r, s: (r["id"], s),
        fallback=lambda records, q: corpus.brute_force(records, q, k),
    )


def submit(batcher, index, corpus, qvec, k=5, kind=KIND_DESC):
    return batcher.submit(**protocol_kwargs(index, corpus, qvec, k, kind))


def single_shot(index, corpus, qvec, k=5):
    return serve_topk(**protocol_kwargs(index, corpus, qvec, k))


class TestSingleRequest:
    def test_passthrough_matches_serve_topk_bitwise(self, stack):
        index, corpus, rng = stack
        batcher = SearchBatcher(window=0.5)  # window must not be paid
        qvec = unit(rng)
        assert submit(batcher, index, corpus, qvec) == single_shot(
            index, corpus, qvec
        )
        stats = batcher.stats()
        assert stats["requests"] == 1
        assert stats["batches"] == 1
        assert stats["batchedRequests"] == 0

    def test_empty_owned_set_returns_empty_without_embedding(self, stack):
        index, _, _ = stack
        empty = Corpus("u", {})
        batcher = SearchBatcher()

        def boom():
            raise AssertionError("embedded despite empty owned set")

        kwargs = protocol_kwargs(index, empty, None, 3)
        kwargs["query_vector"] = boom
        assert batcher.submit(**kwargs) == []

    def test_callback_error_reraises_in_submitter(self, stack):
        index, corpus, rng = stack
        batcher = SearchBatcher()

        def broken_resolve(ids):
            raise NotFoundError("gone")

        kwargs = protocol_kwargs(index, corpus, unit(rng), 2)
        kwargs["resolve"] = broken_resolve
        with pytest.raises(NotFoundError):
            batcher.submit(**kwargs)


class TestCoalescing:
    def run_concurrent(self, batcher, index, corpus, qvecs, k=5):
        results = [None] * len(qvecs)
        errors = []
        barrier = threading.Barrier(len(qvecs))

        def worker(i):
            try:
                barrier.wait()
                results[i] = submit(batcher, index, corpus, qvecs[i], k=k)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(qvecs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        return results

    def test_concurrent_submits_coalesce_and_match_single_shot(self, stack):
        index, corpus, rng = stack
        batcher = SearchBatcher(window=0.05, max_batch=16)
        qvecs = [unit(rng) for _ in range(8)]
        # scheduling may fully serialize a round; parity must hold every
        # round, coalescing must be observed within a few
        for _ in range(12):
            results = self.run_concurrent(batcher, index, corpus, qvecs)
            for qvec, got in zip(qvecs, results):
                assert got == single_shot(index, corpus, qvec)
            if batcher.stats()["batchedRequests"] > 0:
                break
        assert batcher.stats()["batchedRequests"] > 0

    def test_batch_amortizes_owned_and_resolve_calls(self, stack):
        index, corpus, rng = stack
        batcher = SearchBatcher(window=0.2, max_batch=8)
        qvecs = [unit(rng) for _ in range(8)]
        before_owned, before_resolve = corpus.owned_calls, corpus.resolve_calls
        self.run_concurrent(batcher, index, corpus, qvecs)
        stats = batcher.stats()
        # each flush costs exactly one owned-id fetch and one hydration
        # round trip, however many requests it coalesced
        assert corpus.owned_calls - before_owned == stats["batches"]
        assert corpus.resolve_calls - before_resolve == stats["batches"]

    def test_max_batch_caps_one_flush(self, stack):
        index, corpus, rng = stack
        batcher = SearchBatcher(window=1.0, max_batch=2)
        qvecs = [unit(rng) for _ in range(6)]
        results = self.run_concurrent(batcher, index, corpus, qvecs)
        assert all(result is not None for result in results)
        assert batcher.stats()["largestBatch"] <= 2

    def test_distinct_kinds_never_share_a_batch(self, stack):
        index, corpus, rng = stack
        # the other kind has no shard: its request must fall back
        # brute-force without disturbing the KIND_DESC batch
        batcher = SearchBatcher(window=0.05)
        outcome = {}
        barrier = threading.Barrier(2)
        qvec = unit(rng)

        def desc_worker():
            barrier.wait()
            outcome["desc"] = submit(batcher, index, corpus, qvec)

        def other_worker():
            barrier.wait()
            outcome["other"] = submit(
                batcher, index, corpus, qvec, kind="other-kind"
            )

        threads = [
            threading.Thread(target=desc_worker),
            threading.Thread(target=other_worker),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcome["desc"] == single_shot(index, corpus, qvec)
        assert outcome["other"] == corpus.brute_force(
            corpus.resolve(corpus.owned_ids()), qvec, 5
        )
        assert batcher.stats()["fallbacks"] == 1


class TestFallback:
    def test_shard_mismatch_falls_back_brute_force(self, stack):
        index, corpus, rng = stack
        # grow the owned set past the shard: membership check must fail
        corpus.records[99] = {"id": 99, "vec": unit(rng)}
        batcher = SearchBatcher()
        qvec = unit(rng)
        got = submit(batcher, index, corpus, qvec, k=None)
        assert got == corpus.brute_force(
            corpus.resolve(corpus.owned_ids()), qvec
        )
        assert batcher.stats()["fallbacks"] == 1


class TestSearchAmongMany:
    def test_bitwise_identical_to_search_among(self, stack):
        index, corpus, rng = stack
        owned = corpus.owned_ids()
        qvecs = [unit(rng) for _ in range(5)]
        ks = [1, 3, None, 20, 2]
        batch = index.search_among_many("u", KIND_DESC, owned, qvecs, ks)
        assert batch is not None
        for qvec, k, (ids, scores) in zip(qvecs, ks, batch):
            single = index.search_among("u", KIND_DESC, owned, qvec, k)
            assert single is not None
            assert ids == single[0]
            assert np.array_equal(scores, single[1])

    def test_mismatch_returns_none(self, stack):
        index, corpus, rng = stack
        owned = corpus.owned_ids() + [999]
        assert (
            index.search_among_many("u", KIND_DESC, owned, [unit(rng)], [3])
            is None
        )

    def test_rejects_bad_k(self, stack):
        index, corpus, rng = stack
        with pytest.raises(ValidationError):
            index.search_among_many(
                "u", KIND_DESC, corpus.owned_ids(), [unit(rng)], [0]
            )


class TestAdaptiveWindow:
    """The coalescing window tracks observed queue depth (deep flushes
    widen it, sparse runs collapse it; in-between sizes hold steady)."""

    def make(self):
        return SearchBatcher(window=0.004, max_batch=16)

    def test_deep_streak_widens_up_to_the_cap(self):
        batcher = self.make()
        deep = batcher.max_batch  # >= max_batch // 2 counts as deep
        for _ in range(batcher._DEEP_STREAK):
            with batcher._lock:
                batcher._adapt_window(deep)
        assert batcher.stats()["effectiveWindow"] == 2 * batcher.window
        assert batcher.stats()["windowWidenings"] == 1
        # keep the pressure on: the window doubles again, then pins at
        # the _MAX_WIDEN cap no matter how long the streak runs
        for _ in range(6 * batcher._DEEP_STREAK):
            with batcher._lock:
                batcher._adapt_window(deep)
        stats = batcher.stats()
        assert stats["effectiveWindow"] == batcher._MAX_WIDEN * batcher.window
        assert stats["windowWidenings"] == 2

    def test_sparse_streak_collapses_to_passthrough(self):
        batcher = self.make()
        for _ in range(batcher._SPARSE_STREAK - 1):
            with batcher._lock:
                batcher._adapt_window(1)
        assert batcher.stats()["effectiveWindow"] == batcher.window
        with batcher._lock:
            batcher._adapt_window(1)
        stats = batcher.stats()
        assert stats["effectiveWindow"] == 0.0
        assert stats["windowCollapses"] == 1

    def test_intermediate_sizes_reset_both_streaks(self):
        batcher = self.make()
        mid = max(2, batcher.max_batch // 2) - 1  # neither deep nor lone
        for _ in range(50):
            with batcher._lock:
                batcher._adapt_window(1)
                batcher._adapt_window(mid)
        stats = batcher.stats()
        assert stats["effectiveWindow"] == batcher.window
        assert stats["windowWidenings"] == 0
        assert stats["windowCollapses"] == 0

    def test_concurrent_arrival_restores_base_window(self, stack):
        index, corpus, rng = stack
        batcher = self.make()
        # drive the window to a collapse with lone submits
        for _ in range(batcher._SPARSE_STREAK):
            submit(batcher, index, corpus, unit(rng))
        assert batcher.stats()["effectiveWindow"] == 0.0
        # a second arrival while one request is in flight restores the
        # base window.  Deterministic overlap: gate the first request's
        # flush inside owned_ids until the overlapping submit lands.
        first_in_flush = threading.Event()
        release = threading.Event()
        original = corpus.owned_ids
        state = {"gated": True}

        def gated_owned_ids():
            if state["gated"]:
                state["gated"] = False
                first_in_flush.set()
                assert release.wait(5)
            return original()

        corpus.owned_ids = gated_owned_ids
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                submit(batcher, index, corpus, unit(rng))
            )
        )
        thread.start()
        assert first_in_flush.wait(5)
        try:
            results.append(submit(batcher, index, corpus, unit(rng)))
        finally:
            release.set()
            thread.join()
        assert len(results) == 2 and all(results)
        assert batcher.stats()["effectiveWindow"] == batcher.window

    def test_stats_surface_window_state(self):
        stats = self.make().stats()
        for key in ("effectiveWindow", "windowWidenings", "windowCollapses"):
            assert key in stats
