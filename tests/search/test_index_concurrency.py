"""Concurrent-mutation safety of the vector index.

Threads hammer ``add``/``remove``/``search`` on one :class:`VectorIndex`
to prove lock correctness: no torn shard rows (every returned score must
match the deterministic vector stored for that id), no stale ids after
``remove`` returns, and a consistent final state.
"""

import threading

import numpy as np

from repro.search import KIND_DESC, VectorIndex

DIM = 32
USER = "u"


def vector_for(rid: int) -> np.ndarray:
    """Deterministic unit vector per record id — lets any observer verify
    that a returned score was computed from an intact row."""
    rng = np.random.default_rng(rid + 1)
    vec = rng.standard_normal(DIM).astype(np.float32)
    return vec / np.linalg.norm(vec)


class Worker(threading.Thread):
    """Owns a private id range; interleaves add/remove/search cycles."""

    def __init__(self, index: VectorIndex, base: int, rounds: int) -> None:
        super().__init__(daemon=True)
        self.index = index
        self.base = base
        self.rounds = rounds
        self.live: set[int] = set()
        self.errors: list[str] = []

    def run(self) -> None:
        try:
            rng = np.random.default_rng(self.base)
            for step in range(self.rounds):
                rid = self.base + (step % 25)
                if rid in self.live and rng.random() < 0.4:
                    assert self.index.remove(USER, KIND_DESC, rid)
                    self.live.discard(rid)
                    # a removed id must never be visible once remove returned
                    ids, _ = self.index.search(USER, KIND_DESC, vector_for(rid))
                    if rid in ids:
                        self.errors.append(f"stale id {rid} after remove")
                else:
                    self.index.add(USER, KIND_DESC, rid, vector_for(rid))
                    self.live.add(rid)
                if step % 3 == 0:
                    qvec = vector_for(self.base + 1000 + step)
                    ids, scores = self.index.search(USER, KIND_DESC, qvec, k=8)
                    for got_id, got_score in zip(ids, scores):
                        expected = float(vector_for(got_id) @ qvec)
                        if abs(expected - float(got_score)) > 1e-5:
                            self.errors.append(
                                f"torn row for id {got_id}: "
                                f"{got_score} != {expected}"
                            )
        except Exception as exc:  # surface thread crashes to the test
            self.errors.append(f"{type(exc).__name__}: {exc}")


class TestConcurrentHammer:
    def test_threads_never_observe_torn_or_stale_state(self):
        index = VectorIndex()
        workers = [Worker(index, base=i * 1000, rounds=300) for i in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert not worker.is_alive(), "worker deadlocked"
        problems = [e for w in workers for e in w.errors]
        assert problems == []

        # final state: exactly the union of per-thread live sets
        expected_live = set().union(*(w.live for w in workers))
        assert set(index.ids(USER, KIND_DESC)) == expected_live
        assert index.size(USER, KIND_DESC) == len(expected_live)

        # and every surviving vector is intact
        for rid in sorted(expected_live):
            ids, scores = index.search(USER, KIND_DESC, vector_for(rid), k=1)
            assert ids[0] == rid
            assert abs(float(scores[0]) - 1.0) < 1e-5

    def test_concurrent_batch_search_during_mutation(self):
        index = VectorIndex()
        for rid in range(64):
            index.add(USER, KIND_DESC, rid, vector_for(rid))
        stop = threading.Event()
        errors: list[str] = []

        def churn():
            step = 0
            while not stop.is_set():
                rid = 64 + (step % 32)
                index.add(USER, KIND_DESC, rid, vector_for(rid))
                index.remove(USER, KIND_DESC, rid)
                step += 1

        def query():
            queries = np.stack([vector_for(5000 + i) for i in range(4)])
            while not stop.is_set():
                try:
                    for ids, scores in index.search_batch(
                        USER, KIND_DESC, queries, k=5
                    ):
                        if len(ids) != len(scores):
                            errors.append("ragged batch result")
                except Exception as exc:
                    errors.append(f"{type(exc).__name__}: {exc}")
                    return

        threads = [threading.Thread(target=churn, daemon=True) for _ in range(2)]
        threads += [threading.Thread(target=query, daemon=True) for _ in range(2)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive()
        timer.cancel()
        assert errors == []
        # ids 0..63 were never touched by the churn threads
        assert set(index.ids(USER, KIND_DESC)) >= set(range(64))
