"""Tests for the three registry search mechanisms (§4.1-4.3)."""

import numpy as np
import pytest

from repro.ml.models import ReACCRetriever, UnixCoderCodeSearch
from repro.registry.entities import PERecord, WorkflowRecord
from repro.search import (
    CodeSearcher,
    SemanticSearcher,
    text_search_pes,
    text_search_workflows,
)
from repro.search.text_search import normalize


def wf(wid, entry, description=""):
    return WorkflowRecord(
        workflow_id=wid,
        workflow_name=entry,
        entry_point=entry,
        description=description,
        workflow_code="eA==",
    )


def pe(pid, name, description="", source=""):
    return PERecord(
        pe_id=pid,
        pe_name=name,
        description=description,
        pe_code="eA==",
        pe_source=source,
    )


class TestTextSearch:
    def test_figure_6_partial_match(self):
        """Querying 'prime' finds the workflow named 'isPrime'."""
        workflows = [
            wf(1, "wordcount", "counts words"),
            wf(2, "isPrime", "Workflow that prints random prime numbers"),
        ]
        hits = text_search_workflows("prime", workflows)
        assert hits and hits[0].entity_id == 2
        assert "name" in hits[0].matched_on

    def test_description_only_match(self):
        hits = text_search_workflows(
            "galaxies", [wf(1, "astro", "computes extinction of galaxies")]
        )
        assert hits and hits[0].matched_on == "description"

    def test_no_match_empty(self):
        assert text_search_workflows("nothing", [wf(1, "abc", "xyz")]) == []

    def test_case_insensitive(self):
        hits = text_search_workflows("ISPRIME", [wf(1, "isPrime")])
        assert hits

    def test_pe_search(self):
        hits = text_search_pes(
            "producer", [pe(1, "NumberProducer", "makes numbers"), pe(2, "Sink")]
        )
        assert [h.entity_id for h in hits] == [1]

    def test_normalize_expands_subtokens(self):
        assert "prime" in normalize("isPrime").split()

    def test_ranking_prefers_name_hits(self):
        hits = text_search_pes(
            "filter",
            [pe(1, "Widget", "a filter of things"), pe(2, "FilterColumns", "")],
        )
        assert hits[0].entity_id == 2

    def test_hit_json_shape(self):
        [hit] = text_search_workflows("prime", [wf(2, "isPrime")])
        body = hit.to_json()
        assert body["kind"] == "workflow" and body["id"] == 2


@pytest.fixture(scope="module")
def semantic():
    return SemanticSearcher(UnixCoderCodeSearch())


class TestSemanticSearch:
    def _pes(self, searcher):
        records = [
            pe(1, "NumberProducer", "Random numbers producer"),
            pe(2, "IsPrime", "A PE that checks if a number is prime"),
            pe(3, "WordCounter", "Counts word occurrences in sentences"),
        ]
        for record in records:
            record.desc_embedding = searcher.embed_description(record.description)
        return records

    def test_figure_7_ranking(self, semantic):
        hits = semantic.search(
            "A PE that checks if a number is prime", self._pes(semantic)
        )
        assert hits[0].pe_id == 2
        assert hits[0].score > hits[-1].score

    def test_stored_embeddings_used(self, semantic):
        records = self._pes(semantic)
        # poison one stored embedding: the searcher must honour it
        records[1].desc_embedding = np.zeros_like(records[1].desc_embedding)
        hits = semantic.search("checks if a number is prime", records)
        assert hits[0].pe_id != 2

    def test_missing_embedding_recomputed(self, semantic):
        records = self._pes(semantic)
        records[1].desc_embedding = None
        hits = semantic.search("checks if a number is prime", records)
        assert hits[0].pe_id == 2

    def test_k_truncates(self, semantic):
        hits = semantic.search("numbers", self._pes(semantic), k=2)
        assert len(hits) == 2

    def test_empty_registry(self, semantic):
        assert semantic.search("anything", []) == []

    def test_client_supplied_query_embedding(self, semantic):
        records = self._pes(semantic)
        qvec = semantic.embed_query("checks if a number is prime")
        hits = semantic.search("ignored text", records, query_embedding=qvec)
        assert hits[0].pe_id == 2


@pytest.fixture(scope="module")
def code_searcher():
    return CodeSearcher(ReACCRetriever())


class TestCodeSearch:
    def _pes(self, searcher):
        producer_src = (
            "class NumberProducer(ProducerPE):\n"
            "    def _process(self):\n"
            "        result = random.randint(1, 1000)\n"
            "        return result\n"
        )
        prime_src = (
            "class IsPrime(IterativePE):\n"
            "    def _process(self, num):\n"
            "        if all(num % i != 0 for i in range(2, num)):\n"
            "            return num\n"
        )
        records = [
            pe(1, "NumberProducer", "producer", producer_src),
            pe(2, "IsPrime", "prime check", prime_src),
        ]
        for record in records:
            record.code_embedding = searcher.embed_code(record.pe_source)
        return records

    def test_figure_8_ranking(self, code_searcher):
        hits = code_searcher.search(
            "random.randint(1, 1000)", self._pes(code_searcher)
        )
        assert hits[0].pe_id == 1

    def test_continuation_present(self, code_searcher):
        hits = code_searcher.search(
            "random.randint(1, 1000)", self._pes(code_searcher), k=1
        )
        assert hits[0].continuation  # non-empty suffix

    def test_empty_registry(self, code_searcher):
        assert code_searcher.search("x", []) == []

    def test_json_shape(self, code_searcher):
        [hit] = code_searcher.search("num", self._pes(code_searcher), k=1)
        body = hit.to_json()
        assert {"peId", "peName", "score", "continuation"} <= set(body)
