"""Scatter/gather shard serving: placement, merge, parity, degradation."""

import threading

import numpy as np
import pytest

from repro.errors import TransportError, ValidationError
from repro.net.transport import InProcessTransport
from repro.search.index import KIND_CODE, KIND_DESC, KIND_WORKFLOW, VectorIndex
from repro.search.scatter import (
    RemoteShardWorker,
    ScatterGatherBackend,
    ShardUnavailable,
    assign_worker,
    merge_ranked,
)
from repro.server.shardnode import ShardNode

DIM = 16
KINDS = (KIND_DESC, KIND_CODE, KIND_WORKFLOW)


def _vectors(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, DIM)).astype(np.float32)


def _populate(indexes, users=(1, 2, 3, 7), per_shard=23):
    """Feed identical (user, kind) slabs into every index-like target."""
    seed = 0
    for user in users:
        for kind in KINDS:
            seed += 1
            vectors = _vectors(per_shard, seed=seed)
            rids = list(range(1, per_shard + 1))
            for target in indexes:
                target.add_many(user, kind, rids, vectors)
    return list(users)


class TestAssignment:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 5, 16):
            for user in (1, 42, "alice"):
                for kind in KINDS:
                    first = assign_worker(user, kind, n)
                    assert first == assign_worker(user, kind, n)
                    assert 0 <= first < n

    def test_spreads_keys_across_workers(self):
        owners = {
            assign_worker(user, kind, 4)
            for user in range(40)
            for kind in KINDS
        }
        assert owners == {0, 1, 2, 3}  # 120 keys hit every worker

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ValidationError):
            assign_worker(1, KIND_DESC, 0)


class TestMergeRanked:
    def test_merging_a_partition_reproduces_the_global_ranking(self):
        """Bitwise: split a ranking's (id, score) pairs any way, merge,
        and the global exact top-k comes back identical."""
        index = VectorIndex()
        vectors = _vectors(57, seed=9)
        rids = list(range(1, 58))
        index.add_many(1, KIND_DESC, rids, vectors)
        query = _vectors(1, seed=99)[0]
        for k in (1, 3, 10, None):
            ids, scores = index.search_among(1, KIND_DESC, rids, query, None)
            # partition the full ranking's pairs into 3 interleaved groups
            parts = [
                ([i for n, i in enumerate(ids) if n % 3 == g],
                 np.asarray(
                     [s for n, s in enumerate(scores) if n % 3 == g],
                     dtype=np.float32,
                 ))
                for g in range(3)
            ]
            merged_ids, merged_scores = merge_ranked(parts, k)
            want_ids, want_scores = index.search_among(
                1, KIND_DESC, rids, query, k
            )
            assert merged_ids == want_ids
            assert merged_scores.tobytes() == want_scores.tobytes()

    def test_tie_break_is_ascending_id(self):
        parts = [
            ([5, 9], np.asarray([1.0, 0.5], dtype=np.float32)),
            ([2, 7], np.asarray([1.0, 1.0], dtype=np.float32)),
        ]
        ids, scores = merge_ranked(parts, None)
        assert ids == [2, 5, 7, 9]
        assert scores.tolist() == [1.0, 1.0, 1.0, 0.5]

    def test_empty(self):
        ids, scores = merge_ranked([], 5)
        assert ids == [] and scores.size == 0


def _parity_pairs():
    """(reference VectorIndex, scatter backend) fed identical slabs."""
    reference = VectorIndex()
    scatter = ScatterGatherBackend(shards=3)
    users = _populate([reference, scatter])
    return reference, scatter, users


class TestLocalParity:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("k", [1, 5, 23, None])
    def test_search_among_bitwise_identical(self, kind, k):
        reference, scatter, users = _parity_pairs()
        rids = list(range(1, 24))
        for user in users:
            query = _vectors(1, seed=1000 + user)[0]
            want = reference.search_among(user, kind, rids, query, k)
            got = scatter.search_among(user, kind, rids, query, k)
            assert want is not None and got is not None
            assert got[0] == want[0]
            assert got[1].tobytes() == want[1].tobytes()

    def test_search_among_many_bitwise_identical(self):
        reference, scatter, users = _parity_pairs()
        rids = list(range(1, 24))
        queries = [_vectors(1, seed=2000 + i)[0] for i in range(4)]
        ks = [1, 5, None, 23]
        for user in users:
            want = reference.search_among_many(
                user, KIND_DESC, rids, queries, ks
            )
            got = scatter.search_among_many(user, KIND_DESC, rids, queries, ks)
            for (want_ids, want_scores), (got_ids, got_scores) in zip(want, got):
                assert got_ids == want_ids
                assert got_scores.tobytes() == want_scores.tobytes()

    def test_membership_mismatch_returns_none(self):
        _, scatter, users = _parity_pairs()
        query = _vectors(1, seed=5)[0]
        assert (
            scatter.search_among(users[0], KIND_DESC, [1, 2, 999], query, 3)
            is None
        )

    def test_mutations_route_and_parity_survives_removals(self):
        reference, scatter, users = _parity_pairs()
        user = users[0]
        for rid in (3, 11, 20):
            assert reference.remove(user, KIND_DESC, rid)
            assert scatter.remove(user, KIND_DESC, rid)
        reference.add(user, KIND_DESC, 99, _vectors(1, seed=77)[0])
        scatter.add(user, KIND_DESC, 99, _vectors(1, seed=77)[0])
        rids = [r for r in range(1, 24) if r not in (3, 11, 20)] + [99]
        query = _vectors(1, seed=6)[0]
        want = reference.search_among(user, KIND_DESC, rids, query, 7)
        got = scatter.search_among(user, KIND_DESC, rids, query, 7)
        assert got[0] == want[0]
        assert got[1].tobytes() == want[1].tobytes()

    def test_remove_everywhere_drops_id_from_all_kinds(self):
        _, scatter, users = _parity_pairs()
        user = users[0]
        scatter.remove_everywhere(user, 5)
        for kind in KINDS:
            rids = [r for r in range(1, 24) if r != 5]
            got = scatter.search_among(
                user, kind, rids, _vectors(1, seed=8)[0], 3
            )
            assert got is not None  # shard now holds exactly rids

    def test_snapshot_unions_disjoint_worker_slabs(self):
        reference, scatter, users = _parity_pairs()
        want = reference.snapshot()
        got = scatter.snapshot()
        assert set(got) == set(want)
        for key in want:
            assert got[key][0].tolist() == want[key][0].tolist()
            assert got[key][1].tobytes() == want[key][1].tobytes()

    def test_concurrent_queries_across_workers(self):
        reference, scatter, users = _parity_pairs()
        rids = list(range(1, 24))
        failures = []

        def worker(user, seed):
            query = _vectors(1, seed=seed)[0]
            want = reference.search_among(user, KIND_DESC, rids, query, 5)
            got = scatter.search_among(user, KIND_DESC, rids, query, 5)
            if got is None or got[0] != want[0] or (
                got[1].tobytes() != want[1].tobytes()
            ):
                failures.append(user)

        threads = [
            threading.Thread(target=worker, args=(user, 3000 + n))
            for n, user in enumerate(users * 5)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestRemoteParity:
    def _remote_backend(self, n=2):
        nodes = [ShardNode(worker_id=i) for i in range(n)]
        workers = [
            RemoteShardWorker(i, InProcessTransport(node), retries=0)
            for i, node in enumerate(nodes)
        ]
        return ScatterGatherBackend(workers), nodes

    @pytest.mark.parametrize("kind", KINDS)
    def test_http_wire_format_is_lossless(self, kind):
        """Queries served through shard nodes (JSON wire round trip via
        InProcessTransport) stay bitwise identical to local serving."""
        reference = VectorIndex()
        scatter, _ = self._remote_backend()
        users = _populate([reference, scatter], per_shard=13)
        rids = list(range(1, 14))
        for k in (1, 4, None):
            for user in users:
                query = _vectors(1, seed=4000 + user)[0]
                want = reference.search_among(user, kind, rids, query, k)
                got = scatter.search_among(user, kind, rids, query, k)
                assert got[0] == want[0]
                assert got[1].tobytes() == want[1].tobytes()

    def test_health_endpoint_reports_rows(self):
        scatter, nodes = self._remote_backend()
        _populate([scatter], users=(1,), per_shard=5)
        total_rows = sum(
            worker.ping()["rows"] for worker in scatter.workers
        )
        assert total_rows == 5 * len(KINDS)
        assert all(node.requests > 0 for node in nodes)

    def test_snapshot_round_trips_through_export(self):
        reference = VectorIndex()
        scatter, _ = self._remote_backend()
        _populate([reference, scatter], users=(1, 2), per_shard=6)
        want = reference.snapshot()
        got = scatter.snapshot()
        assert set(got) == set(want)
        for key in want:
            assert got[key][1].tobytes() == want[key][1].tobytes()


class _DeadTransport:
    """A transport to a node that is down: every request fails."""

    def __init__(self):
        self.attempts = 0

    def request(self, request):
        self.attempts += 1
        raise TransportError("cannot reach shard node")


class TestDegradation:
    def _backend_with_dead_worker(self):
        dead = _DeadTransport()
        worker = RemoteShardWorker(0, dead, retries=1, backoff=0.001)
        return ScatterGatherBackend([worker], fail_threshold=2, cooldown=30.0), dead

    def test_unreachable_shard_degrades_to_none_not_an_error(self):
        scatter, dead = self._backend_with_dead_worker()
        query = _vectors(1, seed=1)[0]
        assert scatter.search_among(1, KIND_DESC, [1, 2], query, 2) is None
        assert dead.attempts == 2  # first try + one bounded retry
        assert scatter.stats()["degradedQueries"] == 1

    def test_circuit_breaker_stops_hammering_a_down_node(self):
        scatter, dead = self._backend_with_dead_worker()
        query = _vectors(1, seed=2)[0]
        for _ in range(5):
            assert scatter.search_among(1, KIND_DESC, [1], query, 1) is None
        # after fail_threshold=2 consecutive failures the circuit opens:
        # later queries degrade instantly without touching the transport
        assert dead.attempts == 2 * 2
        health = scatter.stats()["workers"][0]
        assert health["down"] is True
        assert health["failures"] == 2

    def test_failed_mutation_marks_shard_dirty(self):
        scatter, _ = self._backend_with_dead_worker()
        scatter.add(1, KIND_DESC, 7, _vectors(1, seed=3)[0])
        stats = scatter.stats()
        assert stats["dirtyShards"]  # the write could not be applied
        # a dirty shard must not serve (it would be missing the write)
        assert (
            scatter.search_among(1, KIND_DESC, [7], _vectors(1, seed=4)[0], 1)
            is None
        )

    def test_shard_unavailable_after_retries(self):
        dead = _DeadTransport()
        worker = RemoteShardWorker(3, dead, retries=2, backoff=0.001)
        with pytest.raises(ShardUnavailable, match="unreachable after 3"):
            worker.ping()
        assert dead.attempts == 3

    def test_healthy_traffic_keeps_circuit_closed(self):
        scatter = ScatterGatherBackend(shards=2)
        _populate([scatter], users=(1,), per_shard=4)
        query = _vectors(1, seed=5)[0]
        got = scatter.search_among(1, KIND_DESC, [1, 2, 3, 4], query, 2)
        assert got is not None
        stats = scatter.stats()
        assert stats["degradedQueries"] == 0
        assert all(not w["down"] for w in stats["workers"])
        assert sum(w["searches"] for w in stats["workers"]) == 1


class TestBackendSurface:
    def test_protocol_attributes(self):
        scatter = ScatterGatherBackend(shards=2)
        assert scatter.name == "scatter"
        assert scatter.prefix_stable_topk is True
        assert scatter.query_cache is not None

    def test_cached_query_vector(self):
        scatter = ScatterGatherBackend(shards=2)
        calls = []

        def compute():
            calls.append(1)
            return _vectors(1, seed=6)[0]

        first = scatter.cached_query_vector("q", compute)
        second = scatter.cached_query_vector("q", compute)
        assert len(calls) == 1
        assert first.tobytes() == second.tobytes()

    def test_clear_resets_everything(self):
        scatter = ScatterGatherBackend(shards=2)
        _populate([scatter], users=(1, 2), per_shard=3)
        scatter.clear(1)
        assert all(key[0] != 1 for key in scatter.snapshot())
        assert any(key[0] == 2 for key in scatter.snapshot())
        scatter.clear()
        assert scatter.snapshot() == {}

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValidationError):
            ScatterGatherBackend([])
