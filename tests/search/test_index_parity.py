"""Index/brute-force parity: identical ids and scores on every query.

The contract of :class:`repro.search.index.VectorIndex` is that serving
a query from the pre-stacked shard is *observationally identical* to the
historical brute-force scan — same ids, same scores (within 1e-6), same
stable insertion-order tie-breaking — across k regimes, duplicate
scores, empty corpora, and post-remove/re-add states.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.models import ReACCRetriever, UnixCoderCodeSearch
from repro.registry.entities import PERecord
from repro.search import (
    KIND_CODE,
    KIND_DESC,
    CodeSearcher,
    SemanticSearcher,
    VectorIndex,
)

DIM = 24


def unit_vectors(rng, n, duplicate_every=0):
    """Random unit rows; optionally repeat rows to force duplicate scores."""
    matrix = rng.standard_normal((n, DIM)).astype(np.float32)
    if duplicate_every:
        for i in range(duplicate_every, n, duplicate_every):
            matrix[i] = matrix[i - duplicate_every]
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / norms


def brute_force(qvec, vectors, k):
    """The reference linear scan: stable sort over insertion order."""
    sims = vectors @ qvec
    order = np.argsort(-sims, kind="stable")
    if k is not None:
        order = order[:k]
    return order.tolist(), sims[order]


def build_index(ids, vectors, user="u"):
    index = VectorIndex()
    for rid, vec in zip(ids, vectors):
        index.add(user, KIND_DESC, rid, vec)
    return index


class TestRawParity:
    """VectorIndex.search vs the linear scan over identical vectors."""

    N = 57

    @pytest.fixture()
    def corpus(self):
        rng = np.random.default_rng(11)
        vectors = unit_vectors(rng, self.N, duplicate_every=5)
        ids = list(range(100, 100 + self.N))
        return ids, vectors, rng

    @pytest.mark.parametrize("k", [1, 5, 57, None])
    def test_topk_parity(self, corpus, k):
        ids, vectors, rng = corpus
        index = build_index(ids, vectors)
        for _ in range(10):
            qvec = unit_vectors(rng, 1)[0]
            expected_rows, expected_scores = brute_force(qvec, vectors, k)
            got_ids, got_scores = index.search("u", KIND_DESC, qvec, k)
            assert got_ids == [ids[r] for r in expected_rows]
            np.testing.assert_allclose(got_scores, expected_scores, atol=1e-6)

    def test_duplicate_scores_rank_by_insertion_order(self, corpus):
        ids, vectors, _ = corpus
        # a query equal to a duplicated corpus row: several exact ties at
        # the top, which must come back in insertion order
        qvec = vectors[5]
        index = build_index(ids, vectors)
        got_ids, got_scores = index.search("u", KIND_DESC, qvec, k=3)
        expected_rows, _ = brute_force(qvec, vectors, 3)
        assert got_ids == [ids[r] for r in expected_rows]
        assert got_scores[0] == pytest.approx(got_scores[1], abs=1e-6)
        assert got_ids[0] < got_ids[1]  # tie broken by insertion order

    def test_empty_index_parity(self):
        index = VectorIndex()
        qvec = unit_vectors(np.random.default_rng(0), 1)[0]
        for k in (1, 5, None):
            got_ids, got_scores = index.search("u", KIND_DESC, qvec, k)
            assert got_ids == [] and got_scores.size == 0

    @pytest.mark.parametrize("k", [1, 5, None])
    def test_post_remove_parity(self, corpus, k):
        ids, vectors, rng = corpus
        index = build_index(ids, vectors)
        removed = set(ids[::3])
        for rid in removed:
            index.remove("u", KIND_DESC, rid)
        keep = [i for i, rid in enumerate(ids) if rid not in removed]
        live_vectors = vectors[keep]
        live_ids = [ids[i] for i in keep]
        for _ in range(5):
            qvec = unit_vectors(rng, 1)[0]
            expected_rows, expected_scores = brute_force(qvec, live_vectors, k)
            got_ids, got_scores = index.search("u", KIND_DESC, qvec, k)
            assert got_ids == [live_ids[r] for r in expected_rows]
            np.testing.assert_allclose(got_scores, expected_scores, atol=1e-6)

    @pytest.mark.parametrize("k", [1, 5, None])
    def test_remove_then_readd_parity(self, corpus, k):
        ids, vectors, rng = corpus
        index = build_index(ids, vectors)
        # remove a block, then re-add it: rows live in ascending-id
        # order, so the re-added block returns to its original position
        # and the reference is simply the id-ordered corpus
        for rid in ids[10:20]:
            index.remove("u", KIND_DESC, rid)
        for offset in range(10, 20):
            index.add("u", KIND_DESC, ids[offset], vectors[offset])
        for _ in range(5):
            qvec = unit_vectors(rng, 1)[0]
            expected_rows, expected_scores = brute_force(qvec, vectors, k)
            got_ids, got_scores = index.search("u", KIND_DESC, qvec, k)
            assert got_ids == [ids[r] for r in expected_rows]
            np.testing.assert_allclose(got_scores, expected_scores, atol=1e-6)

    @pytest.mark.parametrize("k", [1, 5, None])
    def test_out_of_order_adds_rank_like_id_ordered_scan(self, corpus, k):
        """The cross-user dedup case: a user acquires an *older* record
        after newer ones; shard rows stay in id order, so results match
        the brute scan over the id-ordered record list."""
        ids, vectors, rng = corpus
        order = rng.permutation(len(ids))
        index = VectorIndex()
        for i in order:
            index.add("u", KIND_DESC, ids[i], vectors[i])
        assert index.ids("u", KIND_DESC) == ids
        for _ in range(5):
            qvec = unit_vectors(rng, 1)[0]
            expected_rows, expected_scores = brute_force(qvec, vectors, k)
            got_ids, got_scores = index.search("u", KIND_DESC, qvec, k)
            assert got_ids == [ids[r] for r in expected_rows]
            np.testing.assert_allclose(got_scores, expected_scores, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        k=st.one_of(st.none(), st.integers(min_value=1, max_value=70)),
        seed=st.integers(min_value=0, max_value=2**16),
        duplicate_every=st.sampled_from([0, 2, 3]),
    )
    def test_parity_property(self, n, k, seed, duplicate_every):
        rng = np.random.default_rng(seed)
        vectors = unit_vectors(rng, n, duplicate_every=duplicate_every)
        ids = list(range(n))
        index = build_index(ids, vectors)
        qvec = unit_vectors(rng, 1)[0]
        expected_rows, expected_scores = brute_force(qvec, vectors, k)
        got_ids, got_scores = index.search("u", KIND_DESC, qvec, k)
        assert got_ids == expected_rows
        np.testing.assert_allclose(got_scores, expected_scores, atol=1e-6)


def make_pes(rng, n, model):
    """PE records with real (stored) embeddings, some duplicated."""
    records = []
    for i in range(n):
        description = f"processing element variant {i % (n // 2 or 1)}"
        record = PERecord(
            pe_id=i + 1,
            pe_name=f"PE{i}",
            description=description,
            pe_code="eA==",
            pe_source=f"class PE{i}:\n    pass\n",
        )
        record.desc_embedding = model.embed_one(description, kind="text")
        record.code_embedding = model.embed_one(record.pe_source, kind="code")
        records.append(record)
    return records


def index_pes(records, user=1):
    """Populate an index the way the registry service would."""
    index = VectorIndex()
    for record in records:
        if record.desc_embedding is not None:
            index.add(user, KIND_DESC, record.pe_id, record.desc_embedding)
        if record.code_embedding is not None:
            index.add(user, KIND_CODE, record.pe_id, record.code_embedding)
    return index


class TestSearcherParity:
    """The full searchers agree between indexed and brute-force paths."""

    @pytest.fixture(scope="class")
    def semantic(self):
        return SemanticSearcher(UnixCoderCodeSearch())

    @pytest.fixture(scope="class")
    def code(self):
        return CodeSearcher(ReACCRetriever())

    @pytest.mark.parametrize("k", [1, 5, 20, None])
    def test_semantic_search_parity(self, semantic, k):
        rng = np.random.default_rng(3)
        records = make_pes(rng, 20, semantic.model)
        index = index_pes(records)
        brute = semantic.search("processing element variant 3", records, k=k)
        indexed = semantic.search(
            "processing element variant 3", records, k=k, index=index, user=1
        )
        assert [h.pe_id for h in indexed] == [h.pe_id for h in brute]
        for a, b in zip(indexed, brute):
            assert a.score == pytest.approx(b.score, abs=1e-6)

    @pytest.mark.parametrize("k", [1, 5, None])
    def test_code_search_parity(self, code, k):
        rng = np.random.default_rng(4)
        records = make_pes(rng, 15, code.model)
        index = index_pes(records)
        brute = code.search("class PE3:", records, k=k)
        indexed = code.search("class PE3:", records, k=k, index=index, user=1)
        assert [h.pe_id for h in indexed] == [h.pe_id for h in brute]
        for a, b in zip(indexed, brute):
            assert a.score == pytest.approx(b.score, abs=1e-6)
            assert a.continuation == b.continuation

    def test_missing_embedding_falls_back_and_caches_on_record(self, semantic):
        """An unindexed record makes the candidate set disagree with the
        shard: the query serves brute force (still correct), the
        fallback vector is cached on the record (satellite fix), and the
        searcher never writes to the shared index."""
        rng = np.random.default_rng(5)
        records = make_pes(rng, 6, semantic.model)
        records[2].desc_embedding = None
        index = index_pes(records)  # indexes only the 5 embedded records
        hits = semantic.search("variant", records, index=index, user=1)
        assert len(hits) == 6
        assert records[2].desc_embedding is not None
        assert not index.contains(1, KIND_DESC, records[2].pe_id)

    def test_missing_embedding_cached_back_brute_force(self, semantic):
        rng = np.random.default_rng(6)
        records = make_pes(rng, 6, semantic.model)
        records[1].desc_embedding = None
        semantic.search("variant", records)
        assert records[1].desc_embedding is not None

    @pytest.mark.parametrize("k", [3, None])
    def test_subset_of_indexed_corpus_falls_back_to_brute(self, semantic, k):
        """A caller passing fewer records than the shard holds must get
        the same hits as the brute scan over that subset — never a
        global top-k post-filtered down."""
        rng = np.random.default_rng(8)
        records = make_pes(rng, 12, semantic.model)
        index = index_pes(records)
        subset = records[::2]
        brute = semantic.search("processing element variant 1", subset, k=k)
        indexed = semantic.search(
            "processing element variant 1", subset, k=k, index=index, user=1
        )
        assert [h.pe_id for h in indexed] == [h.pe_id for h in brute]
        if k is not None:
            assert len(indexed) == min(k, len(subset))

    def test_removed_record_never_resurrected_by_search(self, semantic):
        """The review's race: a search holding a stale snapshot must not
        re-add a concurrently removed record to the shard."""
        rng = np.random.default_rng(9)
        records = make_pes(rng, 6, semantic.model)
        index = index_pes(records)
        index.remove(1, KIND_DESC, records[3].pe_id)  # concurrent removal
        semantic.search("variant", records, index=index, user=1)  # stale list
        assert not index.contains(1, KIND_DESC, records[3].pe_id)
        assert index.size(1, KIND_DESC) == 5
