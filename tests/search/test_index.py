"""Unit tests for the incremental vector index (repro.search.index)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.search import KIND_CODE, KIND_DESC, EmbeddingLRU, VectorIndex


def unit(rng, dim=16):
    vec = rng.standard_normal(dim).astype(np.float32)
    return vec / np.linalg.norm(vec)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


class TestMutation:
    def test_add_then_search(self, rng):
        index = VectorIndex()
        vec = unit(rng)
        index.add("u", KIND_DESC, 1, vec)
        ids, scores = index.search("u", KIND_DESC, vec)
        assert ids == [1]
        assert scores[0] == pytest.approx(1.0, abs=1e-6)

    def test_add_same_id_updates_in_place(self, rng):
        index = VectorIndex()
        index.add("u", KIND_DESC, 1, unit(rng))
        replacement = unit(rng)
        index.add("u", KIND_DESC, 1, replacement)
        assert index.size("u", KIND_DESC) == 1
        ids, scores = index.search("u", KIND_DESC, replacement)
        assert ids == [1] and scores[0] == pytest.approx(1.0, abs=1e-6)

    def test_remove_drops_id(self, rng):
        index = VectorIndex()
        q = unit(rng)
        index.add("u", KIND_DESC, 1, unit(rng))
        index.add("u", KIND_DESC, 2, unit(rng))
        assert index.remove("u", KIND_DESC, 1)
        ids, _ = index.search("u", KIND_DESC, q)
        assert ids == [2]
        assert index.size("u", KIND_DESC) == 1

    def test_remove_missing_is_false(self):
        index = VectorIndex()
        assert not index.remove("u", KIND_DESC, 99)
        assert not index.remove("nobody", KIND_DESC, 1)

    def test_remove_everywhere(self, rng):
        index = VectorIndex()
        index.add("u", KIND_DESC, 5, unit(rng))
        index.add("u", KIND_CODE, 5, unit(rng))
        index.add("v", KIND_DESC, 5, unit(rng))
        index.remove_everywhere("u", 5)
        assert index.size("u", KIND_DESC) == 0
        assert index.size("u", KIND_CODE) == 0
        assert index.size("v", KIND_DESC) == 1

    def test_growth_beyond_initial_capacity(self, rng):
        index = VectorIndex()
        for rid in range(100):
            index.add("u", KIND_DESC, rid, unit(rng))
        assert index.size("u", KIND_DESC) == 100
        assert index.ids("u", KIND_DESC) == list(range(100))

    def test_removal_preserves_insertion_order(self, rng):
        index = VectorIndex()
        for rid in range(200):
            index.add("u", KIND_DESC, rid, unit(rng))
        for rid in range(0, 200, 2):
            index.remove("u", KIND_DESC, rid)
        assert index.ids("u", KIND_DESC) == list(range(1, 200, 2))
        assert index.stats()["u/desc"]["live"] == 100

    def test_clear_user(self, rng):
        index = VectorIndex()
        index.add("u", KIND_DESC, 1, unit(rng))
        index.add("v", KIND_DESC, 2, unit(rng))
        index.clear("u")
        assert index.size("u", KIND_DESC) == 0
        assert index.size("v", KIND_DESC) == 1

    def test_shards_isolated_per_user_and_kind(self, rng):
        index = VectorIndex()
        q = unit(rng)
        index.add("u", KIND_DESC, 1, q)
        other_user_ids, other_user_scores = index.search("v", KIND_DESC, q)
        assert other_user_ids == [] and other_user_scores.size == 0
        other_kind_ids, other_kind_scores = index.search("u", KIND_CODE, q)
        assert other_kind_ids == [] and other_kind_scores.size == 0

    def test_dimension_mismatch_rejected(self, rng):
        index = VectorIndex()
        index.add("u", KIND_DESC, 1, unit(rng, dim=8))
        with pytest.raises(ValidationError):
            index.add("u", KIND_DESC, 2, unit(rng, dim=16))

    def test_non_unit_vectors_stored_verbatim(self, rng):
        """Raw dot-product semantics, exactly like the brute-force scan —
        the index must never renormalize caller-supplied vectors."""
        index = VectorIndex()
        vec = unit(rng)
        index.add("u", KIND_DESC, 1, vec * 42.0)
        _, scores = index.search("u", KIND_DESC, vec)
        assert scores[0] == pytest.approx(42.0, abs=1e-3)


class TestAddMany:
    """Bulk shard construction (the attach-time fast path)."""

    def test_bulk_matches_incremental(self, rng):
        vectors = np.stack([unit(rng) for _ in range(20)])
        ids = list(range(1, 21))
        bulk, incremental = VectorIndex(), VectorIndex()
        bulk.add_many("u", KIND_DESC, ids, vectors)
        for rid, vec in zip(ids, vectors):
            incremental.add("u", KIND_DESC, rid, vec)
        query = unit(rng)
        got = bulk.search("u", KIND_DESC, query, k=5)
        want = incremental.search("u", KIND_DESC, query, k=5)
        assert got[0] == want[0]
        np.testing.assert_array_equal(got[1], want[1])
        assert bulk.ids("u", KIND_DESC) == ids

    def test_unsorted_ids_fall_back_to_incremental_path(self, rng):
        vectors = np.stack([unit(rng) for _ in range(4)])
        index = VectorIndex()
        index.add_many("u", KIND_DESC, [4, 2, 9, 1], vectors)
        assert index.ids("u", KIND_DESC) == [1, 2, 4, 9]

    def test_bulk_into_existing_shard_merges(self, rng):
        index = VectorIndex()
        index.add("u", KIND_DESC, 5, unit(rng))
        index.add_many(
            "u", KIND_DESC, [1, 9], np.stack([unit(rng), unit(rng)])
        )
        assert index.ids("u", KIND_DESC) == [1, 5, 9]

    def test_incremental_adds_after_bulk(self, rng):
        index = VectorIndex()
        index.add_many(
            "u", KIND_DESC, [1, 2, 3], np.stack([unit(rng)] * 3)
        )
        index.add("u", KIND_DESC, 2, unit(rng))  # in-place update
        index.add("u", KIND_DESC, 10, unit(rng))  # append past capacity
        assert index.ids("u", KIND_DESC) == [1, 2, 3, 10]

    def test_length_mismatch_rejected(self, rng):
        index = VectorIndex()
        with pytest.raises(ValidationError, match="ids"):
            index.add_many("u", KIND_DESC, [1, 2], np.stack([unit(rng)]))

    def test_empty_batch_is_noop(self):
        index = VectorIndex()
        index.add_many("u", KIND_DESC, [], np.empty((0, 8), dtype=np.float32))
        assert index.size("u", KIND_DESC) == 0


class TestSearch:
    def test_k_validation(self, rng):
        index = VectorIndex()
        index.add("u", KIND_DESC, 1, unit(rng))
        with pytest.raises(ValidationError):
            index.search("u", KIND_DESC, unit(rng), k=0)

    def test_empty_index(self, rng):
        index = VectorIndex()
        ids, scores = index.search("u", KIND_DESC, unit(rng), k=5)
        assert ids == [] and scores.shape == (0,)

    def test_k_larger_than_corpus(self, rng):
        index = VectorIndex()
        for rid in range(3):
            index.add("u", KIND_DESC, rid, unit(rng))
        ids, _ = index.search("u", KIND_DESC, unit(rng), k=50)
        assert len(ids) == 3

    def test_scores_descending(self, rng):
        index = VectorIndex()
        for rid in range(50):
            index.add("u", KIND_DESC, rid, unit(rng))
        _, scores = index.search("u", KIND_DESC, unit(rng), k=10)
        assert all(scores[i] >= scores[i + 1] for i in range(len(scores) - 1))

    def test_batch_matches_single_queries(self, rng):
        index = VectorIndex()
        for rid in range(40):
            index.add("u", KIND_DESC, rid, unit(rng))
        queries = np.stack([unit(rng) for _ in range(5)])
        batched = index.search_batch("u", KIND_DESC, queries, k=7)
        for q, (ids, scores) in zip(queries, batched):
            solo_ids, solo_scores = index.search("u", KIND_DESC, q, k=7)
            assert ids == solo_ids
            np.testing.assert_allclose(scores, solo_scores, atol=1e-6)

    def test_batch_on_empty_index(self, rng):
        index = VectorIndex()
        out = index.search_batch("u", KIND_DESC, np.stack([unit(rng)] * 3), k=2)
        assert [ids for ids, _ in out] == [[], [], []]


class TestSearchAmong:
    """The membership-verified fast path the searchers use."""

    def _index(self, rng, n=10):
        index = VectorIndex()
        vectors = [unit(rng) for _ in range(n)]
        for rid, vec in enumerate(vectors):
            index.add("u", KIND_DESC, rid, vec)
        return index, vectors

    def test_exact_membership_matches_plain_search(self, rng):
        index, _ = self._index(rng)
        q = unit(rng)
        result = index.search_among("u", KIND_DESC, list(range(10)), q, k=4)
        assert result is not None
        ids, scores = result
        plain_ids, plain_scores = index.search("u", KIND_DESC, q, k=4)
        assert ids == plain_ids
        np.testing.assert_array_equal(scores, plain_scores)

    def test_candidate_order_is_irrelevant(self, rng):
        index, _ = self._index(rng)
        q = unit(rng)
        shuffled = list(rng.permutation(10))
        assert index.search_among("u", KIND_DESC, shuffled, q) is not None

    def test_subset_returns_none(self, rng):
        index, _ = self._index(rng)
        assert index.search_among("u", KIND_DESC, [0, 1, 2], unit(rng)) is None

    def test_superset_returns_none(self, rng):
        index, _ = self._index(rng)
        rids = list(range(11))  # one record the shard never saw
        assert index.search_among("u", KIND_DESC, rids, unit(rng)) is None

    def test_same_size_different_ids_returns_none(self, rng):
        index, _ = self._index(rng)
        rids = list(range(1, 10)) + [99]
        assert index.search_among("u", KIND_DESC, rids, unit(rng)) is None

    def test_missing_shard_returns_none(self, rng):
        index = VectorIndex()
        assert index.search_among("u", KIND_DESC, [1], unit(rng)) is None

    def test_stale_after_remove_returns_none(self, rng):
        index, _ = self._index(rng)
        index.remove("u", KIND_DESC, 3)
        # caller's snapshot still lists id 3 -> must fall back, never
        # resurrect or silently drop the removed record
        assert index.search_among("u", KIND_DESC, list(range(10)), unit(rng)) is None


class TestQueryCache:
    def test_lru_hit_skips_compute(self):
        cache = EmbeddingLRU(maxsize=2)
        calls = []

        def compute():
            calls.append(1)
            return np.ones(4, dtype=np.float32)

        cache.get_or_compute("a", compute)
        cache.get_or_compute("a", compute)
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_evicts_oldest(self):
        cache = EmbeddingLRU(maxsize=2)
        make = lambda: np.zeros(2, dtype=np.float32)
        cache.get_or_compute("a", make)
        cache.get_or_compute("b", make)
        cache.get_or_compute("a", make)  # refresh a
        cache.get_or_compute("c", make)  # evicts b
        assert len(cache) == 2
        misses = cache.misses
        cache.get_or_compute("b", make)
        assert cache.misses == misses + 1

    def test_bad_maxsize_rejected(self):
        with pytest.raises(ValidationError):
            EmbeddingLRU(maxsize=0)

    def test_index_cached_query_vector(self):
        index = VectorIndex()
        vec = index.cached_query_vector("key", lambda: np.ones(3, dtype=np.float32))
        again = index.cached_query_vector(
            "key", lambda: pytest.fail("must not recompute")
        )
        np.testing.assert_array_equal(vec, again)
