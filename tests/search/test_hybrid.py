"""Hybrid search: RRF fusion properties and the v1 endpoint behaviour.

``rrf_fuse`` is the deterministic core — a pure function of the leg
orders — and the endpoint half pins what the serving layer builds on
top: bitwise-stable responses, cursor pagination that tiles the fused
ranking, scoped cursors and the legacy route's rejection of the new
query type.
"""

import random

import pytest

from repro.net.transport import Request
from repro.search.fusion import RRF_K, rrf_fuse
from repro.server import LaminarServer


class TestRRFFuse:
    def test_formula_and_order(self):
        fused = rrf_fuse([["a", "b", "c"], ["b", "a"]])
        by_key = {key: (score, ranks) for key, score, ranks in fused}
        assert by_key["a"] == (1 / (RRF_K + 1) + 1 / (RRF_K + 2), (1, 2))
        assert by_key["b"] == (1 / (RRF_K + 2) + 1 / (RRF_K + 1), (2, 1))
        assert by_key["c"] == (1 / (RRF_K + 3), (3, None))
        # a and b tie exactly (same ranks, swapped legs): key breaks it
        assert [key for key, _, _ in fused] == ["a", "b", "c"]

    def test_single_leg_preserves_order(self):
        keys = ["x", "m", "a", "z"]
        fused = rrf_fuse([keys])
        assert [key for key, _, _ in fused] == keys

    def test_absent_leg_contributes_nothing(self):
        fused = rrf_fuse([["a"], []])
        assert fused == [("a", 1 / (RRF_K + 1), (1, None))]

    def test_duplicate_key_in_one_leg_raises(self):
        with pytest.raises(ValueError, match="more than once"):
            rrf_fuse([["a", "b", "a"], ["c"]])

    def test_nonpositive_k_raises(self):
        with pytest.raises(ValueError, match="must be positive"):
            rrf_fuse([["a"]], k=0)

    def test_deterministic_across_repeats(self):
        rng = random.Random(2026)
        keys = [("pe", i) for i in range(40)] + [
            ("workflow", i) for i in range(40)
        ]
        for _ in range(25):
            leg_a = rng.sample(keys, rng.randrange(0, len(keys)))
            leg_b = rng.sample(keys, rng.randrange(0, len(keys)))
            first = rrf_fuse([leg_a, leg_b])
            second = rrf_fuse([list(leg_a), list(leg_b)])
            assert first == second  # bitwise: floats compare equal
            scores = [score for _, score, _ in first]
            assert scores == sorted(scores, reverse=True)

    def test_ties_always_break_on_key(self):
        # every key holds rank 1 in exactly one leg: all scores equal
        fused = rrf_fuse([["c"], ["a"], ["b"]])
        assert [key for key, _, _ in fused] == ["a", "b", "c"]
        assert len({score for _, score, _ in fused}) == 1


DESCRIPTIONS = [
    ("primes", "find prime numbers in a stream"),
    ("sieve", "prime sieve of eratosthenes"),
    ("sorter", "sort integers ascending"),
    ("reverser", "reverse a list of strings"),
    ("counter", "count prime occurrences"),
    ("plotter", "plot the prime counting function"),
]


@pytest.fixture()
def app(fast_bundle):
    server = LaminarServer(models=fast_bundle)
    server.dispatch(
        Request("POST", "/auth/register", {"userName": "hy", "password": "pw"})
    )
    token = server.dispatch(
        Request("POST", "/auth/login", {"userName": "hy", "password": "pw"})
    ).body["token"]
    for name, description in DESCRIPTIONS:
        assert server.dispatch(
            Request(
                "POST",
                "/registry/hy/pe/add",
                {
                    "peName": name,
                    "peCode": f"def {name}(): pass",
                    "description": description,
                },
                token=token,
            )
        ).status == 201
        assert server.dispatch(
            Request(
                "POST",
                "/registry/hy/workflow/add",
                {
                    "entryPoint": f"{name}_flow",
                    "workflowCode": f"def {name}_flow(): pass",
                    "description": description,
                },
                token=token,
            )
        ).status == 201
    return server, token


def search(server, token, body):
    return server.dispatch(
        Request("POST", "/v1/registry/hy/search", dict(body), token=token)
    )


class TestHybridEndpoint:
    def test_envelope_and_hit_shape(self, app):
        server, token = app
        response = search(
            server, token, {"query": "prime", "queryType": "hybrid", "k": 5}
        )
        assert response.status == 200
        body = response.body
        assert body["queryType"] == "hybrid"
        assert body["searchKind"] == "hybrid"
        assert 0 < body["count"] <= 5
        for hit in body["hits"]:
            assert hit["kind"] in ("pe", "workflow")
            assert set(hit) >= {
                "id", "name", "description", "score",
                "textRank", "semanticRank", "textScore", "semanticScore",
            }
            # at least one leg ranked every fused hit
            assert hit["textRank"] is not None or hit["semanticRank"] is not None
        scores = [hit["score"] for hit in body["hits"]]
        assert scores == sorted(scores, reverse=True)

    def test_fuses_both_legs(self, app):
        server, token = app
        body = search(
            server, token, {"query": "prime", "queryType": "hybrid"}
        ).body
        text_ranked = [h for h in body["hits"] if h["textRank"] is not None]
        sem_ranked = [h for h in body["hits"] if h["semanticRank"] is not None]
        assert text_ranked and sem_ranked

    def test_repeat_is_bitwise_identical(self, app):
        server, token = app
        request = {"query": "prime numbers", "queryType": "hybrid", "k": 8}
        first = search(server, token, request).body
        second = search(server, token, request).body
        assert first == second

    def test_pagination_tiles_the_ranking(self, app):
        server, token = app
        request = {"query": "prime", "queryType": "hybrid", "k": 6}
        full = search(server, token, request).body["hits"]
        assert len(full) == 6
        paged, cursor = [], None
        for _ in range(10):
            body = search(
                server, token, {**request, "limit": 2, "cursor": cursor}
            ).body
            paged.extend(body["hits"])
            cursor = body["nextCursor"]
            if cursor is None:
                break
        assert paged == full

    def test_cursor_is_scoped_to_the_ranking(self, app):
        server, token = app
        request = {"query": "prime", "queryType": "hybrid", "k": 6, "limit": 2}
        cursor = search(server, token, request).body["nextCursor"]
        assert cursor is not None
        replayed = search(
            server,
            token,
            {"query": "prime", "queryType": "text", "k": 6,
             "limit": 2, "cursor": cursor},
        )
        assert replayed.status == 400
        assert "invalid cursor" in replayed.body["message"]

    def test_kind_filter_applies_to_both_legs(self, app):
        server, token = app
        body = search(
            server, token,
            {"query": "prime", "queryType": "hybrid", "kind": "workflow"},
        ).body
        assert body["hits"]
        assert all(hit["kind"] == "workflow" for hit in body["hits"])

    def test_legacy_route_rejects_hybrid(self, app):
        server, token = app
        response = server.dispatch(
            Request(
                "GET",
                "/registry/hy/search/prime/type/both",
                {"queryType": "hybrid"},
                token=token,
            )
        )
        assert response.status == 400
        assert "unknown query type" in response.body["message"]
