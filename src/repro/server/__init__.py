"""The Laminar Server (paper §3.2).

Layered design: Controller (request handling + the Laminar API of
Table 3), Service (business logic), Model (entities), DAO (storage).
Data exchange is JSON; error handling renders every
:class:`~repro.errors.ReproError` into the standardized envelope of
§3.2.5.

:class:`LaminarServer` assembles the layers.  It is transport-agnostic:
dispatch a :class:`~repro.net.transport.Request` directly (in-process,
possibly latency-shaped), or mount it behind the stdlib HTTP adapter in
:mod:`repro.server.http` for a real socket deployment.

Serving architecture (the search hot path)
==========================================

A ``/registry/{user}/search`` request flows through four stages, each
scaling with the *result*, not the corpus::

    request ──> RegistryController.search
                  │  parse queryType/k, authenticate
                  ▼
            SearchBatcher.submit          (repro.search.serving)
                  │  coalesce concurrent same-(user, kind) requests
                  │  over a short window; lone requests pass straight
                  │  through with no added latency
                  ▼
            VectorIndex.search_among_many (repro.search.index)
                  │  one lock hold + one membership check per batch;
                  │  every query scored as its own (1, D) product, so
                  │  batched == single-shot bitwise
                  ▼
            RegistryService.resolve_pes / resolve_workflows
                     one batched DAO fetch hydrates the union of all
                     top-k winners; ownership re-checked per record

The owned-id projection the membership check needs is fetched lazily,
once per batch.  Any shard/owned-set disagreement (unindexed records,
concurrent mutation) drops that batch to the exact brute-force scan —
results are then still bitwise identical to the historical behaviour.
Text queries (``queryType=text``) skip the vector index entirely and
rank in the DAO's inverted text index (SQLite FTS5 / the in-memory
postings mirror): an owner-joined BM25 top-k returns ``k`` ids and the
service hydrates only those records.  Hybrid queries
(``queryType=hybrid``) run the text and semantic legs to a fused depth
and merge them with deterministic reciprocal-rank fusion
(:mod:`repro.search.fusion`).  Only the legacy Table-3 route still
scores candidates in Python — through the owner-joined ``LIKE``
parity adapter that keeps its output byte-identical.

Cold start: :meth:`~repro.registry.service.RegistryService.attach_index`
replays each persisted base slab through its append-only delta journal
and loads every shard whose replayed chain tip equals the per-shard
mutation stamp the DAO keeps — O(delta) work, zero record
deserialization.  Writes journal their row batches inline (folded back
into the base slab past a chain-length/bytes bound), so a warm restart
costs the replay of what actually changed; only shards that are stale
(a write the journal never saw — e.g. a foreign process's), torn, or
corrupt rebuild, each from its own owner's records.  One tenant's
write never invalidates another tenant's slab.

Storage schema versions
=======================

The SQLite DAO steps older files up on open (``PRAGMA user_version``;
see ``SqliteDAO._migrate``):

===  =================================================================
v    Added
===  =================================================================
v1   Normalized ownership/association join tables (``pe_owners``,
     ``workflow_owners``, ``workflow_pes``), backfilled from the
     legacy JSON columns.
v2   Slab snapshot persistence: ``index_shards`` plus
     ``registry_meta`` (the global mutation counter).
v3   Typed write envelope: per-record ``revision`` columns and the
     ``write_receipts`` / ``ivf_states`` tables.
v4   ``created_at`` on receipts (TTL sweeps; pre-v4 rows stamp 0, the
     epoch, so an age sweep retires them first).
v5   FTS5 text side tables backfilled from the record tables, and
     ``hnsw_states`` for the HNSW graph snapshot.
v6   Incremental persistence: per-shard ``shard_stamps`` and the
     append-only ``index_deltas`` journal.  A shard is fresh iff its
     replayed chain tip *equals* its stamp; chains must be strictly
     counter-increasing (a non-increasing chain is a crash artifact
     and discards only that shard); compaction folds a chain into its
     base slab at the same stamp and deletes exactly the folded
     counters, so a crash anywhere leaves tip <= stamp — stale at
     worst, never wrongly fresh.  ``ivf_states`` / ``hnsw_states``
     rows carry the same per-shard stamps.  A pre-v6 snapshot seeds
     the stamps only when provably current (uniform counter equal to
     the live mutation counter); otherwise the first attach pays one
     full rebuild, which then stamps every shard.
===  =================================================================

Scatter/gather shard serving
============================

``LaminarServer(scatter_shards=N)`` (CLI: ``repro serve --shards N``)
adds a ``scatter`` backend (:mod:`repro.search.scatter`) that spreads
tenants across N shard workers; ``shard_transports=[...]`` appends
workers living in *other processes* behind the
:class:`~repro.server.shardnode.ShardNode` JSON protocol (mount one
with :func:`repro.server.http.serve_http` or reach it in-process for
tests).  The design commitments:

* **Whole-slab placement.** Each (user, kind) slab lives entirely on
  ``sha1(f"{user!r}/{kind}") % N`` — never row-partitioned, because
  BLAS products over sub-slabs differ from the full-slab product in
  the last ulp and would break bitwise reproducibility.  Fan-out
  parallelism comes from different tenants resolving to different
  workers, each with its own index and lock.
* **Bitwise-identical gather.** Workers return (id, float32 score)
  pairs — lossless through JSON — and the gather merge re-ranks with
  the same descending-score / ascending-id order the single-process
  index uses, so ``backend=scatter`` responses equal ``backend=exact``
  byte for byte.
* **Degrade, never fail.** An unreachable worker (bounded retry with
  backoff, then a consecutive-failure circuit breaker) makes the
  affected query return "no answer", which the serving path above
  already treats as the exact brute-force fallback — the request
  succeeds with correct results.  A *write* that cannot reach its
  worker marks the shard dirty, and dirty shards stop serving until
  resynced: fan-out can lose speed, never a write.
* **Mirrored writes.** The registry service fans every index mutation
  to the scatter backend (``attach_mirror``), bulk-loading existing
  slabs at attach time, so the shard fleet tracks the registry with no
  separate replication channel.

Front end: :func:`repro.server.http.serve_http` runs an **asyncio
server core** — one coroutine per connection on a background event
loop, with the blocking dispatch hopping to a bounded thread pool that
feeds the ``SearchBatcher`` coalescing window.  Thousands of idle
keep-alive connections cost one task each (not one OS thread), client
disconnects are counted instead of raising, and response bytes are
identical to the previous thread-per-connection front end.

API reference — the versioned v1 surface
========================================

The legacy Table-3 routes remain installed verbatim (thin adapters over
the shared search core, byte-identical responses).  New clients should
use the ``/v1/`` table, which validates once at the edge
(:mod:`repro.server.schema`): **unknown fields are rejected with 400**,
every default is explicit, and all listings cursor-paginate.

=======  =========================================  =======================
Method   Path                                       Body fields
=======  =========================================  =======================
GET      ``/v1/users``                              ``limit``, ``cursor``
GET      ``/v1/backends``                           —
GET      ``/v1/registry/{user}/pes``                ``limit``, ``cursor``
GET      ``/v1/registry/{user}/pes/{name}``         — (``If-None-Match``)
GET      ``/v1/registry/{user}/workflows``          ``limit``, ``cursor``
GET      ``/v1/registry/{user}/workflows/{name}``   — (``If-None-Match``)
GET      ``/v1/registry/{user}/workflows/{id}/pes`` ``limit``, ``cursor``
POST     ``/v1/registry/{user}/search``             see ``SearchRequest``
PUT      ``/v1/registry/{user}/pes/{name}``         see ``RegisterPERequest``
PUT      ``/v1/registry/{user}/workflows/{name}``   see ``RegisterWorkflowRequest``
POST     ``/v1/registry/{user}/pes:bulk``           ``items``, ``ifVersion``,
                                                    ``idempotencyKey``
POST     ``/v1/registry/{user}/workflows:bulk``     ``items``, ``ifVersion``,
                                                    ``idempotencyKey``
POST     ``/v1/registry/{user}/ingest``             ``path`` | ``archive``,
                                                    ``batchSize``,
                                                    ``maxFileBytes``,
                                                    ``maxChunkLines``
DELETE   ``/v1/registry/{user}/pes/{name}``         ``ifVersion``,
                                                    ``idempotencyKey``
DELETE   ``/v1/registry/{user}/workflows/{name}``   ``ifVersion``,
                                                    ``idempotencyKey``
GET      ``/v1/jobs``                               ``state``, ``limit``,
                                                    ``cursor``
GET      ``/v1/jobs/{id}``                          —
POST     ``/v1/jobs/{id}:cancel``                   —
=======  =========================================  =======================

**Conditional reads**: the single-record GETs return the item inside a
``{"apiVersion": "v1", "kind": ..., "item": ...}`` envelope plus a
strong ``ETag`` header derived from the record's id and ``revision``
(``"pe-{id}-{rev}"`` / ``"workflow-{id}-{rev}"`` — the same counter
``ifVersion`` pins on writes).  A request whose ``If-None-Match``
validator matches (``*``, weak ``W/…`` prefixes and comma lists all
honoured per RFC 9110) is answered ``304 Not Modified`` with the ETag
and an **empty body** — pollers tracking a record pay headers only
until the revision actually moves.

**Listings** return the ``Page`` envelope::

    {"apiVersion": "v1", "count": N, "limit": L,
     "items": [...], "nextCursor": "v1.…" | null}

Items order by **ascending record id** and ``cursor`` is an opaque,
*scoped* resume token: replaying it against a different listing is a
400, and because concurrent inserts only ever receive higher ids a
cursor walk never skips or duplicates a pre-existing record.  PE and
workflow listing items carry the record's current ``revision`` (the
same counter ``ifVersion`` pins on writes), so readers can hand a
fresh precondition straight back to a conditional update.

**Search** (``POST /v1/registry/{user}/search``) accepts the
``SearchRequest`` envelope — defaults shown::

    {"query":  <required str>,
     "kind":   "both",        # pe | workflow | both
     "queryType": "text",     # text | semantic | code | hybrid
     "backend": "exact",      # any name from GET /v1/backends
     "k": null,               # top-k cap at ranking time
     "limit": null,           # page size over the ranked hits
     "cursor": null,          # resume token from a previous page
     "queryEmbedding": null}  # optional client-side query vector

and returns the ``SearchResponse`` envelope::

    {"apiVersion": "v1", "query": …, "kind": …, "queryType": …,
     "backend": …, "searchKind": "text"|"semantic"|"code"|"hybrid",
     "k": …, "count": N, "hits": [...], "nextCursor": …}

The ``queryType`` × ``backend`` matrix:

=============  ======================================================
``queryType``  ranking path
=============  ======================================================
``text``       BM25 top-k in the DAO's inverted text index (FTS5 /
               postings mirror); ``backend`` is irrelevant — no
               vector shard is touched.  ``kind=pe`` preserves the
               historical quirk of serving through semantic search.
``semantic``   description embeddings ranked by the selected
               ``backend`` through the micro-batcher.
``code``       code embeddings, PEs only, same backend plumbing.
``hybrid``     BM25 text leg (above) + semantic leg (ranked by the
               selected ``backend``), fused with deterministic RRF;
               hits carry the fused score plus per-leg ranks/scores.
=============  ======================================================

``backend`` selects the ranking engine by name behind the
:class:`~repro.search.backend.IndexBackend` protocol: ``"exact"`` is
the reference BLAS scan; ``"ivf"`` the IVF-flat approximate engine
(probe ``nprobe`` inverted lists, exact re-rank; degenerates to the
exact scan bitwise when the shard is small, ``k`` is unbounded or
``nprobe >= nlist``); ``"hnsw"`` the small-world graph engine (entry
layer routes, precomputed exact ``m0``-NN adjacency expands, every
candidate exactly scored — same degenerate-to-exact safety net).  All
serve through the same micro-batcher, membership checks and
brute-force fallback — an approximate backend can lose recall, never
correctness or tenant isolation.

**Writes** complete the versioned surface.  ``PUT`` registers under the
path name (the PE name / the workflow entry point) with true *upsert*
semantics: identical content is the §3.1 dedup no-op, while changed
content supersedes the caller's binding — the new content registers
(dedup-or-insert) and the caller's stake in the old record is released
(other tenants' view of a shared record is never rewritten).  The
legacy add routes keep the historical register-only behaviour.
``DELETE`` removes by the same key, and ``POST …/pes:bulk`` /
``POST …/workflows:bulk`` land a batch with one DAO ``executemany``
transaction, one index ``add_many`` per shard kind and one shard
persist.  All write routes — and the
legacy Table-3 register/remove routes, which are thin byte-identical
adapters — share one serialized core
(:func:`repro.server.v1_write.execute_write`).
Every write returns the ``WriteResponse`` envelope::

    {"apiVersion": "v1", "op": "register"|"delete"|"bulk-register",
     "kind": "pe"|"workflow", "count": N,
     "items": [{...record..., "revision": r, "created": bool}],
     "removed": bool, "registryVersion": m, "idempotencyKey": k|null}

*Idempotency*: a write carrying ``idempotencyKey`` (body field, or the
HTTP ``Idempotency-Key`` header — carried as request metadata so strict
read envelopes never see it) stores its response; replaying the same
key + identical request returns the stored envelope verbatim
(``Idempotent-Replay: true`` header, registry mutation counter
untouched, no model work re-paid), while the same key fronting a
different request is a 409.  Only successful responses are recorded —
errors stay retryable.

*Conditional writes*: ``ifVersion`` pins the target record's
``revision`` (0 = create-only; every update bumps it) — or, for bulk,
the registry mutation counter — and a mismatch is a 412 with the
registry untouched.

Write error envelope (all carry the §3.2.5 JSON shape):

=====  =====================  =============================================
Code   ``error``              When
=====  =====================  =============================================
400    ValidationError        malformed envelope, unknown fields, body
                              name disagreeing with the path
401    AuthenticationError    missing/foreign token
404    NotFoundError          delete target absent (or not owned)
405    MethodNotAllowed       path exists under other methods (the
                              response carries an ``Allow`` header)
409    IdempotencyConflict    key replayed with a different request
412    PreconditionFailed     ``ifVersion`` mismatch
=====  =====================  =============================================

The envelope shape has exactly two producers — a raised
:class:`~repro.errors.ReproError` rendered by the dispatch layer, and
:func:`repro.errors.error_envelope` for transport-level responses that
happen before a dispatch context exists.  Raw ``{"error": ...}`` dict
literals anywhere under ``repro/server`` are a lint failure (rule
RPR006; see the invariant table in :mod:`repro.analysis`).

Background jobs and repository ingestion
========================================

Long-running work runs behind a generic background-job subsystem
(:mod:`repro.jobs`): the server owns one :class:`~repro.jobs.JobManager`
— a bounded daemon worker pool over a FIFO queue — and any controller
can ``submit`` a callable and hand the client a job id instead of
blocking the request.  Job lifecycle is
``queued → running → succeeded | failed | cancelled`` with
**monotonic** progress counters (a snapshot may lag, never regress),
structured §3.2.5 error JSON on failure, cooperative cancellation
(workers observe ``cancel`` at their next
:meth:`~repro.jobs.JobContext.checkpoint`), and TTL + count-capped
retention of terminal jobs.  The ``/v1/jobs`` routes are
**owner-scoped** with no ``{user}`` path segment: the principal comes
from the token alone and foreign job ids answer 404, so job existence
never leaks across tenants.

``GET /v1/jobs/{id}`` returns ``{"apiVersion": "v1", "job": {...}}``
where the snapshot carries ``jobId``, ``kind``, ``owner``, ``state``,
``createdAt`` / ``startedAt`` / ``finishedAt``, ``progress``,
``params``, ``result``, ``error`` and ``cancelRequested``.  The
listing accepts ``state`` and ``limit`` filters; ``:cancel`` is
idempotent and a no-op on terminal jobs.

The first job-backed workflow is **repository ingestion**
(``POST /v1/registry/{user}/ingest`` → 202 + job id, body also echoed
under ``jobId``).  The pipeline (:mod:`repro.ingest`) walks the tree
(or a base64 tar.gz upload, extracted with traversal/symlink/zip-bomb
guards), chunks every ``.py`` file with a pure-Python AST chunker into
function/class records named ``{path}::{qualname}``, and lands them
through the same serialized bulk-write core as ``pes:bulk`` in
**bounded batches** — each batch takes the write lock only for its
single bulk insert, so search stays live (and consistent) while a
repository streams in; shard persistence and journal compaction are
deferred to one fold at the end of the job.  Progress counters
(``filesDiscovered``, ``filesSkipped``, ``chunksDiscovered``,
``chunksEmbedded``, ``chunksInserted``, ``chunksDeduped``) make a
mid-flight job legible, and cancellation between batches keeps every
already-landed batch durable.  CLI: ``repro ingest`` (packs the tree
client-side when pointed at a remote server) and ``repro jobs``.
"""

from repro.server.api import Router
from repro.server.app import LaminarServer

__all__ = ["LaminarServer", "Router"]
