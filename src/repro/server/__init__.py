"""The Laminar Server (paper §3.2).

Layered design: Controller (request handling + the Laminar API of
Table 3), Service (business logic), Model (entities), DAO (storage).
Data exchange is JSON; error handling renders every
:class:`~repro.errors.ReproError` into the standardized envelope of
§3.2.5.

:class:`LaminarServer` assembles the layers.  It is transport-agnostic:
dispatch a :class:`~repro.net.transport.Request` directly (in-process,
possibly latency-shaped), or mount it behind the stdlib HTTP adapter in
:mod:`repro.server.http` for a real socket deployment.
"""

from repro.server.api import Router
from repro.server.app import LaminarServer

__all__ = ["LaminarServer", "Router"]
