"""The Laminar Server (paper §3.2).

Layered design: Controller (request handling + the Laminar API of
Table 3), Service (business logic), Model (entities), DAO (storage).
Data exchange is JSON; error handling renders every
:class:`~repro.errors.ReproError` into the standardized envelope of
§3.2.5.

:class:`LaminarServer` assembles the layers.  It is transport-agnostic:
dispatch a :class:`~repro.net.transport.Request` directly (in-process,
possibly latency-shaped), or mount it behind the stdlib HTTP adapter in
:mod:`repro.server.http` for a real socket deployment.

Serving architecture (the search hot path)
==========================================

A ``/registry/{user}/search`` request flows through four stages, each
scaling with the *result*, not the corpus::

    request ──> RegistryController.search
                  │  parse queryType/k, authenticate
                  ▼
            SearchBatcher.submit          (repro.search.serving)
                  │  coalesce concurrent same-(user, kind) requests
                  │  over a short window; lone requests pass straight
                  │  through with no added latency
                  ▼
            VectorIndex.search_among_many (repro.search.index)
                  │  one lock hold + one membership check per batch;
                  │  every query scored as its own (1, D) product, so
                  │  batched == single-shot bitwise
                  ▼
            RegistryService.resolve_pes / resolve_workflows
                     one batched DAO fetch hydrates the union of all
                     top-k winners; ownership re-checked per record

The owned-id projection the membership check needs is fetched lazily,
once per batch.  Any shard/owned-set disagreement (unindexed records,
concurrent mutation) drops that batch to the exact brute-force scan —
results are then still bitwise identical to the historical behaviour.
Text queries (``queryType=text``) skip the index and score only the
SQL-filtered candidate rows (owner-joined ``LIKE``), never the user's
full record list.

Cold start: :meth:`~repro.registry.service.RegistryService.attach_index`
loads persisted float32 slabs straight from the DAO when their stamped
mutation counter still matches the registry, skipping the O(corpus)
``all_pes()`` rebuild entirely; after any rebuild the fresh slabs are
persisted back, so a restarted deployment pays the pass at most once
per mutation epoch.
"""

from repro.server.api import Router
from repro.server.app import LaminarServer

__all__ = ["LaminarServer", "Router"]
