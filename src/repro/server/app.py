"""LaminarServer — assembling the layered architecture (paper §3.2).

The server wires Controller -> Service -> DAO together, owns the token
store, and converts every :class:`~repro.errors.ReproError` raised
anywhere below into the standardized JSON error envelope of §3.2.5.
"""

from __future__ import annotations

import secrets
import threading
import traceback
import urllib.parse

from repro.engine import ExecutionEngine
from repro.errors import MethodNotAllowedError, ReproError, error_envelope
from repro.jobs import JobManager
from repro.ml.bundle import ModelBundle
from repro.net.transport import Request, Response
from repro.registry import InMemoryDAO, RegistryDAO, RegistryService
from repro.search import CodeSearcher, SemanticSearcher
from repro.search.backend import build_backends
from repro.search.serving import SearchBatcher
from repro.server.api import Router
from repro.server.controllers import (
    EngineController,
    ExecutionController,
    PEController,
    RegistryController,
    UserController,
    WorkflowController,
)
from repro.server.v1 import V1Controller
from repro.server.v1_write import V1WriteController


class LaminarServer:
    """The coordinating element of the framework.

    Parameters
    ----------
    dao:
        Registry storage backend (defaults to in-memory).
    engine:
        The Execution Engine serving ``/execution/{user}/run``.
    models:
        The model bundle used for server-side summarization/embedding
        fallbacks and search.
    search_batch_window:
        How long (seconds) a search request leading a micro-batch waits
        for concurrent same-shard requests to join before flushing; 0
        disables coalescing (every request flushes alone).  Lone
        requests never wait regardless.
    search_batch_max:
        Size cap per micro-batch; a full batch flushes immediately.
    backend_options:
        Per-backend construction options, keyed by backend name (e.g.
        ``{"ivf": {"nprobe": 16}}``); see :mod:`repro.search.backend`.
    scatter_shards:
        When positive, add a ``scatter`` backend fanning queries over
        this many in-process shard workers (each with its own index and
        lock — see :mod:`repro.search.scatter`), mirrored from the exact
        index on every registry mutation.
    shard_transports:
        Transports to remote shard nodes (``repro.server.shardnode``);
        each becomes a :class:`~repro.search.scatter.RemoteShardWorker`
        appended after the in-process workers.  Implies the scatter
        backend even when ``scatter_shards`` is 0.
    receipt_ttl:
        Seconds an idempotency receipt stays replayable; ``None`` (the
        default) keeps receipts forever.  Enforced opportunistically on
        keyed writes (no background sweeper).
    receipt_cap:
        Maximum finalized receipts retained (oldest dropped first);
        ``None`` means unbounded.
    job_workers:
        Background-job concurrency (ingests, future workflow runs); the
        pool is bounded so heavy jobs cannot starve the serving path.
    job_retention_ttl / job_retention_cap:
        How long / how many *terminal* job records stay readable on the
        ``/v1/jobs`` routes (live jobs are never pruned).
    """

    def __init__(
        self,
        dao: RegistryDAO | None = None,
        engine: ExecutionEngine | None = None,
        models: ModelBundle | None = None,
        search_batch_window: float = 0.003,
        search_batch_max: int = 16,
        backend_options: dict[str, dict] | None = None,
        scatter_shards: int = 0,
        shard_transports: list | None = None,
        receipt_ttl: float | None = None,
        receipt_cap: int | None = None,
        job_workers: int = 2,
        job_retention_ttl: float | None = 3600.0,
        job_retention_cap: int | None = 500,
    ) -> None:
        from repro.engine import EnginePool

        #: every registered index backend over one shared exact index;
        #: requests select by name (SearchRequest.backend), the exact
        #: entry is the reference the approximate engines re-rank from
        self.backends = build_backends(options=backend_options)
        #: per-(user, kind) embedding shards serving /registry/{user}/search;
        #: maintained by the registry service on every PE/workflow mutation
        self.index = self.backends["exact"]
        #: micro-batching dispatcher: concurrent same-shard searches are
        #: coalesced into one index pass (bitwise-identical results)
        self.batcher = SearchBatcher(
            window=search_batch_window, max_batch=search_batch_max
        )
        self.registry = RegistryService(dao or InMemoryDAO(), index=self.index)
        #: approximate companion backends restore their persisted
        #: training state (centroids + inverted lists stamped at the
        #: slab snapshot's mutation counter) so a warm cold start skips
        #: the lazy k-means retrain entirely
        for backend in self.backends.values():
            if hasattr(backend, "adopt_states"):
                self.registry.attach_approx_backend(backend)
        #: scatter/gather serving: the backend is *per-server* (not in
        #: the global registry — it only makes sense mirrored from this
        #: server's registry service), selectable by name like any other
        if scatter_shards > 0 or shard_transports:
            from repro.search.scatter import (
                LocalShardWorker,
                RemoteShardWorker,
                ScatterGatherBackend,
            )

            workers: list = [
                LocalShardWorker(i) for i in range(max(0, int(scatter_shards)))
            ]
            for transport in shard_transports or []:
                workers.append(RemoteShardWorker(len(workers), transport))
            scatter = ScatterGatherBackend(workers)
            self.registry.attach_mirror(scatter)
            self.backends["scatter"] = scatter
        #: receipt GC knobs, applied by execute_write on keyed writes
        self.receipt_ttl = receipt_ttl
        self.receipt_cap = receipt_cap
        #: serializes every API write (v1 routes AND the legacy
        #: adapters) through repro.server.v1_write.execute_write, making
        #: idempotency-receipt checks and ifVersion CAS races atomic;
        #: the search hot path never takes it
        self.write_lock = threading.RLock()
        #: the background-job plane (repro.jobs): ingest requests (and
        #: any future long-running work, e.g. workflow runs) submit
        #: here and stream progress through the /v1/jobs routes
        self.jobs = JobManager(
            workers=job_workers,
            retention_ttl=job_retention_ttl,
            retention_cap=job_retention_cap,
        )
        #: named Execution Engines (§3.3/§8 future work: multiple engines
        #: registered at one server); ``engine`` becomes the default
        self.engines = EnginePool(engine)
        self.models = models or ModelBundle.default()
        self.semantic = SemanticSearcher(self.models.code_search)
        self.code_search = CodeSearcher(self.models.completion)
        self._tokens: dict[str, str] = {}
        self.router = Router()
        self._install_routes()

    # ------------------------------------------------------------------
    # Auth token management
    # ------------------------------------------------------------------
    def issue_token(self, user_name: str) -> str:
        token = secrets.token_hex(16)
        self._tokens[token] = user_name
        return token

    def token_user(self, token: str | None) -> str | None:
        if token is None:
            return None
        return self._tokens.get(token)

    def revoke_token(self, token: str) -> None:
        self._tokens.pop(token, None)

    # ------------------------------------------------------------------
    # Routing — the endpoint table of paper Table 3, verbatim
    # ------------------------------------------------------------------
    def _install_routes(self) -> None:
        users = UserController(self)
        pes = PEController(self)
        workflows = WorkflowController(self)
        execution = ExecutionController(self)
        registry = RegistryController(self)
        add = self.router.add

        # PE controller
        add("POST", "/registry/{user}/pe/add", pes.add)
        add("GET", "/registry/{user}/pe/all", pes.all_pes)
        add("GET", "/registry/{user}/pe/id/{id}", pes.by_id)
        add("GET", "/registry/{user}/pe/name/{name}", pes.by_name)
        add("DELETE", "/registry/{user}/pe/remove/id/{id}", pes.remove_by_id)
        add("DELETE", "/registry/{user}/pe/remove/name/{name}", pes.remove_by_name)

        # Workflow controller
        add("POST", "/registry/{user}/workflow/add", workflows.add)
        add("GET", "/registry/{user}/workflow/all", workflows.all_workflows)
        add("GET", "/registry/{user}/workflow/id/{id}", workflows.by_id)
        add("GET", "/registry/{user}/workflow/name/{name}", workflows.by_name)
        add("GET", "/registry/{user}/workflow/pes/id/{id}", workflows.pes_by_id)
        add("GET", "/registry/{user}/workflow/pes/name/{name}", workflows.pes_by_name)
        add(
            "DELETE",
            "/registry/{user}/workflow/remove/id/{id}",
            workflows.remove_by_id,
        )
        add(
            "DELETE",
            "/registry/{user}/workflow/remove/name/{name}",
            workflows.remove_by_name,
        )
        add(
            "PUT",
            "/registry/{user}/workflow/{workflowId}/pe/{peId}",
            workflows.link_pe,
        )

        # Execution controller
        add("POST", "/execution/{user}/run", execution.run)

        # Registry controller
        add("GET", "/registry/{user}/all", registry.all_items)
        add("GET", "/registry/{user}/search/{search}/type/{type}", registry.search)

        # User controller
        add("GET", "/auth/all", users.all_users)
        add("POST", "/auth/login", users.login)
        add("POST", "/auth/register", users.register)

        # Engine controller (extension: §3.3/§8 multiple Execution Engines)
        engines = EngineController(self)
        add("GET", "/engines/{user}/all", engines.all_engines)
        add("POST", "/engines/{user}/register", engines.register)
        add("DELETE", "/engines/{user}/remove/{name}", engines.remove)

        # v1 controller — the versioned surface: typed envelopes, cursor
        # pagination on every listing, backend selection by name (the
        # legacy table above stays as thin adapters over the same core)
        v1 = V1Controller(self)
        add("GET", "/v1/users", v1.list_users)
        add("GET", "/v1/backends", v1.list_backends)
        add("GET", "/v1/registry/{user}/pes", v1.list_pes)
        add("GET", "/v1/registry/{user}/workflows", v1.list_workflows)
        add("GET", "/v1/registry/{user}/workflows/{id}/pes", v1.workflow_pes)
        add("POST", "/v1/registry/{user}/search", v1.search)
        # conditional single-record reads: revision-based ETags with an
        # If-None-Match 304 short-circuit
        add("GET", "/v1/registry/{user}/pes/{name}", v1.get_pe)
        add("GET", "/v1/registry/{user}/workflows/{name}", v1.get_workflow)

        # v1 write surface — typed envelopes with idempotency keys and
        # conditional writes; the legacy register/remove routes above
        # are thin adapters over the same execute_write core
        writes = V1WriteController(self)
        add("PUT", "/v1/registry/{user}/pes/{name}", writes.put_pe)
        add("PUT", "/v1/registry/{user}/workflows/{name}", writes.put_workflow)
        add("POST", "/v1/registry/{user}/pes:bulk", writes.bulk_pes)
        add(
            "POST",
            "/v1/registry/{user}/workflows:bulk",
            writes.bulk_workflows,
        )
        add("DELETE", "/v1/registry/{user}/pes/{name}", writes.delete_pe)
        add(
            "DELETE",
            "/v1/registry/{user}/workflows/{name}",
            writes.delete_workflow,
        )

        # background jobs + repository ingestion (repro.jobs /
        # repro.ingest): ingest answers 202 with a job id, progress and
        # cancellation ride the owner-scoped /v1/jobs routes
        from repro.server.jobs_api import IngestController, JobsController

        jobs = JobsController(self)
        add("GET", "/v1/jobs", jobs.list_jobs)
        add("GET", "/v1/jobs/{id}", jobs.get_job)
        add("POST", "/v1/jobs/{id}:cancel", jobs.cancel_job)
        ingest = IngestController(self)
        add("POST", "/v1/registry/{user}/ingest", ingest.start)

    # ------------------------------------------------------------------
    # Dispatch with standardized error handling (paper §3.2.5)
    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        try:
            request = self._merge_query_string(request)
            handler, params = self.router.resolve(request.method, request.path)
            return handler(request, params)
        except MethodNotAllowedError as exc:
            # RFC 9110: a 405 names the methods the resource supports
            return Response(
                exc.code, exc.to_json(), {"Allow": ", ".join(exc.allowed)}
            )
        except ReproError as exc:
            return Response(exc.code, exc.to_json())
        except Exception as exc:  # unforeseen behaviour -> 500 envelope
            return Response(
                500,
                error_envelope(
                    "InternalError",
                    500,
                    f"{type(exc).__name__}: {exc}",
                    details=traceback.format_exc(limit=5),
                ),
            )

    @staticmethod
    def _merge_query_string(request: Request) -> Request:
        """Fold ``?key=value`` pairs into the request body (body wins).

        Standard HTTP tooling cannot attach a body to GET, so the v1
        listings accept ``?limit=…&cursor=…`` too; an explicit JSON
        body always takes precedence over the query string.  Paths
        without a ``?`` pass through untouched (path *segments* encode
        literal question marks as ``%3F``, so splitting on the raw
        ``?`` is exactly the HTTP semantics).
        """
        path, sep, query = request.path.partition("?")
        if not sep:
            return request
        merged: dict = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(query).items()
        }
        merged.update(request.body or {})
        return Request(
            request.method, path, merged, request.token, request.headers
        )

    def endpoints(self) -> list[tuple[str, str]]:
        """The (method, pattern) table — mirrors paper Table 3."""
        return self.router.endpoints()
