"""Shard node: one index partition served over the JSON wire protocol.

A :class:`ShardNode` owns a single :class:`~repro.search.index.VectorIndex`
holding the (user, kind) slabs that :func:`~repro.search.scatter.assign_worker`
placed on it, and exposes the shard-worker surface as ``dispatch(Request)
-> Response`` — the same server shape :class:`~repro.net.transport.InProcessTransport`
and :func:`~repro.server.http.serve_http` already mount.  A
:class:`~repro.search.scatter.RemoteShardWorker` is the matching client.

Routes (all POST, JSON bodies):

=========================  =============================================
``/shard/add``             ``{user, kind, rid, vector}``
``/shard/add_many``        ``{user, kind, rids, vectors}``
``/shard/remove``          ``{user, kind, rid}`` → ``{removed}``
``/shard/remove_everywhere``  ``{user, rid}``
``/shard/clear``           ``{user|null}``
``/shard/search``          ``{user, kind, rids, queries, ks}`` →
                           ``{match, results: [{ids, scores}]}``
``/shard/health``          ``{}`` → ``{ok, workerId, shards, rows}``
``/shard/export``          ``{user|null}`` →
                           ``{shards: [{user, kind, ids, vectors}]}``
=========================  =============================================

Vectors and scores travel as JSON floats, which is lossless for float32
(exact widening to float64, shortest-repr round trip), so a query served
through a shard node is bitwise identical to serving it in process.
Errors use the repo's standard envelope (``{error, code, message}``).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ReproError, ValidationError, error_envelope
from repro.net.transport import Request, Response
from repro.search.index import VectorIndex


def _floats(matrix: np.ndarray) -> list[list[float]]:
    return [[float(x) for x in row] for row in np.asarray(matrix, dtype=np.float32)]


class ShardNode:
    """Serves one index partition; mount in process or behind HTTP."""

    def __init__(self, index: VectorIndex | None = None, worker_id: int = 0) -> None:
        self.index = index if index is not None else VectorIndex()
        self.worker_id = int(worker_id)
        self.requests = 0

    # ------------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        self.requests += 1
        handler = getattr(
            self, "_op_" + request.path.removeprefix("/shard/"), None
        )
        if request.method != "POST" or not request.path.startswith("/shard/") or handler is None:
            return Response(
                404,
                error_envelope(
                    "NotFound",
                    404,
                    f"unknown shard route {request.method} {request.path}",
                ),
            )
        try:
            return Response(200, handler(request.body))
        except ReproError as exc:
            return Response(
                exc.code,
                error_envelope(type(exc).__name__, exc.code, str(exc)),
            )
        except Exception as exc:  # defensive: never leak a traceback as HTML
            return Response(
                500, error_envelope("InternalError", 500, str(exc))
            )

    # ------------------------------------------------------------------
    def _op_add(self, body: dict[str, Any]) -> dict[str, Any]:
        self.index.add(
            body["user"],
            body["kind"],
            int(body["rid"]),
            np.asarray(body["vector"], dtype=np.float32),
        )
        return {"ok": True}

    def _op_add_many(self, body: dict[str, Any]) -> dict[str, Any]:
        rids = [int(rid) for rid in body["rids"]]
        vectors = np.asarray(body["vectors"], dtype=np.float32)
        if len(rids) != len(vectors):
            raise ValidationError(
                f"got {len(rids)} rids for {len(vectors)} vectors"
            )
        self.index.add_many(body["user"], body["kind"], rids, vectors)
        return {"ok": True, "added": len(rids)}

    def _op_remove(self, body: dict[str, Any]) -> dict[str, Any]:
        removed = self.index.remove(body["user"], body["kind"], int(body["rid"]))
        return {"removed": bool(removed)}

    def _op_remove_everywhere(self, body: dict[str, Any]) -> dict[str, Any]:
        self.index.remove_everywhere(body["user"], int(body["rid"]))
        return {"ok": True}

    def _op_clear(self, body: dict[str, Any]) -> dict[str, Any]:
        self.index.clear(body.get("user"))
        return {"ok": True}

    def _op_search(self, body: dict[str, Any]) -> dict[str, Any]:
        queries = [np.asarray(q, dtype=np.float32) for q in body["queries"]]
        ks = [None if k is None else int(k) for k in body["ks"]]
        results = self.index.search_among_many(
            body["user"],
            body["kind"],
            [int(rid) for rid in body["rids"]],
            queries,
            ks,
        )
        if results is None:
            # membership mismatch: tell the gatherer to brute-force
            return {"match": False, "results": []}
        return {
            "match": True,
            "results": [
                {
                    "ids": [int(i) for i in ids],
                    "scores": [float(s) for s in scores],
                }
                for ids, scores in results
            ],
        }

    def _op_health(self, body: dict[str, Any]) -> dict[str, Any]:
        stats = self.index.stats()
        return {
            "ok": True,
            "workerId": self.worker_id,
            "shards": len(stats),
            "rows": sum(info["live"] for info in stats.values()),
            "requests": self.requests,
        }

    def _op_export(self, body: dict[str, Any]) -> dict[str, Any]:
        shards = []
        for (user, kind), (ids, matrix) in self.index.snapshot(body.get("user")).items():
            shards.append(
                {
                    "user": user,
                    "kind": kind,
                    "ids": [int(i) for i in ids],
                    "vectors": _floats(matrix),
                }
            )
        return {"shards": shards}
