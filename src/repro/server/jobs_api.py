"""Controllers for the background-job routes and repository ingestion.

Two small controllers over :class:`repro.jobs.JobManager`:

* :class:`JobsController` — ``GET /v1/jobs`` (the caller's jobs,
  newest first), ``GET /v1/jobs/{id}``, ``POST /v1/jobs/{id}:cancel``.
  Jobs are **owner-scoped**: these routes carry no ``{user}`` path
  segment, so the principal comes from the token alone, and another
  tenant's job ids answer 404 (existence is not leaked).
* :class:`IngestController` — ``POST /v1/registry/{user}/ingest``
  validates the typed envelope, submits the
  :func:`repro.ingest.pipeline.run_ingest` body and answers **202**
  with the queued job snapshot immediately; all the walking, chunking,
  embedding and batched bulk registration happens on the job worker
  (see :mod:`repro.ingest`).
"""

from __future__ import annotations

from repro.errors import NotFoundError, ValidationError
from repro.ingest.pipeline import IngestSpec, run_ingest
from repro.jobs.manager import JOB_STATES
from repro.net.transport import Request, Response
from repro.server.controllers import BaseController
from repro.server.schema import (
    IngestRequest,
    parse_limit,
    reject_unknown_fields,
)

#: page-size default for the jobs listing (retention caps the store, so
#: listings are small; no cursor machinery needed)
_DEFAULT_JOBS_LIMIT = 100


def _job_body(snapshot: dict) -> dict:
    return {"apiVersion": "v1", "job": snapshot}


class JobsController(BaseController):
    """Handlers behind the ``/v1/jobs`` route table."""

    def _owned(self, request: Request, job_id: str) -> dict:
        """The caller's job snapshot, or 404 (never another tenant's)."""
        principal = self.token_principal(request)
        snapshot = self.app.jobs.get(job_id)
        if snapshot is None or snapshot["owner"] != principal.user_name:
            raise NotFoundError(
                f"no job {job_id!r}", params={"jobId": job_id}
            )
        return snapshot

    def list_jobs(self, request: Request, params: dict[str, str]) -> Response:
        principal = self.token_principal(request)
        body = request.body or {}
        reject_unknown_fields(body, ("limit", "state"), where="jobs listing")
        limit = parse_limit(body.get("limit", _DEFAULT_JOBS_LIMIT))
        state = body.get("state")
        if state is not None and state not in JOB_STATES:
            raise ValidationError(
                f"state must be one of {', '.join(JOB_STATES)}; got {state!r}",
                params={"state": state},
            )
        jobs = self.app.jobs.list(owner=principal.user_name, state=state)[
            :limit
        ]
        return Response(
            200,
            {
                "apiVersion": "v1",
                "count": len(jobs),
                "limit": limit,
                "jobs": jobs,
            },
        )

    def get_job(self, request: Request, params: dict[str, str]) -> Response:
        return Response(200, _job_body(self._owned(request, params["id"])))

    def cancel_job(self, request: Request, params: dict[str, str]) -> Response:
        self._owned(request, params["id"])  # 404 before any state change
        snapshot = self.app.jobs.cancel(params["id"])
        return Response(200, _job_body(snapshot))


class IngestController(BaseController):
    """Handler behind ``POST /v1/registry/{user}/ingest``."""

    def start(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        req = IngestRequest.from_json(request.body)
        spec = IngestSpec(
            path=req.path,
            archive=req.archive,
            batch_size=req.batch_size,
            max_file_bytes=req.max_file_bytes,
            max_chunk_lines=req.max_chunk_lines,
        )
        # echo only wire-safe request facts (never the archive bytes)
        job_params = {
            "user": user.user_name,
            "source": "archive" if req.archive is not None else req.path,
            "batchSize": req.batch_size,
        }
        snapshot = self.app.jobs.submit(
            "ingest",
            lambda ctx: run_ingest(self.app, user.user_name, spec, ctx),
            owner=user.user_name,
            params=job_params,
        )
        body = _job_body(snapshot)
        body["jobId"] = snapshot["jobId"]
        return Response(202, body)
