"""The versioned ``/v1/`` API surface (typed envelopes, cursors, backends).

Two pieces live here:

* :func:`execute_search` — the single search core behind **both** API
  generations.  It receives an already validated
  :class:`~repro.server.schema.SearchRequest` and runs the paper's
  text/semantic/code branches over the request's chosen index backend.
  The legacy Table-3 route (``GET /registry/{user}/search/...``) is a
  thin adapter that builds a ``SearchRequest`` (always
  ``backend="exact"``) and re-shapes the result into the historical
  ``{"searchKind", "hits"}`` body — byte-identical to the seed
  behaviour.
* :class:`V1Controller` — handlers for the ``/v1/`` route table:
  cursor-paginated listings (users, PEs, workflows, a workflow's PEs)
  and the unified ``POST /v1/registry/{user}/search`` accepting
  ``kind``/``queryType``/``backend``/``k``/``limit``/``cursor`` in one
  strict envelope.

Listing cursors mark an ascending-id position (see
:mod:`repro.server.schema`): concurrent inserts only ever append higher
ids, so a paginated walk never skips or repeats a pre-existing record.
Search "cursors" page over one ranked snapshot by offset — ranking runs
per request, so they are best-effort under concurrent mutation (the
invariant listings guarantee cannot hold for similarity-ordered
results).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError
from repro.net.transport import Request, Response
from repro.registry.entities import UserRecord
from repro.search import text_search_pes, text_search_workflows
from repro.search.fusion import rrf_fuse
from repro.search.text_search import (
    TextMatch,
    pe_match_label,
    workflow_match_label,
)
from repro.server.controllers import BaseController
from repro.server.schema import (
    DEFAULT_LIMIT,
    Page,
    SearchRequest,
    SearchResponse,
    decode_cursor,
    encode_cursor,
    paginate_ids,
    parse_limit,
    reject_unknown_fields,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.app import LaminarServer


def execute_search(
    app: "LaminarServer",
    user: UserRecord,
    req: SearchRequest,
    *,
    legacy_text: bool = False,
) -> tuple[str, list[dict]]:
    """Run one registry search; returns ``(search_kind, hits_json)``.

    The embedding branches route through the micro-batching dispatcher
    against the backend ``req.backend`` names: rank on the shard, check
    membership against the lazily fetched owned-id projection, and
    materialize only the top-k union through the DAO (a shard mismatch
    falls back to the exact brute-force scan).  ``queryType=text`` ranks
    in the DAO's FTS5/BM25 inverted index and hydrates only the top-k
    winners; ``queryType=hybrid`` RRF-fuses that ranking with the
    semantic one.  Both API generations share this decision tree —
    including the historical quirk that ``queryType=text`` over
    ``kind=pe`` serves *semantic* ranking.

    ``legacy_text=True`` (the Table-3 adapter) swaps the indexed text
    ranking for the historical LIKE-superset + Python-scorer pipeline,
    keeping the legacy route's responses byte-identical to the seed.
    """
    index = app.backends[req.backend]
    registry = app.registry
    batcher = app.batcher
    k = req.k
    query = req.query
    query_embedding = req.query_embedding
    if query_embedding is not None:
        query_embedding = np.asarray(query_embedding, dtype=np.float32)

    if req.query_type == "code":
        hits = app.code_search.search_topk(
            query,
            index=index,
            user=user.user_id,
            owned_ids=lambda: registry.owned_pe_ids(user),
            resolve=lambda ids: registry.resolve_pes(user, ids),
            k=k,
            query_embedding=query_embedding,
            batcher=batcher,
        )
        return "code", [h.to_json() for h in hits]
    if req.query_type == "semantic":
        # §8 extension: explicit semantic search over PEs and/or
        # workflows (query_type='text' keeps the paper's behaviour)
        hits: list = []
        if req.kind in ("pe", "both"):
            hits.extend(
                h.to_json()
                for h in app.semantic.search_topk(
                    query,
                    index=index,
                    user=user.user_id,
                    owned_ids=lambda: registry.owned_pe_ids(user),
                    resolve=lambda ids: registry.resolve_pes(user, ids),
                    k=k,
                    query_embedding=query_embedding,
                    batcher=batcher,
                )
            )
        if req.kind in ("workflow", "both"):
            hits.extend(
                h.to_json()
                for h in app.semantic.search_workflows_topk(
                    query,
                    index=index,
                    user=user.user_id,
                    owned_ids=lambda: registry.owned_workflow_ids(user),
                    resolve=lambda ids: registry.resolve_workflows(user, ids),
                    k=k,
                    query_embedding=query_embedding,
                    batcher=batcher,
                )
            )
        hits.sort(key=lambda h: -h["score"])
        if k is not None:
            hits = hits[:k]
        return "semantic", hits
    if req.query_type == "hybrid":
        return "hybrid", _hybrid_hits(app, user, req, query_embedding)
    # query_type == "text" (validated upstream)
    if req.kind == "pe":
        # historical quirk: text search over kind=pe serves *semantic*
        # ranking (identical on both API generations)
        hits = app.semantic.search_topk(
            query,
            index=index,
            user=user.user_id,
            owned_ids=lambda: registry.owned_pe_ids(user),
            resolve=lambda ids: registry.resolve_pes(user, ids),
            k=k,
            query_embedding=query_embedding,
            batcher=batcher,
        )
        return "semantic", [h.to_json() for h in hits]
    if legacy_text:
        # Table-3 parity adapter: LIKE-superset candidates scored by the
        # historical Python scorer, byte-identical to the seed
        if req.kind == "workflow":
            matches = text_search_workflows(
                query, registry.text_candidate_workflows(user, query)
            )
            return "text", [m.to_json() for m in matches]
        # both: plain text match across the whole registry (Figure 6)
        matches = text_search_pes(
            query, registry.text_candidate_pes(user, query)
        ) + text_search_workflows(
            query, registry.text_candidate_workflows(user, query)
        )
        matches.sort(key=lambda m: (-m.score, m.kind, m.entity_id))
        return "text", [m.to_json() for m in matches]
    # v1 indexed text: ranked inside the DAO's inverted index
    # (BM25 + whole-query name-substring bonus), O(k) hydration
    matches = _indexed_text_matches(registry, user, req.kind, query, k)
    matches.sort(key=lambda m: (-m.score, m.kind, m.entity_id))
    if k is not None:
        matches = matches[:k]
    return "text", [m.to_json() for m in matches]


def _indexed_text_matches(
    registry, user: UserRecord, kind: str, query: str, k: int | None
) -> list[TextMatch]:
    """FTS-ranked :class:`TextMatch` rows for ``kind`` (already scored
    by the DAO; ``matchedOn`` labels recomputed from the records)."""
    matches: list[TextMatch] = []
    if kind in ("pe", "both"):
        matches.extend(
            TextMatch(
                kind="pe",
                entity_id=record.pe_id,
                name=record.pe_name,
                description=record.description,
                matched_on=pe_match_label(query, record),
                score=score,
            )
            for record, score in registry.text_topk_pes(user, query, k)
        )
    if kind in ("workflow", "both"):
        matches.extend(
            TextMatch(
                kind="workflow",
                entity_id=record.workflow_id,
                name=record.entry_point,
                description=record.description,
                matched_on=workflow_match_label(query, record),
                score=score,
            )
            for record, score in registry.text_topk_workflows(user, query, k)
        )
    return matches


def _hybrid_hits(
    app: "LaminarServer",
    user: UserRecord,
    req: SearchRequest,
    query_embedding,
) -> list[dict]:
    """``queryType=hybrid``: RRF-fuse the text and semantic rankings.

    Both legs rank to depth ``max(2k, k+50)`` (unbounded when ``k`` is
    ``None``) so the fusion sees well past the final cut, then
    :func:`~repro.search.fusion.rrf_fuse` merges them deterministically
    — given the two leg rankings the fused ordering is bitwise-stable.
    The text leg is the *real* BM25 ranking even for ``kind=pe`` (the
    text-route quirk is a ``queryType=text`` compatibility artifact;
    hybrid is new surface and fuses what it says it fuses).
    """
    registry = app.registry
    index = app.backends[req.backend]
    batcher = app.batcher
    k = req.k
    query = req.query
    depth = None if k is None else max(2 * k, k + 50)

    text_matches = _indexed_text_matches(registry, user, req.kind, query, depth)
    text_matches.sort(key=lambda m: (-m.score, m.kind, m.entity_id))
    if depth is not None:
        text_matches = text_matches[:depth]

    sem_rows: list[tuple[float, str, int, object]] = []
    if req.kind in ("pe", "both"):
        sem_rows.extend(
            (float(h.score), "pe", h.pe_id, h)
            for h in app.semantic.search_topk(
                query,
                index=index,
                user=user.user_id,
                owned_ids=lambda: registry.owned_pe_ids(user),
                resolve=lambda ids: registry.resolve_pes(user, ids),
                k=depth,
                query_embedding=query_embedding,
                batcher=batcher,
            )
        )
    if req.kind in ("workflow", "both"):
        sem_rows.extend(
            (float(h.score), "workflow", h.workflow_id, h)
            for h in app.semantic.search_workflows_topk(
                query,
                index=index,
                user=user.user_id,
                owned_ids=lambda: registry.owned_workflow_ids(user),
                resolve=lambda ids: registry.resolve_workflows(user, ids),
                k=depth,
                query_embedding=query_embedding,
                batcher=batcher,
            )
        )
    sem_rows.sort(key=lambda row: (-row[0], row[1], row[2]))
    if depth is not None:
        sem_rows = sem_rows[:depth]

    by_key: dict[tuple[str, int], dict] = {}
    text_leg: list[tuple[str, int]] = []
    for m in text_matches:
        key = (m.kind, m.entity_id)
        text_leg.append(key)
        by_key.setdefault(key, {})["text"] = m
    semantic_leg: list[tuple[str, int]] = []
    for score, kind_, rid, hit in sem_rows:
        key = (kind_, rid)
        semantic_leg.append(key)
        by_key.setdefault(key, {})["semantic"] = hit

    fused = rrf_fuse([text_leg, semantic_leg])
    if k is not None:
        fused = fused[:k]
    hits = []
    for key, score, (text_rank, semantic_rank) in fused:
        kind_, rid = key
        text_hit = by_key[key].get("text")
        sem_hit = by_key[key].get("semantic")
        if text_hit is not None:
            name, description = text_hit.name, text_hit.description
        elif kind_ == "pe":
            name, description = sem_hit.pe_name, sem_hit.description
        else:
            name, description = sem_hit.entry_point, sem_hit.description
        hits.append(
            {
                "kind": kind_,
                "id": rid,
                "name": name,
                "description": description,
                "score": round(score, 6),
                "textRank": text_rank,
                "semanticRank": semantic_rank,
                "textScore": (
                    round(text_hit.score, 4) if text_hit is not None else None
                ),
                "semanticScore": (
                    round(float(sem_hit.score), 4)
                    if sem_hit is not None
                    else None
                ),
            }
        )
    return hits


class V1Controller(BaseController):
    """Handlers behind the ``/v1/`` route table."""

    #: wire fields a listing request may carry
    _PAGE_FIELDS = ("limit", "cursor")

    def _page_params(self, request: Request) -> tuple[int, str | None]:
        """Strictly parse the (optional) ``limit``/``cursor`` body."""
        body = request.body or {}
        reject_unknown_fields(body, self._PAGE_FIELDS, where="listing request")
        limit = body.get("limit")
        limit = DEFAULT_LIMIT if limit is None else parse_limit(limit)
        cursor = body.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise ValidationError(
                f"cursor must be a string, got {type(cursor).__name__}",
                params={"cursor": cursor},
            )
        return limit, cursor

    # ------------------------------------------------------------------
    # Listings (cursor-paginated, ascending id)
    # ------------------------------------------------------------------
    def list_users(self, request: Request, params: dict[str, str]) -> Response:
        # parity with the legacy /auth/all listing: no auth required
        limit, cursor = self._page_params(request)
        users = self.app.registry.all_users()
        page_ids, next_cursor = paginate_ids(
            [user.user_id for user in users],
            scope="users",
            limit=limit,
            cursor=cursor,
        )
        by_id = {user.user_id: user for user in users}
        items = [by_id[user_id].to_json() for user_id in page_ids]
        return Response(200, Page(items, limit, next_cursor).to_json())

    def list_pes(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        limit, cursor = self._page_params(request)
        page_ids, next_cursor = paginate_ids(
            self.app.registry.owned_pe_ids(user),
            scope=f"pes:{user.user_id}",
            limit=limit,
            cursor=cursor,
        )
        # O(page) hydration: only this page's rows are materialized;
        # `revision` rides along so clients can poll for changes cheaply
        # (conditional reads — the legacy wire shapes stay untouched)
        records = self.app.registry.resolve_pes(user, page_ids)
        items = [
            {**record.to_json(), "revision": record.revision}
            for record in records
        ]
        return Response(200, Page(items, limit, next_cursor).to_json())

    def list_workflows(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        user = self.authenticated_user(request, params)
        limit, cursor = self._page_params(request)
        page_ids, next_cursor = paginate_ids(
            self.app.registry.owned_workflow_ids(user),
            scope=f"workflows:{user.user_id}",
            limit=limit,
            cursor=cursor,
        )
        records = self.app.registry.resolve_workflows(user, page_ids)
        items = [
            {**record.to_json(), "revision": record.revision}
            for record in records
        ]
        return Response(200, Page(items, limit, next_cursor).to_json())

    # ------------------------------------------------------------------
    # Single-record reads (conditional: revision-based ETags)
    # ------------------------------------------------------------------
    @staticmethod
    def _conditional(request: Request, etag: str, body: dict) -> Response:
        """Serve ``body`` with an ``ETag``, or 304 on a validator hit.

        The ETag is strong and derived from the record's id + revision
        — every write path bumps the revision, so a matching validator
        proves the cached representation is current.  ``If-None-Match``
        accepts the usual comma-separated list and ``*``; weak ``W/``
        prefixes compare by opaque value (byte-identical JSON either
        way).  A 304 carries the ETag back and no body (RFC 9110).
        """
        validator = (request.headers or {}).get("If-None-Match")
        if validator is not None:
            candidates = {
                tag.strip().removeprefix("W/")
                for tag in validator.split(",")
            }
            if "*" in candidates or etag in candidates:
                return Response(304, {}, {"ETag": etag})
        return Response(200, body, {"ETag": etag})

    def get_pe(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        record = self.app.registry.get_pe_by_name(user, params["name"])
        etag = f'"pe-{record.pe_id}-{record.revision}"'
        body = {
            "apiVersion": "v1",
            "kind": "pe",
            "item": {**record.to_json(), "revision": record.revision},
        }
        return self._conditional(request, etag, body)

    def get_workflow(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        user = self.authenticated_user(request, params)
        record = self.app.registry.get_workflow_by_name(user, params["name"])
        etag = f'"workflow-{record.workflow_id}-{record.revision}"'
        body = {
            "apiVersion": "v1",
            "kind": "workflow",
            "item": {**record.to_json(), "revision": record.revision},
        }
        return self._conditional(request, etag, body)

    def workflow_pes(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        user = self.authenticated_user(request, params)
        limit, cursor = self._page_params(request)
        workflow_id = self.int_param(params, "id")
        records = self.app.registry.workflow_pes(user, workflow_id)
        # v1 listings order by ascending id and list each PE once (the
        # legacy route keeps the workflow's raw link order, duplicates
        # included); bounded by the workflow's PE count
        by_id = {record.pe_id: record for record in records}
        page_ids, next_cursor = paginate_ids(
            sorted(by_id),
            scope=f"workflow-pes:{user.user_id}:{workflow_id}",
            limit=limit,
            cursor=cursor,
        )
        items = [
            {**by_id[pe_id].to_json(), "revision": by_id[pe_id].revision}
            for pe_id in page_ids
        ]
        return Response(200, Page(items, limit, next_cursor).to_json())

    # ------------------------------------------------------------------
    # Unified search
    # ------------------------------------------------------------------
    def search(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        req = SearchRequest.from_json(
            request.body, backends=tuple(self.app.backends)
        )
        if req.query_embedding is not None:
            # dimension check completes the edge validation (the schema
            # cannot know the serving model's width)
            model = (
                self.app.code_search.model
                if req.query_type == "code"
                else self.app.semantic.model
            )
            if len(req.query_embedding) != model.dim:
                raise ValidationError(
                    f"queryEmbedding must have {model.dim} dimensions, "
                    f"got {len(req.query_embedding)}",
                    params={"queryEmbeddingDim": len(req.query_embedding)},
                )
        paged = req.limit is not None or req.cursor is not None
        scope = limit = offset = None
        if paged:
            # the scope binds every ranking parameter — query text,
            # kind, queryType, backend, k AND the client-side embedding:
            # a cursor replayed against any differently-ranked search is
            # a 400, never a silently shifted hit window
            fingerprint = hashlib.sha1(
                json.dumps(
                    [
                        req.query,
                        req.kind,
                        req.query_type,
                        req.backend,
                        req.k,
                        req.query_embedding,
                    ],
                    separators=(",", ":"),
                ).encode("utf-8")
            ).hexdigest()[:12]
            scope = f"search:{user.user_id}:{fingerprint}"
            limit = req.limit if req.limit is not None else DEFAULT_LIMIT
            offset = (
                decode_cursor(req.cursor, scope)
                if req.cursor is not None
                else 0
            )
        ranking_req = req
        if (
            paged
            and req.k is None
            and req.query_type != "hybrid"
            and getattr(
                self.app.backends[req.backend], "prefix_stable_topk", False
            )
        ):
            # unbounded k would rank AND hydrate the whole corpus per
            # page; this page only ever shows hits[offset:offset+limit],
            # so cap the ranking there.  Only backends declaring
            # prefix-stable truncation qualify: for them top-(offset+
            # limit) is a prefix of the full ranking, so every page
            # slices one consistent ordering.  Approximate backends
            # (whose candidate set depends on k) rank unbounded instead
            # — their k=None path degenerates to the exact full
            # ordering, keeping pages consistent at O(corpus) cost.
            # Hybrid is excluded for the same reason: its RRF leg depth
            # derives from k, so a capped ranking is not a prefix of the
            # uncapped one.
            ranking_req = replace(req, k=offset + limit)
        search_kind, hits = execute_search(self.app, user, ranking_req)
        next_cursor = None
        if paged:
            sliced = hits[offset : offset + limit]
            if ranking_req is req:
                # client-bounded k: the full ranking is in hand, so the
                # end of the walk is known exactly
                more = offset + limit < len(hits)
            else:
                # capped ranking: a full page means more *may* exist
                # (the walk then terminates on the first short page)
                more = len(sliced) == limit
            if more:
                next_cursor = encode_cursor(scope, offset + limit)
            hits = sliced
        return Response(
            200,
            SearchResponse(
                query=req.query,
                kind=req.kind,
                query_type=req.query_type,
                backend=req.backend,
                search_kind=search_kind,
                k=req.k,
                hits=hits,
                next_cursor=next_cursor,
            ).to_json(),
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def list_backends(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        """This server's index backends (harmless metadata, no auth).

        Reflects ``app.backends`` — the globally registered set plus any
        per-server additions (the scatter fan-out when shards are
        configured) — with the exact reference backend listed first.
        """
        names = sorted(self.app.backends, key=lambda n: (n != "exact", n))
        return Response(
            200,
            {
                "apiVersion": "v1",
                "backends": names,
                "default": "exact",
            },
        )
