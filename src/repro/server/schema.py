"""Typed API envelopes for the versioned ``/v1/`` surface.

The legacy Table-3 endpoints grew their parameters ad hoc: search
options travel as loosely typed body keys, listings return whole
collections, and validation is scattered through the controllers.  The
v1 surface validates **once at the edge** instead:

* :class:`SearchRequest` — the body of ``POST /v1/registry/{user}/search``,
  parsed by :meth:`SearchRequest.from_json` with *strict* field
  checking: unknown fields are rejected (400), every default is
  explicit, and enum/type errors carry the offending value.
* :class:`SearchResponse` — the typed result envelope
  (``apiVersion``/``backend``/``searchKind``/``hits``/``nextCursor``),
  emitted verbatim by the server and by ``repro search --json``.
* :class:`Page` — the envelope of every v1 listing: ``items`` plus an
  opaque ``nextCursor`` resuming after the last item.

Cursors are opaque base64url-encoded JSON, *scoped*: a cursor minted by
one listing (say ``pes``) is rejected by every other with a 400 instead
of silently mis-paginating.  All v1 listings order by **ascending
record id**, so a cursor marks a stable position: records inserted
concurrently receive higher ids and appear on later pages — a walk
never skips or duplicates a pre-existing row.
"""

from __future__ import annotations

import base64
import binascii
import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ValidationError

#: the version prefix every v1 cursor carries on the wire
_CURSOR_PREFIX = "v1."

#: listing page-size bounds; DEFAULT_LIMIT applies when the client
#: sends no ``limit``
DEFAULT_LIMIT = 100
MAX_LIMIT = 1000

#: search-parameter enums (shared with the legacy adapter)
SEARCH_KINDS = ("pe", "workflow", "both")
QUERY_TYPES = ("text", "semantic", "code")


# ---------------------------------------------------------------------------
# Opaque cursors
# ---------------------------------------------------------------------------
def encode_cursor(scope: str, after: int) -> str:
    """Mint an opaque cursor resuming ``scope`` after record id ``after``."""
    raw = json.dumps({"s": scope, "a": int(after)}, separators=(",", ":"))
    token = base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")
    return _CURSOR_PREFIX + token


def decode_cursor(cursor: str, scope: str) -> int:
    """The ``after`` id of ``cursor``; 400 on garbage or scope mismatch."""

    def bad(details: str) -> ValidationError:
        return ValidationError(
            "invalid cursor", params={"cursor": cursor}, details=details
        )

    if not isinstance(cursor, str) or not cursor.startswith(_CURSOR_PREFIX):
        raise bad("cursors are opaque v1 tokens minted by a listing response")
    try:
        raw = base64.urlsafe_b64decode(
            cursor[len(_CURSOR_PREFIX) :].encode("ascii")
        )
        payload = json.loads(raw.decode("utf-8"))
    except (binascii.Error, ValueError, UnicodeError) as exc:
        raise bad(f"undecodable cursor token: {exc}") from None
    position = payload.get("a") if isinstance(payload, dict) else None
    # bools pass isinstance(int) and negative offsets would silently
    # page backwards — both are forgeries, not positions
    if isinstance(position, bool) or not isinstance(position, int) or position < 0:
        raise bad("cursor payload is not a position")
    if payload.get("s") != scope:
        raise bad(
            f"cursor was minted by {payload.get('s')!r}, not {scope!r}"
        )
    return int(position)


# ---------------------------------------------------------------------------
# Strict field parsing
# ---------------------------------------------------------------------------
def reject_unknown_fields(
    body: dict[str, Any], allowed: Sequence[str], *, where: str
) -> None:
    """400 when ``body`` carries any key outside ``allowed``.

    Unknown fields are almost always a client bug (a typoed option
    silently changing nothing); the v1 edge refuses them instead of
    guessing.
    """
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ValidationError(
            f"unknown field(s) in {where}: {', '.join(unknown)}",
            params={"unknownFields": unknown},
            details=f"allowed fields: {', '.join(sorted(allowed))}",
        )


def parse_limit(value: Any) -> int:
    """Validate a listing/search page size (defaults handled by caller).

    Digit strings are accepted because listings also take their page
    parameters from the URL query string (``?limit=5``), where every
    value arrives as text.
    """
    if isinstance(value, str) and value.isdigit():
        value = int(value)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"limit must be an integer, got {value!r}",
            params={"limit": value},
        )
    if not 1 <= value <= MAX_LIMIT:
        raise ValidationError(
            f"limit must be between 1 and {MAX_LIMIT}, got {value}",
            params={"limit": value},
        )
    return int(value)


def _parse_enum(body: dict, key: str, choices: Sequence[str], default: str) -> str:
    value = body.get(key, default)
    if not isinstance(value, str) or value.lower() not in choices:
        raise ValidationError(
            f"{key} must be one of {', '.join(choices)}; got {value!r}",
            params={key: value},
        )
    return value.lower()


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------
@dataclass
class SearchRequest:
    """The validated body of ``POST /v1/registry/{user}/search``.

    Every default is explicit here — the wire body may omit any field
    except ``query`` and always resolves to the same request.
    """

    query: str
    kind: str = "both"  # pe | workflow | both
    query_type: str = "text"  # text | semantic | code (paper default: text)
    backend: str = "exact"  # index backend name (see repro.search.backend)
    k: int | None = None  # top-k cap applied at ranking time
    limit: int | None = None  # page size over the ranked hits
    cursor: str | None = None  # resume token from a previous page
    query_embedding: Any = None  # client-side query vector (optional)

    #: every wire field the envelope accepts
    FIELDS = (
        "query",
        "kind",
        "queryType",
        "backend",
        "k",
        "limit",
        "cursor",
        "queryEmbedding",
    )

    @classmethod
    def from_json(
        cls, body: dict[str, Any] | None, *, backends: Sequence[str]
    ) -> "SearchRequest":
        """Parse + validate a wire body; raises 400 on any malformation.

        ``backends`` is the server's registered backend-name set — the
        envelope is the single place request-side backend names are
        checked.
        """
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"search request must be a JSON object, got "
                f"{type(body).__name__}"
            )
        reject_unknown_fields(body, cls.FIELDS, where="search request")
        query = body.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ValidationError(
                "query is required and must be a non-empty string",
                params={"query": query},
            )
        kind = _parse_enum(body, "kind", SEARCH_KINDS, "both")
        query_type = _parse_enum(body, "queryType", QUERY_TYPES, "text")
        backend = body.get("backend", "exact")
        if not isinstance(backend, str) or backend not in backends:
            raise ValidationError(
                f"unknown index backend {backend!r}",
                params={"backend": backend},
                details=f"registered backends: {', '.join(backends)}",
            )
        k = body.get("k")
        if k is not None:
            if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
                raise ValidationError(
                    f"k must be a positive integer, got {k!r}",
                    params={"k": k},
                )
        limit = body.get("limit")
        if limit is not None:
            limit = parse_limit(limit)
        cursor = body.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise ValidationError(
                f"cursor must be a string, got {type(cursor).__name__}",
                params={"cursor": cursor},
            )
        query_embedding = body.get("queryEmbedding")
        if query_embedding is not None:
            # edge validation: malformed embeddings must 400 here, not
            # 500 when np.asarray/the shard product chokes downstream
            if (
                not isinstance(query_embedding, (list, tuple))
                or not query_embedding
                or not all(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    for value in query_embedding
                )
            ):
                raise ValidationError(
                    "queryEmbedding must be a non-empty array of numbers",
                    params={
                        "queryEmbedding": type(query_embedding).__name__
                    },
                )
        return cls(
            query=query,
            kind=kind,
            query_type=query_type,
            backend=backend,
            k=k,
            limit=limit,
            cursor=cursor,
            query_embedding=query_embedding,
        )


@dataclass
class SearchResponse:
    """The typed result envelope of the unified v1 search endpoint."""

    query: str
    kind: str
    query_type: str
    backend: str
    search_kind: str  # result-row shape: text | semantic | code
    k: int | None
    hits: list[dict] = field(default_factory=list)
    next_cursor: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "apiVersion": "v1",
            "query": self.query,
            "kind": self.kind,
            "queryType": self.query_type,
            "backend": self.backend,
            "searchKind": self.search_kind,
            "k": self.k,
            "count": len(self.hits),
            "hits": self.hits,
            "nextCursor": self.next_cursor,
        }


@dataclass
class Page:
    """One page of a v1 listing (ascending-id order, opaque cursor)."""

    items: list[dict]
    limit: int
    next_cursor: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "apiVersion": "v1",
            "count": len(self.items),
            "limit": self.limit,
            "items": self.items,
            "nextCursor": self.next_cursor,
        }


def paginate_ids(
    ids: Sequence[int],
    *,
    scope: str,
    limit: int,
    cursor: str | None,
) -> tuple[list[int], str | None]:
    """Slice an ascending id listing into one page.

    Returns ``(page_ids, next_cursor)``; ``next_cursor`` is ``None``
    when the page reaches the end of the listing *as of this snapshot*.
    Because ids ascend and new records always receive higher ids, a
    cursor walk over a concurrently growing registry never skips or
    repeats a pre-existing record.
    """
    after = decode_cursor(cursor, scope) if cursor is not None else -1
    start = bisect.bisect_right(ids, after)
    page = [int(rid) for rid in ids[start : start + limit]]
    if start + limit < len(ids):
        return page, encode_cursor(scope, page[-1])
    return page, None
