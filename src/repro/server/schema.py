"""Typed API envelopes for the versioned ``/v1/`` surface.

The legacy Table-3 endpoints grew their parameters ad hoc: search
options travel as loosely typed body keys, listings return whole
collections, and validation is scattered through the controllers.  The
v1 surface validates **once at the edge** instead:

* :class:`SearchRequest` — the body of ``POST /v1/registry/{user}/search``,
  parsed by :meth:`SearchRequest.from_json` with *strict* field
  checking: unknown fields are rejected (400), every default is
  explicit, and enum/type errors carry the offending value.
* :class:`SearchResponse` — the typed result envelope
  (``apiVersion``/``backend``/``searchKind``/``hits``/``nextCursor``),
  emitted verbatim by the server and by ``repro search --json``.
* :class:`Page` — the envelope of every v1 listing: ``items`` plus an
  opaque ``nextCursor`` resuming after the last item.

Cursors are opaque base64url-encoded JSON, *scoped*: a cursor minted by
one listing (say ``pes``) is rejected by every other with a 400 instead
of silently mis-paginating.  All v1 listings order by **ascending
record id**, so a cursor marks a stable position: records inserted
concurrently receive higher ids and appear on later pages — a walk
never skips or duplicates a pre-existing row.
"""

from __future__ import annotations

import base64
import binascii
import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ValidationError

#: the version prefix every v1 cursor carries on the wire
_CURSOR_PREFIX = "v1."

#: listing page-size bounds; DEFAULT_LIMIT applies when the client
#: sends no ``limit``
DEFAULT_LIMIT = 100
MAX_LIMIT = 1000

#: search-parameter enums (shared with the legacy adapter)
SEARCH_KINDS = ("pe", "workflow", "both")
QUERY_TYPES = ("text", "semantic", "code", "hybrid")

#: write-surface bounds
MAX_BULK_ITEMS = 1000
MAX_IDEMPOTENCY_KEY_LEN = 200


# ---------------------------------------------------------------------------
# Opaque cursors
# ---------------------------------------------------------------------------
def encode_cursor(scope: str, after: int) -> str:
    """Mint an opaque cursor resuming ``scope`` after record id ``after``."""
    raw = json.dumps({"s": scope, "a": int(after)}, separators=(",", ":"))
    token = base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")
    return _CURSOR_PREFIX + token


def decode_cursor(cursor: str, scope: str) -> int:
    """The ``after`` id of ``cursor``; 400 on garbage or scope mismatch."""

    def bad(details: str) -> ValidationError:
        return ValidationError(
            "invalid cursor", params={"cursor": cursor}, details=details
        )

    if not isinstance(cursor, str) or not cursor.startswith(_CURSOR_PREFIX):
        raise bad("cursors are opaque v1 tokens minted by a listing response")
    try:
        raw = base64.urlsafe_b64decode(
            cursor[len(_CURSOR_PREFIX) :].encode("ascii")
        )
        payload = json.loads(raw.decode("utf-8"))
    except (binascii.Error, ValueError, UnicodeError) as exc:
        raise bad(f"undecodable cursor token: {exc}") from None
    position = payload.get("a") if isinstance(payload, dict) else None
    # bools pass isinstance(int) and negative offsets would silently
    # page backwards — both are forgeries, not positions
    if isinstance(position, bool) or not isinstance(position, int) or position < 0:
        raise bad("cursor payload is not a position")
    if payload.get("s") != scope:
        raise bad(
            f"cursor was minted by {payload.get('s')!r}, not {scope!r}"
        )
    return int(position)


# ---------------------------------------------------------------------------
# Strict field parsing
# ---------------------------------------------------------------------------
def reject_unknown_fields(
    body: dict[str, Any], allowed: Sequence[str], *, where: str
) -> None:
    """400 when ``body`` carries any key outside ``allowed``.

    Unknown fields are almost always a client bug (a typoed option
    silently changing nothing); the v1 edge refuses them instead of
    guessing.
    """
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ValidationError(
            f"unknown field(s) in {where}: {', '.join(unknown)}",
            params={"unknownFields": unknown},
            details=f"allowed fields: {', '.join(sorted(allowed))}",
        )


def parse_limit(value: Any) -> int:
    """Validate a listing/search page size (defaults handled by caller).

    Digit strings are accepted because listings also take their page
    parameters from the URL query string (``?limit=5``), where every
    value arrives as text.
    """
    if isinstance(value, str) and value.isdigit():
        value = int(value)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"limit must be an integer, got {value!r}",
            params={"limit": value},
        )
    if not 1 <= value <= MAX_LIMIT:
        raise ValidationError(
            f"limit must be between 1 and {MAX_LIMIT}, got {value}",
            params={"limit": value},
        )
    return int(value)


def _parse_enum(body: dict, key: str, choices: Sequence[str], default: str) -> str:
    value = body.get(key, default)
    if not isinstance(value, str) or value.lower() not in choices:
        raise ValidationError(
            f"{key} must be one of {', '.join(choices)}; got {value!r}",
            params={key: value},
        )
    return value.lower()


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------
@dataclass
class SearchRequest:
    """The validated body of ``POST /v1/registry/{user}/search``.

    Every default is explicit here — the wire body may omit any field
    except ``query`` and always resolves to the same request.
    """

    query: str
    kind: str = "both"  # pe | workflow | both
    query_type: str = "text"  # text | semantic | code (paper default: text)
    backend: str = "exact"  # index backend name (see repro.search.backend)
    k: int | None = None  # top-k cap applied at ranking time
    limit: int | None = None  # page size over the ranked hits
    cursor: str | None = None  # resume token from a previous page
    query_embedding: Any = None  # client-side query vector (optional)

    #: every wire field the envelope accepts
    FIELDS = (
        "query",
        "kind",
        "queryType",
        "backend",
        "k",
        "limit",
        "cursor",
        "queryEmbedding",
    )

    @classmethod
    def from_json(
        cls, body: dict[str, Any] | None, *, backends: Sequence[str]
    ) -> "SearchRequest":
        """Parse + validate a wire body; raises 400 on any malformation.

        ``backends`` is the server's registered backend-name set — the
        envelope is the single place request-side backend names are
        checked.
        """
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"search request must be a JSON object, got "
                f"{type(body).__name__}"
            )
        reject_unknown_fields(body, cls.FIELDS, where="search request")
        query = body.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ValidationError(
                "query is required and must be a non-empty string",
                params={"query": query},
            )
        kind = _parse_enum(body, "kind", SEARCH_KINDS, "both")
        query_type = _parse_enum(body, "queryType", QUERY_TYPES, "text")
        backend = body.get("backend", "exact")
        if not isinstance(backend, str) or backend not in backends:
            raise ValidationError(
                f"unknown index backend {backend!r}",
                params={"backend": backend},
                details=f"registered backends: {', '.join(backends)}",
            )
        k = body.get("k")
        if k is not None:
            if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
                raise ValidationError(
                    f"k must be a positive integer, got {k!r}",
                    params={"k": k},
                )
        limit = body.get("limit")
        if limit is not None:
            limit = parse_limit(limit)
        cursor = body.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise ValidationError(
                f"cursor must be a string, got {type(cursor).__name__}",
                params={"cursor": cursor},
            )
        # edge validation: malformed embeddings must 400 here, not 500
        # when np.asarray/the shard product chokes downstream
        query_embedding = parse_embedding_field(body, "queryEmbedding")
        return cls(
            query=query,
            kind=kind,
            query_type=query_type,
            backend=backend,
            k=k,
            limit=limit,
            cursor=cursor,
            query_embedding=query_embedding,
        )


@dataclass
class SearchResponse:
    """The typed result envelope of the unified v1 search endpoint."""

    query: str
    kind: str
    query_type: str
    backend: str
    search_kind: str  # result-row shape: text | semantic | code
    k: int | None
    hits: list[dict] = field(default_factory=list)
    next_cursor: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "apiVersion": "v1",
            "query": self.query,
            "kind": self.kind,
            "queryType": self.query_type,
            "backend": self.backend,
            "searchKind": self.search_kind,
            "k": self.k,
            "count": len(self.hits),
            "hits": self.hits,
            "nextCursor": self.next_cursor,
        }


@dataclass
class Page:
    """One page of a v1 listing (ascending-id order, opaque cursor)."""

    items: list[dict]
    limit: int
    next_cursor: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "apiVersion": "v1",
            "count": len(self.items),
            "limit": self.limit,
            "items": self.items,
            "nextCursor": self.next_cursor,
        }


# ---------------------------------------------------------------------------
# Write envelopes (the v1 write surface)
# ---------------------------------------------------------------------------
def parse_embedding_field(body: dict[str, Any], key: str) -> list | None:
    """A client-side embedding field: ``None`` or a non-empty number array."""
    value = body.get(key)
    if value is None:
        return None
    if (
        not isinstance(value, (list, tuple))
        or not value
        or not all(
            isinstance(item, (int, float)) and not isinstance(item, bool)
            for item in value
        )
    ):
        raise ValidationError(
            f"{key} must be a non-empty array of numbers",
            params={key: type(value).__name__},
        )
    return list(value)


def parse_if_version(body: dict[str, Any]) -> int | None:
    """``ifVersion``: a non-negative integer or absent.

    0 means "the target must not exist yet" (create-only); n > 0 pins
    the target's current revision.  Anything else is a 400.
    """
    value = body.get("ifVersion")
    if value is None:
        return None
    if isinstance(value, str) and value.isdigit():
        value = int(value)  # CLI/query-string friendliness, like limit
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise ValidationError(
            f"ifVersion must be a non-negative integer, got {value!r}",
            params={"ifVersion": value},
        )
    return int(value)


def parse_idempotency_key(body: dict[str, Any]) -> str | None:
    """``idempotencyKey``: a short, non-empty opaque string or absent."""
    value = body.get("idempotencyKey")
    if value is None:
        return None
    if (
        not isinstance(value, str)
        or not value.strip()
        or len(value) > MAX_IDEMPOTENCY_KEY_LEN
    ):
        raise ValidationError(
            "idempotencyKey must be a non-empty string of at most "
            f"{MAX_IDEMPOTENCY_KEY_LEN} characters",
            params={"idempotencyKey": value},
        )
    return value


def _parse_required_str(body: dict[str, Any], key: str, *, where: str) -> str:
    value = body.get(key)
    if not isinstance(value, str) or not value.strip():
        raise ValidationError(
            f"{key} is required and must be a non-empty string in {where}",
            params={key: value},
        )
    return value


def _parse_optional_str(body: dict[str, Any], key: str, default: str = "") -> str:
    value = body.get(key, default)
    if not isinstance(value, str):
        raise ValidationError(
            f"{key} must be a string, got {type(value).__name__}",
            params={key: value},
        )
    return value


def _check_path_name(body: dict[str, Any], key: str, name: str) -> None:
    """A body identity field, when present, must agree with the path."""
    value = body.get(key)
    if value is not None and value != name:
        raise ValidationError(
            f"{key} in the body ({value!r}) disagrees with the path "
            f"segment ({name!r})",
            params={key: value, "path": name},
        )


@dataclass
class RegisterPERequest:
    """The validated body of ``PUT /v1/registry/{user}/pes/{name}``.

    The PE's name comes from the *path*; a ``peName`` body field is
    allowed only when it agrees.  ``ifVersion`` pins the caller's
    current record of that name (0 = create-only) and
    ``idempotencyKey`` makes the write safely retryable.
    """

    name: str
    code: str
    description: str = ""
    description_origin: str = "user"
    source: str = ""
    imports: list[str] = field(default_factory=list)
    desc_embedding: list | None = None
    code_embedding: list | None = None
    if_version: int | None = None
    idempotency_key: str | None = None

    FIELDS = (
        "peName",
        "peCode",
        "description",
        "descriptionOrigin",
        "peSource",
        "peImports",
        "descEmbedding",
        "codeEmbedding",
        "ifVersion",
        "idempotencyKey",
    )
    #: fields rejected inside bulk items (they are request-level knobs)
    META_FIELDS = ("ifVersion", "idempotencyKey")

    @classmethod
    def from_json(
        cls,
        body: dict[str, Any] | None,
        *,
        name: str | None = None,
        where: str = "register request",
        allow_meta: bool = True,
    ) -> "RegisterPERequest":
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"{where} must be a JSON object, got {type(body).__name__}"
            )
        allowed = cls.FIELDS if allow_meta else tuple(
            f for f in cls.FIELDS if f not in cls.META_FIELDS
        )
        reject_unknown_fields(body, allowed, where=where)
        if name is None:
            name = _parse_required_str(body, "peName", where=where)
        else:
            _check_path_name(body, "peName", name)
        code = _parse_required_str(body, "peCode", where=where)
        imports = body.get("peImports", [])
        if not isinstance(imports, list) or not all(
            isinstance(item, str) for item in imports
        ):
            raise ValidationError(
                "peImports must be an array of strings",
                params={"peImports": imports},
            )
        return cls(
            name=name,
            code=code,
            description=_parse_optional_str(body, "description"),
            description_origin=_parse_optional_str(
                body, "descriptionOrigin", "user"
            ),
            source=_parse_optional_str(body, "peSource"),
            imports=list(imports),
            desc_embedding=parse_embedding_field(body, "descEmbedding"),
            code_embedding=parse_embedding_field(body, "codeEmbedding"),
            if_version=parse_if_version(body) if allow_meta else None,
            idempotency_key=(
                parse_idempotency_key(body) if allow_meta else None
            ),
        )


@dataclass
class RegisterWorkflowRequest:
    """The validated body of ``PUT /v1/registry/{user}/workflows/{name}``.

    The path ``{name}`` is the workflow's *entry point* (the identifier
    users retrieve/run by); an ``entryPoint`` body field is allowed
    only when it agrees.
    """

    entry_point: str
    code: str
    workflow_name: str = ""
    description: str = ""
    source: str = ""
    pe_ids: list[int] = field(default_factory=list)
    desc_embedding: list | None = None
    if_version: int | None = None
    idempotency_key: str | None = None

    FIELDS = (
        "entryPoint",
        "workflowName",
        "description",
        "workflowCode",
        "workflowSource",
        "peIds",
        "descEmbedding",
        "ifVersion",
        "idempotencyKey",
    )
    #: fields rejected inside bulk items (they are request-level knobs)
    META_FIELDS = ("ifVersion", "idempotencyKey")

    @classmethod
    def from_json(
        cls,
        body: dict[str, Any] | None,
        *,
        name: str | None = None,
        where: str = "register request",
        allow_meta: bool = True,
    ) -> "RegisterWorkflowRequest":
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"{where} must be a JSON object, got {type(body).__name__}"
            )
        allowed = cls.FIELDS if allow_meta else tuple(
            f for f in cls.FIELDS if f not in cls.META_FIELDS
        )
        reject_unknown_fields(body, allowed, where=where)
        if name is None:
            name = _parse_required_str(body, "entryPoint", where=where)
        else:
            _check_path_name(body, "entryPoint", name)
        code = _parse_required_str(body, "workflowCode", where=where)
        pe_ids = body.get("peIds", [])
        if not isinstance(pe_ids, list) or not all(
            isinstance(item, int) and not isinstance(item, bool)
            for item in pe_ids
        ):
            raise ValidationError(
                "peIds must be an array of integers", params={"peIds": pe_ids}
            )
        return cls(
            entry_point=name,
            code=code,
            workflow_name=_parse_optional_str(body, "workflowName", name),
            description=_parse_optional_str(body, "description"),
            source=_parse_optional_str(body, "workflowSource"),
            pe_ids=[int(item) for item in pe_ids],
            desc_embedding=parse_embedding_field(body, "descEmbedding"),
            if_version=parse_if_version(body) if allow_meta else None,
            idempotency_key=(
                parse_idempotency_key(body) if allow_meta else None
            ),
        )


@dataclass
class BulkRegisterRequest:
    """The validated body of ``POST /v1/registry/{user}/pes:bulk``.

    ``items`` are complete PE registrations (``peName`` required per
    item; ``ifVersion``/``idempotencyKey`` are request-level only).
    ``ifVersion`` here pins the *registry mutation counter* — the batch
    is all-or-nothing against a known registry state.
    """

    items: list[RegisterPERequest]
    if_version: int | None = None
    idempotency_key: str | None = None

    FIELDS = ("items", "ifVersion", "idempotencyKey")

    @classmethod
    def from_json(
        cls, body: dict[str, Any] | None
    ) -> "BulkRegisterRequest":
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"bulk register request must be a JSON object, got "
                f"{type(body).__name__}"
            )
        reject_unknown_fields(body, cls.FIELDS, where="bulk register request")
        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise ValidationError(
                "items is required and must be a non-empty array",
                params={"items": type(items).__name__},
            )
        if len(items) > MAX_BULK_ITEMS:
            raise ValidationError(
                f"items must contain at most {MAX_BULK_ITEMS} entries, "
                f"got {len(items)}",
                params={"items": len(items)},
            )
        parsed = []
        for position, item in enumerate(items):
            if not isinstance(item, dict):
                raise ValidationError(
                    f"items[{position}] must be a JSON object, got "
                    f"{type(item).__name__}",
                    params={"position": position},
                )
            parsed.append(
                RegisterPERequest.from_json(
                    item, where=f"items[{position}]", allow_meta=False
                )
            )
        return cls(
            items=parsed,
            if_version=parse_if_version(body),
            idempotency_key=parse_idempotency_key(body),
        )


@dataclass
class BulkRegisterWorkflowsRequest:
    """The validated body of ``POST /v1/registry/{user}/workflows:bulk``.

    Mirrors :class:`BulkRegisterRequest`: ``items`` are complete
    workflow registrations (``entryPoint`` required per item;
    ``ifVersion``/``idempotencyKey`` are request-level only) and
    ``ifVersion`` pins the registry mutation counter.
    """

    items: list[RegisterWorkflowRequest]
    if_version: int | None = None
    idempotency_key: str | None = None

    FIELDS = ("items", "ifVersion", "idempotencyKey")

    @classmethod
    def from_json(
        cls, body: dict[str, Any] | None
    ) -> "BulkRegisterWorkflowsRequest":
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"bulk register request must be a JSON object, got "
                f"{type(body).__name__}"
            )
        reject_unknown_fields(body, cls.FIELDS, where="bulk register request")
        items = body.get("items")
        if not isinstance(items, list) or not items:
            raise ValidationError(
                "items is required and must be a non-empty array",
                params={"items": type(items).__name__},
            )
        if len(items) > MAX_BULK_ITEMS:
            raise ValidationError(
                f"items must contain at most {MAX_BULK_ITEMS} entries, "
                f"got {len(items)}",
                params={"items": len(items)},
            )
        parsed = []
        for position, item in enumerate(items):
            if not isinstance(item, dict):
                raise ValidationError(
                    f"items[{position}] must be a JSON object, got "
                    f"{type(item).__name__}",
                    params={"position": position},
                )
            parsed.append(
                RegisterWorkflowRequest.from_json(
                    item, where=f"items[{position}]", allow_meta=False
                )
            )
        return cls(
            items=parsed,
            if_version=parse_if_version(body),
            idempotency_key=parse_idempotency_key(body),
        )


# ---------------------------------------------------------------------------
# Ingest + jobs envelopes
# ---------------------------------------------------------------------------
#: bounds for the ingest envelope's tuning knobs
MAX_INGEST_FILE_BYTES = 10_000_000
MIN_CHUNK_LINES, MAX_CHUNK_LINES = 10, 2000


def _parse_bounded_int(
    body: dict[str, Any], key: str, default: int, low: int, high: int
) -> int:
    value = body.get(key, default)
    if isinstance(value, str) and value.isdigit():
        value = int(value)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{key} must be an integer, got {value!r}", params={key: value}
        )
    if not low <= value <= high:
        raise ValidationError(
            f"{key} must be between {low} and {high}, got {value}",
            params={key: value},
        )
    return int(value)


@dataclass
class IngestRequest:
    """The validated body of ``POST /v1/registry/{user}/ingest``.

    Exactly one source is required: ``path`` (a directory on the
    *server's* filesystem — single-tenant trusted deployments) or
    ``archive`` (a base64 ``.tar.gz`` uploaded in the request,
    extracted through the validating walker).  The tuning knobs bound
    the work per file/chunk/batch; all have safe defaults.
    """

    path: str | None = None
    archive: bytes | None = None
    batch_size: int = 64
    max_file_bytes: int = 1_000_000
    max_chunk_lines: int = 200

    FIELDS = ("path", "archive", "batchSize", "maxFileBytes", "maxChunkLines")

    @classmethod
    def from_json(cls, body: dict[str, Any] | None) -> "IngestRequest":
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"ingest request must be a JSON object, got "
                f"{type(body).__name__}"
            )
        reject_unknown_fields(body, cls.FIELDS, where="ingest request")
        path = body.get("path")
        if path is not None and (not isinstance(path, str) or not path.strip()):
            raise ValidationError(
                "path must be a non-empty string", params={"path": path}
            )
        raw_archive = body.get("archive")
        archive: bytes | None = None
        if raw_archive is not None:
            if not isinstance(raw_archive, str) or not raw_archive:
                raise ValidationError(
                    "archive must be a base64-encoded tarball string",
                    params={"archive": type(raw_archive).__name__},
                )
            try:
                archive = base64.b64decode(
                    raw_archive.encode("ascii"), validate=True
                )
            except (binascii.Error, ValueError, UnicodeError) as exc:
                raise ValidationError(
                    "archive is not valid base64", details=str(exc)
                ) from None
        if (path is None) == (archive is None):
            raise ValidationError(
                "exactly one of path or archive is required",
                params={"path": path is not None, "archive": archive is not None},
            )
        return cls(
            path=path,
            archive=archive,
            batch_size=_parse_bounded_int(
                body, "batchSize", 64, 1, MAX_BULK_ITEMS
            ),
            max_file_bytes=_parse_bounded_int(
                body, "maxFileBytes", 1_000_000, 1, MAX_INGEST_FILE_BYTES
            ),
            max_chunk_lines=_parse_bounded_int(
                body, "maxChunkLines", 200, MIN_CHUNK_LINES, MAX_CHUNK_LINES
            ),
        )


@dataclass
class DeleteRequest:
    """The (optional) body of the v1 DELETE routes."""

    if_version: int | None = None
    idempotency_key: str | None = None

    FIELDS = ("ifVersion", "idempotencyKey")

    @classmethod
    def from_json(cls, body: dict[str, Any] | None) -> "DeleteRequest":
        body = body or {}
        if not isinstance(body, dict):
            raise ValidationError(
                f"delete request must be a JSON object, got "
                f"{type(body).__name__}"
            )
        reject_unknown_fields(body, cls.FIELDS, where="delete request")
        return cls(
            if_version=parse_if_version(body),
            idempotency_key=parse_idempotency_key(body),
        )


@dataclass
class WriteResponse:
    """The typed result envelope of every v1 write.

    ``items`` carry the stored record JSON extended with ``revision``
    (the per-record conditional-write version) and ``created`` (False =
    the §3.1 dedup resolved onto an existing record).
    ``registryVersion`` is the registry mutation counter *after* the
    write — a replayed idempotent request returns the stored envelope,
    so equal ``registryVersion`` values are the observable no-op proof.
    """

    op: str  # register | delete | bulk-register
    kind: str  # pe | workflow
    status: int  # HTTP status served alongside (201 created / 200 ok)
    items: list[dict] = field(default_factory=list)
    removed: bool = False
    registry_version: int = 0
    idempotency_key: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "apiVersion": "v1",
            "op": self.op,
            "kind": self.kind,
            "count": len(self.items),
            "items": self.items,
            "removed": self.removed,
            "registryVersion": self.registry_version,
            "idempotencyKey": self.idempotency_key,
        }


def paginate_ids(
    ids: Sequence[int],
    *,
    scope: str,
    limit: int,
    cursor: str | None,
) -> tuple[list[int], str | None]:
    """Slice an ascending id listing into one page.

    Returns ``(page_ids, next_cursor)``; ``next_cursor`` is ``None``
    when the page reaches the end of the listing *as of this snapshot*.
    Because ids ascend and new records always receive higher ids, a
    cursor walk over a concurrently growing registry never skips or
    repeats a pre-existing record.
    """
    after = decode_cursor(cursor, scope) if cursor is not None else -1
    start = bisect.bisect_right(ids, after)
    page = [int(rid) for rid in ids[start : start + limit]]
    if start + limit < len(ids):
        return page, encode_cursor(scope, page[-1])
    return page, None
