"""API routing — the Laminar API endpoint table (paper Table 3).

A tiny path router: patterns are ``/``-separated with ``{param}``
placeholders; path segments are URL-decoded before matching so search
strings containing spaces or slashes survive the round trip.
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass
from typing import Callable

from repro.errors import MethodNotAllowedError, NotFoundError
from repro.net.transport import Request, Response

Handler = Callable[[Request, dict[str, str]], Response]


@dataclass(frozen=True)
class Route:
    method: str
    pattern: str
    segments: tuple[str, ...]
    handler: Handler

    def match(self, method: str, parts: tuple[str, ...]) -> dict[str, str] | None:
        if method != self.method or len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(self.segments, parts):
            if expected.startswith("{") and "}" in expected:
                name, _, suffix = expected[1:].partition("}")
                if suffix:
                    # google-style action segment: "{id}:cancel" captures
                    # everything before the literal suffix
                    if (
                        not actual.endswith(suffix)
                        or len(actual) <= len(suffix)
                    ):
                        return None
                    actual = actual[: -len(suffix)]
                params[name] = urllib.parse.unquote(actual)
            elif expected != actual:
                return None
        return params

    def specificity(self) -> tuple[int, ...]:
        """Match precedence: literal segments (0) beat suffixed
        ``{param}:action`` captures (1) beat bare ``{param}`` captures
        (2), position by position from the left.

        Tuples compare lexicographically, so among routes of equal
        length the one whose *earliest differing* segment is literal
        wins — ``/v1/registry/{user}/pes`` can never be shadowed by a
        same-shape all-param pattern registered first, and vice versa a
        param route never steals a literal route's paths.
        """

        def rank(segment: str) -> int:
            if not (segment.startswith("{") and "}" in segment):
                return 0
            return 1 if segment.partition("}")[2] else 2

        return tuple(rank(s) for s in self.segments)


class Router:
    """Method+path pattern matching for the controller layer.

    Routes are indexed by ``(method, segment count)`` — resolution only
    scans candidates that could possibly match — and each bucket is
    kept ordered most-specific-first (see :meth:`Route.specificity`),
    so registration order can never make one pattern shadow a more
    specific one.
    """

    def __init__(self) -> None:
        self._routes: list[Route] = []
        self._buckets: dict[tuple[str, int], list[Route]] = {}

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(s for s in pattern.strip("/").split("/") if s)
        route = Route(method.upper(), pattern, segments, handler)
        self._routes.append(route)
        bucket = self._buckets.setdefault((route.method, len(segments)), [])
        bucket.append(route)
        # stable sort: equal specificity keeps registration order
        bucket.sort(key=Route.specificity)

    def resolve(self, method: str, path: str) -> tuple[Handler, dict[str, str]]:
        parts = tuple(s for s in path.strip("/").split("/") if s)
        for route in self._buckets.get((method.upper(), len(parts)), ()):
            params = route.match(method.upper(), parts)
            if params is not None:
                return route.handler, params
        allowed = self.allowed_methods(parts)
        if allowed:
            # the path exists under other methods: that is a 405 with an
            # Allow header, not a 404 (both route tables — legacy and
            # /v1/ — share this resolution)
            raise MethodNotAllowedError(
                f"method {method.upper()} not allowed for {path}",
                allowed=allowed,
                params={"method": method, "path": path},
                details=f"allowed methods: {', '.join(sorted(allowed))}",
            )
        raise NotFoundError(
            f"no route for {method.upper()} {path}",
            params={"method": method, "path": path},
        )

    def allowed_methods(self, parts: tuple[str, ...]) -> list[str]:
        """Every method some route would accept this path under."""
        allowed = set()
        for (method, length), bucket in self._buckets.items():
            if length != len(parts):
                continue
            for route in bucket:
                if route.match(method, parts) is not None:
                    allowed.add(method)
                    break
        return sorted(allowed)

    def endpoints(self) -> list[tuple[str, str]]:
        """(method, pattern) pairs in registration order — used to
        assert Table 3 coverage."""
        return [(route.method, route.pattern) for route in self._routes]


def quote_segment(value: str) -> str:
    """URL-encode a value destined for one path segment."""
    return urllib.parse.quote(str(value), safe="")
