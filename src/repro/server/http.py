"""Real HTTP deployment adapter (stdlib-only) on an asyncio server core.

The in-process transport is the default (and the only option exercised
by the offline benchmarks), but Laminar's architecture is a genuine
server-client split; this module lets a :class:`LaminarServer` listen on
a real socket and a client connect to it over HTTP:

* :func:`serve_http` — mount a server on an asyncio event loop running
  on a background thread.  One coroutine per connection replaces the
  previous thread-per-connection ``ThreadingHTTPServer``, so thousands
  of idle keep-alive sockets cost one task each instead of one OS
  thread each.  Dispatch itself is synchronous (SQLite, BLAS), so each
  parsed request hops to a bounded thread pool — that pool is what
  feeds concurrent searches into the server's
  :class:`~repro.search.serving.SearchBatcher` coalescing window, same
  as the threaded front end did.
* :class:`HttpTransport` — a :class:`~repro.net.transport.Transport`
  speaking the same JSON protocol over ``urllib``.  It forwards *all*
  request metadata headers (``Idempotency-Key`` included — previously
  dropped, which silently disabled idempotent replay over real HTTP)
  and surfaces response headers (``Idempotent-Replay``, ``Allow``) on
  the returned :class:`~repro.net.transport.Response`.

Wire protocol: request bodies are JSON (also for GET/DELETE, matching
the in-process transport); the auth token travels as a Bearer header;
an ``Idempotency-Key`` header rides along as request metadata (the v1
write handlers read it, an explicit ``idempotencyKey`` body field
wins); responses are JSON with the dispatch status code plus any
response headers the handler attached.  Response bytes (status line,
header set and order, JSON body) match what the previous
``BaseHTTPRequestHandler`` front end emitted, so clients and recorded
traces see no difference.

Peer disconnects are a fact of life, not an error: a client that drops
the socket mid-request or mid-response used to surface as a spurious
``BrokenPipeError`` traceback from the handler thread; the async core
counts it (``handle.stats()["peerDisconnects"]``) and closes quietly.
"""

from __future__ import annotations

import asyncio
import email.utils
import json
import socket
import sys
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _HTTP_PHRASES
from typing import Any

from repro.errors import TransportError, error_envelope
from repro.net.transport import Request, Response, Transport

#: mirrors ``BaseHTTPRequestHandler.version_string()`` so the Server
#: header is byte-identical to the previous threaded front end
_SERVER_STRING = "LaminarRepro/1.0 Python/" + sys.version.split()[0]

_SUPPORTED_METHODS = frozenset({"GET", "POST", "PUT", "DELETE"})

#: network errors that mean "the peer went away", never a server fault
_PEER_DISCONNECT = (
    ConnectionResetError,
    BrokenPipeError,
    ConnectionAbortedError,
    asyncio.IncompleteReadError,
)


class _BadBody(ValueError):
    """Raised when the request body is not a JSON object."""


def _client_url(host: str, port: int) -> str:
    """Normalize a bound address into a URL a client can connect to.

    Binding to all interfaces reports ``0.0.0.0`` (or ``::``), which is
    not a connectable destination — map it to loopback.  IPv6 literals
    must be bracketed inside a URL.
    """
    if host in ("", "0.0.0.0"):
        host = "127.0.0.1"
    elif host == "::":
        host = "::1"
    if ":" in host and not host.startswith("["):
        host = f"[{host}]"
    return f"http://{host}:{port}"


class _ConnectionStats:
    """Shared front-end counters, exposed via ``HttpServerHandle.stats``."""

    __slots__ = ("connections", "requests", "peer_disconnects", "_lock")

    def __init__(self) -> None:
        self.connections = 0
        self.requests = 0
        self.peer_disconnects = 0
        self._lock = threading.Lock()

    def bump(self, field: str, by: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + by)

    def to_json(self) -> dict[str, int]:
        with self._lock:
            return {
                "connections": self.connections,
                "requests": self.requests,
                "peerDisconnects": self.peer_disconnects,
            }


class _AsyncHttpCore:
    """Per-connection HTTP/1.1 state machine feeding ``laminar.dispatch``.

    Parsing happens on the event loop; the blocking dispatch (SQLite,
    BLAS scoring) runs in ``executor`` so many in-flight requests land
    inside the same ``SearchBatcher`` window.
    """

    def __init__(
        self,
        laminar: Any,
        executor: ThreadPoolExecutor,
        stats: _ConnectionStats,
    ) -> None:
        self.laminar = laminar
        self.executor = executor
        self.stats = stats

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.bump("connections")
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # headers and body leave in separate writes; without
            # TCP_NODELAY Nagle holds the second segment for the peer's
            # delayed ACK, adding ~40ms to every keep-alive round trip
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        try:
            while True:
                keep_open = await self._handle_one(reader, writer)
                if not keep_open:
                    break
        except _PEER_DISCONNECT:
            # client dropped the socket mid-request or mid-response:
            # count it and close quietly — never a traceback
            self.stats.bump("peer_disconnects")
        except asyncio.CancelledError:
            raise
        except Exception:
            pass  # defensive: a broken connection never kills the loop
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; return True to keep the connection open."""
        try:
            raw_line = await reader.readline()
        except ValueError:  # request line over the stream limit
            await self._send_json(
                writer,
                414,
                error_envelope("BadRequest", 414, "request line too long"),
                close=True,
            )
            return False
        if not raw_line or not raw_line.strip():
            return False  # clean close between keep-alive requests
        parts = raw_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            await self._send_json(
                writer,
                400,
                error_envelope("BadRequest", 400, "malformed request line"),
                close=True,
            )
            return False
        method, path, version = parts
        headers = await self._read_headers(reader)
        if headers is None:
            await self._send_json(
                writer,
                400,
                error_envelope("BadRequest", 400, "malformed headers"),
                close=True,
            )
            return False
        # HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close
        connection = headers.get("connection", "").lower()
        keep_alive = version != "HTTP/1.0"
        if connection == "close":
            keep_alive = False
        elif version == "HTTP/1.0" and connection == "keep-alive":
            keep_alive = True
        if method not in _SUPPORTED_METHODS:
            await self._send_json(
                writer,
                501,
                error_envelope(
                    "NotImplemented", 501, f"unsupported method {method!r}"
                ),
                close=True,
            )
            return False
        try:
            body = await self._read_body(reader, headers)
        except _BadBody as exc:
            # standardized envelope (paper §3.2.5) for transport-level
            # rejects; chunked bodies close (framing would desync), a
            # fully-read malformed body keeps the connection alive
            close = bool(headers.get("transfer-encoding"))
            await self._send_json(
                writer,
                400,
                error_envelope("BadRequest", 400, str(exc)),
                close=close,
            )
            return keep_alive and not close
        metadata: dict[str, str] = {}
        idempotency_key = headers.get("idempotency-key")
        if idempotency_key is not None:
            # standard retry-safety header; carried as request metadata
            # (NOT folded into the body — strict v1 read envelopes
            # would reject the extra field), body field wins downstream
            metadata["Idempotency-Key"] = idempotency_key
        if_none_match = headers.get("if-none-match")
        if if_none_match is not None:
            # conditional-read validator for the v1 single-record GETs;
            # metadata for the same reason as Idempotency-Key above
            metadata["If-None-Match"] = if_none_match
        token = None
        auth = headers.get("authorization", "")
        if auth.startswith("Bearer "):
            token = auth[len("Bearer "):].strip()
        request = Request(method, path, body, token, metadata)
        self.stats.bump("requests")
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(
            self.executor, self.laminar.dispatch, request
        )
        await self._send_json(
            writer,
            response.status,
            response.body,
            extra=response.headers,
            close=not keep_alive,
        )
        return keep_alive

    @staticmethod
    async def _read_headers(
        reader: asyncio.StreamReader,
    ) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        for _ in range(128):  # bounded header count
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        return None

    @staticmethod
    async def _read_body(
        reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> dict[str, Any]:
        """Parse the JSON request body; malformed input is a 400, never
        silently coerced to ``{}``."""
        if headers.get("transfer-encoding"):
            # only Content-Length framing is implemented; silently
            # ignoring a chunked body would desynchronize the
            # kept-alive connection (the unread chunks would be parsed
            # as the next request line)
            raise _BadBody(
                "Transfer-Encoding is not supported; send a"
                " Content-Length-framed body"
            )
        length = int(headers.get("content-length") or 0)
        if length == 0:
            return {}
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadBody(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise _BadBody(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        return body

    @staticmethod
    async def _send_json(
        writer: asyncio.StreamWriter,
        status: int,
        body: dict[str, Any],
        extra: dict[str, str] | None = None,
        close: bool = False,
    ) -> None:
        # RFC 9110 §15.4.5: a 304 carries no content — the client keeps
        # its cached representation; everything else is a JSON document
        payload = b"" if status == 304 else json.dumps(body).encode("utf-8")
        phrase = _HTTP_PHRASES.get(status, "")
        # header names, values and order mirror the BaseHTTPRequestHandler
        # front end this core replaced — response bytes stay identical
        lines = [
            f"HTTP/1.1 {status} {phrase}",
            f"Server: {_SERVER_STRING}",
            f"Date: {email.utils.formatdate(usegmt=True)}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
        ]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        if close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head)
        writer.write(payload)
        await writer.drain()


class HttpServerHandle:
    """A running HTTP deployment; use as a context manager.

    ``host``/``port`` are the bound address; :attr:`url` is normalized
    to something a client can actually connect to (``0.0.0.0`` → the
    loopback address, IPv6 literals bracketed).
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        server: asyncio.base_events.Server,
        executor: ThreadPoolExecutor,
        stats: _ConnectionStats,
    ) -> None:
        self._loop = loop
        self._thread = thread
        self._server = server
        self._executor = executor
        self._stats = stats
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    @property
    def url(self) -> str:
        return _client_url(self.host, self.port)

    def stats(self) -> dict[str, int]:
        """Front-end counters (connections, requests, peer disconnects)."""
        return self._stats.to_json()

    def shutdown(self) -> None:
        loop = self._loop

        async def _stop() -> None:
            self._server.close()
            await self._server.wait_closed()
            # open keep-alive connections hold one task each; cancel
            # them so the loop can drain instead of waiting forever
            current = asyncio.current_task()
            for task in asyncio.all_tasks():
                if task is not current:
                    task.cancel()

        if loop.is_running():
            asyncio.run_coroutine_threadsafe(_stop(), loop).result(timeout=5.0)
            loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=5.0)
        if not loop.is_closed():
            loop.close()
        self._executor.shutdown(wait=False)

    def __enter__(self) -> "HttpServerHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def serve_http(
    laminar_server: Any,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: int = 32,
) -> HttpServerHandle:
    """Serve ``laminar_server`` over HTTP on a background event loop.

    ``port=0`` picks a free port; the handle exposes the bound, client-
    usable URL.  ``workers`` bounds the dispatch thread pool — the
    number of requests that may block in SQLite/BLAS at once; parsing
    and socket I/O stay on the event loop regardless, so idle keep-alive
    connections are effectively free.
    """
    stats = _ConnectionStats()
    executor = ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="laminar-http"
    )
    core = _AsyncHttpCore(laminar_server, executor, stats)
    loop = asyncio.new_event_loop()
    started: list[asyncio.base_events.Server] = []
    ready = threading.Event()
    failure: list[BaseException] = []

    async def _start() -> None:
        try:
            server = await asyncio.start_server(
                core.handle_connection, host, port
            )
            started.append(server)
        except BaseException as exc:  # bind failures propagate to caller
            failure.append(exc)
        finally:
            ready.set()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.create_task(_start())
        loop.run_forever()
        # drain cancelled connection tasks after stop()
        pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )

    thread = threading.Thread(
        target=_run, name="laminar-http-loop", daemon=True
    )
    thread.start()
    ready.wait(timeout=10.0)
    if failure:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise failure[0]
    return HttpServerHandle(loop, thread, started[0], executor, stats)


class HttpTransport(Transport):
    """Client-side transport speaking the Laminar JSON protocol over HTTP.

    Every entry in ``request.headers`` is forwarded as a real HTTP
    header (the in-process transport always passed them through; the
    HTTP path used to drop them, so an ``Idempotency-Key`` never reached
    the server and idempotent replay silently did not work over real
    sockets).  Response headers come back on ``Response.headers`` so
    callers can observe e.g. ``Idempotent-Replay: true``.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, request: Request) -> Response:
        payload = json.dumps(request.body).encode("utf-8")
        http_request = urllib.request.Request(
            self.base_url + request.path,
            data=payload,
            method=request.method,
            headers={"Content-Type": "application/json"},
        )
        for name, value in request.headers.items():
            http_request.add_header(name, value)
        if request.token:
            http_request.add_header("Authorization", f"Bearer {request.token}")
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as reply:
                return Response(
                    reply.status,
                    json.loads(reply.read().decode()),
                    dict(reply.headers.items()),
                )
        except urllib.error.HTTPError as exc:
            try:
                raw = exc.read()
                # a 304 (conditional-read hit) legitimately has no body
                body = json.loads(raw.decode()) if raw else {}
            except Exception:
                body = error_envelope("InternalError", None, str(exc))
            return Response(exc.code, body, dict(exc.headers.items()))
        except urllib.error.URLError as exc:
            raise TransportError(
                f"cannot reach Laminar server at {self.base_url}",
                params={"url": self.base_url},
                details=str(exc),
            ) from exc
