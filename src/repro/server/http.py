"""Real HTTP deployment adapter (stdlib-only).

The in-process transport is the default (and the only option exercised
by the offline benchmarks), but Laminar's architecture is a genuine
server-client split; this module lets a :class:`LaminarServer` listen on
a real socket and a client connect to it over HTTP:

* :func:`serve_http` — mount a server on a ``ThreadingHTTPServer``.
* :class:`HttpTransport` — a :class:`~repro.net.transport.Transport`
  speaking the same JSON protocol over ``urllib``.

Wire protocol: request bodies are JSON (also for GET/DELETE, matching
the in-process transport); the auth token travels as a Bearer header;
responses are JSON with the dispatch status code.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import TransportError
from repro.net.transport import Request, Response, Transport


class _LaminarHTTPHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests into server.dispatch calls."""

    server_version = "LaminarRepro/1.0"
    #: injected by serve_http
    laminar = None

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return body if isinstance(body, dict) else {}

    def _token(self) -> str | None:
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            return header[len("Bearer "):].strip()
        return None

    def _handle(self, method: str) -> None:
        request = Request(method, self.path, self._read_body(), self._token())
        response = self.laminar.dispatch(request)
        payload = json.dumps(response.body).encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request logging (tests run many requests)."""


class HttpServerHandle:
    """A running HTTP deployment; use as a context manager."""

    def __init__(self, httpd: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._httpd = httpd
        self._thread = thread
        self.host, self.port = httpd.server_address[0], httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "HttpServerHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def serve_http(
    laminar_server: Any, host: str = "127.0.0.1", port: int = 0
) -> HttpServerHandle:
    """Serve ``laminar_server`` over HTTP on a background thread.

    ``port=0`` picks a free port; the handle exposes the bound URL.
    """
    handler = type(
        "_BoundHandler", (_LaminarHTTPHandler,), {"laminar": laminar_server}
    )
    httpd = ThreadingHTTPServer((host, port), handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return HttpServerHandle(httpd, thread)


class HttpTransport(Transport):
    """Client-side transport speaking the Laminar JSON protocol over HTTP."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, request: Request) -> Response:
        payload = json.dumps(request.body).encode("utf-8")
        http_request = urllib.request.Request(
            self.base_url + request.path,
            data=payload,
            method=request.method,
            headers={"Content-Type": "application/json"},
        )
        if request.token:
            http_request.add_header("Authorization", f"Bearer {request.token}")
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as reply:
                return Response(reply.status, json.loads(reply.read().decode()))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except Exception:
                body = {"error": "InternalError", "message": str(exc)}
            return Response(exc.code, body)
        except urllib.error.URLError as exc:
            raise TransportError(
                f"cannot reach Laminar server at {self.base_url}",
                params={"url": self.base_url},
                details=str(exc),
            ) from exc
