"""Real HTTP deployment adapter (stdlib-only).

The in-process transport is the default (and the only option exercised
by the offline benchmarks), but Laminar's architecture is a genuine
server-client split; this module lets a :class:`LaminarServer` listen on
a real socket and a client connect to it over HTTP:

* :func:`serve_http` — mount a server on a ``ThreadingHTTPServer``.
* :class:`HttpTransport` — a :class:`~repro.net.transport.Transport`
  speaking the same JSON protocol over ``urllib``.

Wire protocol: request bodies are JSON (also for GET/DELETE, matching
the in-process transport); the auth token travels as a Bearer header;
an ``Idempotency-Key`` header rides along as request metadata (the v1
write handlers read it, an explicit ``idempotencyKey`` body field
wins); responses are JSON with the dispatch status code plus any
response headers the handler attached (e.g. ``Allow`` on a 405).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import TransportError
from repro.net.transport import Request, Response, Transport


class _BadBody(ValueError):
    """Raised when the request body is not a JSON object."""


class _LaminarHTTPHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests into server.dispatch calls.

    Speaks HTTP/1.1 so connections persist across requests (every
    response carries an explicit ``Content-Length``) — benchmark and
    high-throughput clients reuse one socket instead of paying a TCP
    handshake per call.  The handler itself never serializes dispatch:
    each connection runs on its own ``ThreadingHTTPServer`` thread, and
    concurrent search requests coalesce in the server's micro-batcher.
    """

    server_version = "LaminarRepro/1.0"
    protocol_version = "HTTP/1.1"
    #: headers and body leave in separate writes; without TCP_NODELAY
    #: Nagle holds the second segment for the peer's delayed ACK, adding
    #: ~40ms to every keep-alive round trip
    disable_nagle_algorithm = True
    #: injected by serve_http
    laminar = None

    def _read_body(self) -> dict[str, Any]:
        """Parse the JSON request body; malformed input is a 400, never
        silently coerced to ``{}``."""
        if self.headers.get("Transfer-Encoding"):
            # only Content-Length framing is implemented; silently
            # ignoring a chunked body would desynchronize the
            # kept-alive connection (the unread chunks would be parsed
            # as the next request line)
            self.close_connection = True
            raise _BadBody(
                "Transfer-Encoding is not supported; send a"
                " Content-Length-framed body"
            )
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadBody(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise _BadBody(
                f"request body must be a JSON object, got {type(body).__name__}"
            )
        return body

    def _token(self) -> str | None:
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            return header[len("Bearer "):].strip()
        return None

    def _send_json(
        self,
        status: int,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # advertise the teardown (e.g. an unreadable chunked body)
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)

    def _handle(self, method: str) -> None:
        try:
            body = self._read_body()
        except _BadBody as exc:
            # standardized envelope (paper §3.2.5) for transport-level
            # rejects; the body was fully read, so keep-alive survives
            self._send_json(
                400,
                {"error": "BadRequest", "code": 400, "message": str(exc)},
            )
            return
        headers = {}
        idempotency_key = self.headers.get("Idempotency-Key")
        if idempotency_key is not None:
            # standard retry-safety header; carried as request metadata
            # (NOT folded into the body — strict v1 read envelopes
            # would reject the extra field), body field wins downstream
            headers["Idempotency-Key"] = idempotency_key
        request = Request(method, self.path, body, self._token(), headers)
        response = self.laminar.dispatch(request)
        self._send_json(response.status, response.body, response.headers)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request logging (tests run many requests)."""


class HttpServerHandle:
    """A running HTTP deployment; use as a context manager."""

    def __init__(self, httpd: ThreadingHTTPServer, thread: threading.Thread) -> None:
        self._httpd = httpd
        self._thread = thread
        self.host, self.port = httpd.server_address[0], httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "HttpServerHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def serve_http(
    laminar_server: Any, host: str = "127.0.0.1", port: int = 0
) -> HttpServerHandle:
    """Serve ``laminar_server`` over HTTP on a background thread.

    ``port=0`` picks a free port; the handle exposes the bound URL.
    """
    handler = type(
        "_BoundHandler", (_LaminarHTTPHandler,), {"laminar": laminar_server}
    )
    httpd = ThreadingHTTPServer((host, port), handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return HttpServerHandle(httpd, thread)


class HttpTransport(Transport):
    """Client-side transport speaking the Laminar JSON protocol over HTTP."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, request: Request) -> Response:
        payload = json.dumps(request.body).encode("utf-8")
        http_request = urllib.request.Request(
            self.base_url + request.path,
            data=payload,
            method=request.method,
            headers={"Content-Type": "application/json"},
        )
        if request.token:
            http_request.add_header("Authorization", f"Bearer {request.token}")
        try:
            with urllib.request.urlopen(
                http_request, timeout=self.timeout
            ) as reply:
                return Response(reply.status, json.loads(reply.read().decode()))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except Exception:
                body = {"error": "InternalError", "message": str(exc)}
            return Response(exc.code, body)
        except urllib.error.URLError as exc:
            raise TransportError(
                f"cannot reach Laminar server at {self.base_url}",
                params={"url": self.base_url},
                details=str(exc),
            ) from exc
