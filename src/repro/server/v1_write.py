"""The v1 write surface: one core behind both API generations.

Mirror of the search redesign (:mod:`repro.server.v1`): every
registration and removal — the typed ``PUT``/``DELETE``/bulk ``/v1/``
routes *and* the legacy Table-3 ``/pe/add`` / ``/workflow/add`` /
``remove`` routes — runs through :func:`execute_write`, a single
serialized write core.  The legacy handlers are thin adapters that keep
their historical validation, response bodies and error envelopes
byte-identical while sharing the exact same decision tree.

What the core adds over the legacy path:

* **Idempotency keys** — a write carrying ``idempotencyKey`` (body
  field, or the HTTP ``Idempotency-Key`` header carried as request
  metadata; the body field wins) records its response in the DAO's
  ``write_receipts`` table keyed by ``(user, key)`` together with a
  request *fingerprint*.  Replaying the same key with the same request
  returns the stored :class:`~repro.server.schema.WriteResponse`
  verbatim without touching the registry (mutation counter unchanged —
  the observable no-op); the same key fronting a *different* request is
  a 409 ``IdempotencyConflict``.
* **Conditional writes** — ``ifVersion`` pins the target's per-record
  ``revision`` (0 = "must not exist yet"); for bulk, the registry
  mutation counter.  A mismatch is a 412 ``PreconditionFailed`` and the
  registry is untouched.
* **Bulk registration** — ``POST /v1/registry/{user}/pes:bulk`` and
  ``POST /v1/registry/{user}/workflows:bulk`` land any number of
  records with one DAO ``executemany`` transaction, one index
  ``add_many`` per shard kind and one shard persist (see
  ``RegistryService.register_pes_bulk`` /
  ``register_workflows_bulk``).

All writes serialize on ``LaminarServer.write_lock``: the
receipt-check → conditional-check → service-write → receipt-store
sequence is atomic with respect to every other API write, which is what
makes N concurrent replays of one key resolve to exactly one registry
write, and ``ifVersion`` races resolve to exactly one winner.  Reads
(the search hot path) never take this lock.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.errors import (
    IdempotencyError,
    NotFoundError,
    PreconditionFailedError,
    ValidationError,
)
from repro.net.transport import Request, Response
from repro.registry.dao import RECEIPT_PENDING
from repro.registry.entities import PERecord, UserRecord, WorkflowRecord
from repro.server.controllers import BaseController
from repro.server.schema import (
    BulkRegisterRequest,
    BulkRegisterWorkflowsRequest,
    DeleteRequest,
    RegisterPERequest,
    RegisterWorkflowRequest,
    WriteResponse,
    parse_idempotency_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.app import LaminarServer


# ---------------------------------------------------------------------------
# Shared record preparation (summarize/embed fallbacks, legacy-identical)
# ---------------------------------------------------------------------------
def build_pe_record(
    app: "LaminarServer",
    *,
    name: str,
    code: str,
    description: str = "",
    origin: str = "user",
    source: str = "",
    imports: list[str] | None = None,
    desc_embedding: Any = None,
    code_embedding: Any = None,
) -> PERecord:
    """Assemble a PE record with the server-side fallbacks of §3.1.1.

    Exactly the legacy controller's preparation sequence: an empty
    description is auto-summarized (origin becomes ``auto``), a missing
    description embedding is computed from the final description, and a
    missing code embedding from the source text (falling back to the
    name) so the code shard always has a row for every registered PE.
    """
    if not description:
        description = app.models.summarizer.summarize(source or name, name=name)
        origin = "auto"
    if desc_embedding is None:
        desc_embedding = app.semantic.embed_description(description)
    else:
        desc_embedding = np.asarray(desc_embedding, dtype=np.float32)
    if code_embedding is None:
        code_embedding = app.code_search.embed_code(source or name)
    else:
        code_embedding = np.asarray(code_embedding, dtype=np.float32)
    return PERecord(
        pe_id=0,
        pe_name=name,
        description=description,
        description_origin=origin,
        pe_code=code,
        pe_source=source,
        pe_imports=list(imports or []),
        code_embedding=code_embedding,
        desc_embedding=desc_embedding,
    )


def build_workflow_record(
    app: "LaminarServer",
    *,
    entry_point: str,
    code: str,
    workflow_name: str = "",
    description: str = "",
    source: str = "",
    pe_ids: list[int] | None = None,
    desc_embedding: Any = None,
) -> WorkflowRecord:
    """Assemble a workflow record (legacy-identical embedding fallback)."""
    if desc_embedding is None:
        desc_embedding = app.semantic.embed_description(
            description or entry_point
        )
    else:
        desc_embedding = np.asarray(desc_embedding, dtype=np.float32)
    return WorkflowRecord(
        workflow_id=0,
        workflow_name=workflow_name or entry_point,
        entry_point=entry_point,
        description=description,
        workflow_code=code,
        workflow_source=source,
        pe_ids=[int(pe_id) for pe_id in (pe_ids or [])],
        desc_embedding=desc_embedding,
    )


def write_fingerprint(
    op: str, kind: str, target: str, body: dict[str, Any] | None
) -> str:
    """Canonical request digest bound to an idempotency key.

    Hashes the operation identity (op, kind, path target) plus the wire
    body *minus* ``idempotencyKey`` itself — so the key arriving as a
    header vs. a body field fingerprints identically, and any other
    difference (code, description, ifVersion, …) is a detectable
    conflict.
    """
    content = {
        key: value
        for key, value in (body or {}).items()
        if key != "idempotencyKey"
    }
    raw = json.dumps(
        [op, kind, target, content], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha1(raw.encode("utf-8")).hexdigest()


def _fingerprint_if_keyed(
    idempotency_key: str | None,
    op: str,
    kind: str,
    target: str,
    request: Request,
) -> str:
    """Fingerprint the request only when an idempotency key rides along.

    Without a key there is no receipt to bind, and canonicalizing a
    bulk body (potentially thousands of embedded floats) would be pure
    overhead on the write hot path.
    """
    if idempotency_key is None:
        return ""
    return write_fingerprint(op, kind, target, request.body)


# ---------------------------------------------------------------------------
# The write command + outcome
# ---------------------------------------------------------------------------
@dataclass
class WriteCommand:
    """One validated, prepared write for :func:`execute_write`.

    Built by the v1 controller (from the typed envelopes) and by the
    legacy adapters (from their historical parsing) alike.
    """

    action: str  # register | delete | bulk-register
    kind: str  # pe | workflow
    record: PERecord | WorkflowRecord | None = None  # single register
    records: list | None = None  # bulk register
    target_id: int | None = None  # delete by id (legacy adapters)
    target_name: str | None = None  # delete by name
    if_version: int | None = None
    idempotency_key: str | None = None
    fingerprint: str = ""
    #: v1 PUT semantics: when the caller already holds a record under
    #: the target name with *different* content, the PUT supersedes
    #: that binding (upsert) instead of §3.1-forking a second record
    #: under the same name.  The legacy add routes keep the historical
    #: register-only behaviour (False).
    upsert: bool = False


@dataclass
class WriteOutcome:
    """What a write produced: the v1 envelope plus adapter material.

    ``status``/``body`` are the versioned response (stored verbatim in
    the receipt when an idempotency key rides along); ``records`` are
    the stored entity objects the legacy adapters re-shape into their
    historical bodies.
    """

    status: int
    body: dict[str, Any]
    records: list = field(default_factory=list)
    created: bool = False
    replayed: bool = False

    def response(self) -> Response:
        headers = {"Idempotent-Replay": "true"} if self.replayed else {}
        return Response(self.status, self.body, headers)


# ---------------------------------------------------------------------------
# The core
# ---------------------------------------------------------------------------
def _current_by_name(registry, user: UserRecord, kind: str, name: str):
    """The caller's record under ``name``, or ``None`` (no 404 here)."""
    try:
        if kind == "pe":
            return registry.get_pe_by_name(user, name)
        return registry.get_workflow_by_name(user, name)
    except NotFoundError:
        return None


def _check_revision(
    if_version: int | None, actual: int, *, kind: str, name: str
) -> None:
    """412 unless ``ifVersion`` (when given) equals the live revision.

    ``actual`` is 0 when the record does not exist, so ``ifVersion: 0``
    reads "create-only" and any positive value pins one revision.
    """
    if if_version is None or if_version == actual:
        return
    raise PreconditionFailedError(
        f"ifVersion {if_version} does not match the current revision "
        f"{actual} of {kind} {name!r}",
        params={"ifVersion": if_version, "revision": actual, "name": name},
        details="re-read the record and retry with its current revision",
    )


def _embedding_equal(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    return a.shape == b.shape and bool(np.array_equal(a, b))


def _metadata_equal(kind: str, a, b) -> bool:
    """Whether two same-identity records carry identical metadata.

    Identity (name + code digest) already matched; this decides whether
    a PUT is a pure no-op or an in-place metadata revision.
    """
    if kind == "pe":
        return (
            a.description == b.description
            and a.description_origin == b.description_origin
            and a.pe_source == b.pe_source
            and list(a.pe_imports) == list(b.pe_imports)
            and _embedding_equal(a.desc_embedding, b.desc_embedding)
            and _embedding_equal(a.code_embedding, b.code_embedding)
        )
    return (
        a.workflow_name == b.workflow_name
        and a.description == b.description
        and a.workflow_source == b.workflow_source
        and list(a.pe_ids) == list(b.pe_ids)
        and _embedding_equal(a.desc_embedding, b.desc_embedding)
    )


def _register_single(
    app: "LaminarServer", user: UserRecord, cmd: WriteCommand
) -> WriteOutcome:
    registry = app.registry
    record = cmd.record
    name = record.pe_name if cmd.kind == "pe" else record.entry_point
    # the by-name lookup is only needed for conditional or upsert
    # semantics — the unconditional legacy path must not pay a second
    # name scan on every registration
    current = None
    if cmd.if_version is not None or cmd.upsert:
        current = _current_by_name(registry, user, cmd.kind, name)
    _check_revision(
        cmd.if_version,
        0 if current is None else current.revision,
        kind=cmd.kind,
        name=name,
    )
    # v1 PUT semantics against an existing binding: changed identity
    # (code) supersedes the record, changed metadata revises it in
    # place, identical content is the §3.1 dedup no-op
    supersede = revise = False
    if cmd.upsert and current is not None:
        if current.identity_key() != record.identity_key():
            supersede = True
        elif not _metadata_equal(cmd.kind, current, record):
            revise = True
    if cmd.kind == "pe":
        if supersede:
            stored, created = registry.upsert_pe(user, current, record)
        elif revise:
            stored, created = registry.revise_pe(user, current, record)
        else:
            stored, created = registry.register_pe(user, record)
    else:
        if supersede:
            stored, created = registry.upsert_workflow(user, current, record)
        elif revise:
            stored, created = registry.revise_workflow(user, current, record)
        else:
            stored, created = registry.register_workflow(user, record)
    item = {**stored.to_json(), "revision": stored.revision}
    item["created"] = created
    status = 201 if created else 200
    body = WriteResponse(
        op="register",
        kind=cmd.kind,
        status=status,
        items=[item],
        registry_version=registry.dao.mutation_counter(),
        idempotency_key=cmd.idempotency_key,
    ).to_json()
    return WriteOutcome(status, body, records=[stored], created=created)


def _check_bulk_version(registry, if_version: int | None) -> None:
    """412 unless ``ifVersion`` (when given) equals the mutation counter."""
    if if_version is None:
        return
    counter = registry.dao.mutation_counter()
    if counter != if_version:
        raise PreconditionFailedError(
            f"ifVersion {if_version} does not match the registry "
            f"mutation counter {counter}",
            params={"ifVersion": if_version, "registryVersion": counter},
            details="bulk ifVersion pins the registry mutation counter",
        )


def _register_bulk(
    app: "LaminarServer", user: UserRecord, cmd: WriteCommand
) -> WriteOutcome:
    registry = app.registry
    _check_bulk_version(registry, cmd.if_version)
    if cmd.kind == "pe":
        stored, created = registry.register_pes_bulk(user, list(cmd.records))
    else:
        stored, created = registry.register_workflows_bulk(
            user, list(cmd.records)
        )
    items = [
        {**record.to_json(), "revision": record.revision, "created": was_created}
        for record, was_created in zip(stored, created)
    ]
    status = 201 if any(created) else 200
    body = WriteResponse(
        op="bulk-register",
        kind=cmd.kind,
        status=status,
        items=items,
        registry_version=registry.dao.mutation_counter(),
        idempotency_key=cmd.idempotency_key,
    ).to_json()
    return WriteOutcome(status, body, records=list(stored), created=any(created))


def _delete(
    app: "LaminarServer", user: UserRecord, cmd: WriteCommand
) -> WriteOutcome:
    registry = app.registry
    if cmd.kind == "pe":
        if cmd.target_name is not None:
            record = registry.get_pe_by_name(user, cmd.target_name)
        else:
            record = registry.get_pe_by_id(user, cmd.target_id)
        name = record.pe_name
        _check_revision(cmd.if_version, record.revision, kind="pe", name=name)
        registry.remove_pe_record(user, record)
    else:
        if cmd.target_name is not None:
            record = registry.get_workflow_by_name(user, cmd.target_name)
        else:
            record = registry.get_workflow_by_id(user, cmd.target_id)
        name = record.entry_point
        _check_revision(
            cmd.if_version, record.revision, kind="workflow", name=name
        )
        registry.remove_workflow_record(user, record)
    body = WriteResponse(
        op="delete",
        kind=cmd.kind,
        status=200,
        items=[],
        removed=True,
        registry_version=registry.dao.mutation_counter(),
        idempotency_key=cmd.idempotency_key,
    ).to_json()
    return WriteOutcome(200, body, records=[record])


def _receipt_outcome(
    receipt: tuple[str, int, dict], fingerprint: str, key: str
) -> WriteOutcome:
    """Resolve a stored receipt: replay on a match, 409 on a mismatch."""
    stored_fingerprint, status, body = receipt
    if status == RECEIPT_PENDING:
        # another writer (possibly another process) holds the key right
        # now; the caller should retry once its write lands
        raise IdempotencyError(
            f"a write with idempotency key {key!r} is still in progress",
            params={"idempotencyKey": key},
            details="retry after the in-flight write completes",
        )
    if stored_fingerprint != fingerprint:
        raise IdempotencyError(
            f"idempotency key {key!r} was already used by a different request",
            params={"idempotencyKey": key},
            details="replaying a key requires the identical request body "
            "and target",
        )
    return WriteOutcome(status, body, replayed=True)


def _try_replay(
    app: "LaminarServer",
    user: UserRecord,
    key: str | None,
    fingerprint: str,
) -> WriteOutcome | None:
    """Receipt fast path, taken *before* any record preparation.

    Replays must not re-pay the summarize/embed model work the original
    write did — a receipt needs only the key and the wire fingerprint.
    Receipts are immutable once stored, so a hit here (outside the
    write lock) is authoritative; a miss falls through to the locked
    check inside :func:`execute_write`.
    """
    if key is None:
        return None
    receipt = app.registry.dao.get_write_receipt(user.user_id, key)
    if receipt is None:
        return None
    if receipt[1] == RECEIPT_PENDING:
        # another writer holds the key: fall through to execute_write,
        # which waits for the outcome instead of erroring eagerly
        return None
    return _receipt_outcome(receipt, fingerprint, key)


def _effective_idempotency_key(
    request: Request, parsed: str | None
) -> str | None:
    """The body's ``idempotencyKey`` wins; else the transport's
    ``Idempotency-Key`` header (validated with the same rules)."""
    if parsed is not None:
        return parsed
    header = (request.headers or {}).get("Idempotency-Key")
    if header is None:
        return None
    return parse_idempotency_key({"idempotencyKey": header})


def _dispatch_write(
    app: "LaminarServer", user: UserRecord, cmd: WriteCommand
) -> WriteOutcome:
    if cmd.action == "register":
        return _register_single(app, user, cmd)
    if cmd.action == "bulk-register":
        return _register_bulk(app, user, cmd)
    if cmd.action == "delete":
        return _delete(app, user, cmd)
    # defensive: commands are built by this module's callers
    raise ValidationError(
        f"unknown write action {cmd.action!r}",
        params={"action": cmd.action},
    )


#: how long a claim loser waits for the in-flight winner's outcome, and
#: how often it re-reads the receipt while waiting
_CLAIM_WAIT = 2.0
_CLAIM_POLL = 0.005


def execute_write(
    app: "LaminarServer", user: UserRecord, cmd: WriteCommand
) -> WriteOutcome:
    """Run one registry write under the server's write serialization.

    Order matters and is atomic under ``app.write_lock``:

    1. **key claim** — a keyed write first claims ``(user,
       idempotencyKey)`` via the DAO's ``INSERT OR IGNORE``.  The claim
       is the *cross-process* serialization point: SQLite arbitrates
       the insert across every process sharing the file, so exactly one
       writer in a fleet wins a key.  A lost claim resolves to the
       stored receipt — matching fingerprint returns the recorded
       response verbatim (replay = no-op), a different fingerprint is a
       409; a still-pending claim is polled briefly (the winner is
       mid-write in another process) before giving up with a 409;
    2. **conditional check + write** — ``ifVersion`` verified against
       the live revision (or the mutation counter for bulk) in the same
       critical section as the service write, so concurrent CAS races
       resolve to exactly one winner;
    3. **receipt finalize** — only *successful* responses are recorded;
       a write that raises releases its claim so the key stays
       retryable (errors are retryable by design: a 412/409/404 must
       re-evaluate on the next attempt, not replay).

    Keyed writes also drive receipt garbage collection: when the app
    sets ``receipt_ttl``/``receipt_cap``, each keyed write prunes
    expired/overflow receipts, so idempotency storage stays bounded
    without a background sweeper.
    """
    registry = app.registry
    with app.write_lock:
        if cmd.idempotency_key is None:
            return _dispatch_write(app, user, cmd)
        dao = registry.dao
        key = cmd.idempotency_key
        deadline = time.monotonic() + _CLAIM_WAIT
        while not dao.claim_write_receipt(
            user.user_id, key, cmd.fingerprint, time.time()
        ):
            receipt = dao.get_write_receipt(user.user_id, key)
            if receipt is None:
                continue  # claim released between our attempt and read
            if receipt[1] != RECEIPT_PENDING:
                return _receipt_outcome(receipt, cmd.fingerprint, key)
            if time.monotonic() >= deadline:
                # the winner (another process) is still mid-write;
                # _receipt_outcome turns a pending receipt into a 409
                return _receipt_outcome(receipt, cmd.fingerprint, key)
            # Deliberate sleep under the write lock: the receipt holder
            # is another *process*, so polling under our in-process
            # write lock cannot deadlock with it, and releasing and
            # reacquiring would let local writers starve the poller.
            # Runtime twin: lockwatch blocking_allow=("v1_write.py",).
            time.sleep(_CLAIM_POLL)  # lint: disable=RPR002 — cross-process claim poll
        try:
            outcome = _dispatch_write(app, user, cmd)
        except BaseException:
            dao.release_write_receipt(user.user_id, key)
            raise
        dao.finalize_write_receipt(
            user.user_id,
            key,
            cmd.fingerprint,
            outcome.status,
            outcome.body,
            time.time(),
        )
        if app.receipt_ttl is not None or app.receipt_cap is not None:
            dao.prune_write_receipts(
                time.time(), ttl=app.receipt_ttl, cap=app.receipt_cap
            )
        return outcome


# ---------------------------------------------------------------------------
# The /v1/ write controller
# ---------------------------------------------------------------------------
class V1WriteController(BaseController):
    """Handlers behind the ``/v1/`` write route table."""

    def put_pe(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        req = RegisterPERequest.from_json(request.body, name=params["name"])
        key = _effective_idempotency_key(request, req.idempotency_key)
        fingerprint = _fingerprint_if_keyed(
            key, "register", "pe", params["name"], request
        )
        replay = _try_replay(self.app, user, key, fingerprint)
        if replay is not None:
            return replay.response()
        record = build_pe_record(
            self.app,
            name=req.name,
            code=req.code,
            description=req.description,
            origin=req.description_origin,
            source=req.source,
            imports=req.imports,
            desc_embedding=req.desc_embedding,
            code_embedding=req.code_embedding,
        )
        cmd = WriteCommand(
            action="register",
            kind="pe",
            record=record,
            if_version=req.if_version,
            idempotency_key=key,
            fingerprint=fingerprint,
            upsert=True,
        )
        return execute_write(self.app, user, cmd).response()

    def put_workflow(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        req = RegisterWorkflowRequest.from_json(
            request.body, name=params["name"]
        )
        key = _effective_idempotency_key(request, req.idempotency_key)
        fingerprint = _fingerprint_if_keyed(
            key, "register", "workflow", params["name"], request
        )
        replay = _try_replay(self.app, user, key, fingerprint)
        if replay is not None:
            return replay.response()
        record = build_workflow_record(
            self.app,
            entry_point=req.entry_point,
            code=req.code,
            workflow_name=req.workflow_name,
            description=req.description,
            source=req.source,
            pe_ids=req.pe_ids,
            desc_embedding=req.desc_embedding,
        )
        cmd = WriteCommand(
            action="register",
            kind="workflow",
            record=record,
            if_version=req.if_version,
            idempotency_key=key,
            fingerprint=fingerprint,
            upsert=True,
        )
        return execute_write(self.app, user, cmd).response()

    def bulk_pes(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        req = BulkRegisterRequest.from_json(request.body)
        key = _effective_idempotency_key(request, req.idempotency_key)
        fingerprint = _fingerprint_if_keyed(
            key, "bulk-register", "pe", "pes:bulk", request
        )
        # the fast paths matter most here: neither a replay nor a
        # stale-CAS batch may pay the per-item summarize/embed model
        # work just to discard it.  Both are advisory (the authoritative
        # receipt and counter checks re-run inside the write lock).
        replay = _try_replay(self.app, user, key, fingerprint)
        if replay is not None:
            return replay.response()
        _check_bulk_version(self.app.registry, req.if_version)
        records = [
            build_pe_record(
                self.app,
                name=item.name,
                code=item.code,
                description=item.description,
                origin=item.description_origin,
                source=item.source,
                imports=item.imports,
                desc_embedding=item.desc_embedding,
                code_embedding=item.code_embedding,
            )
            for item in req.items
        ]
        cmd = WriteCommand(
            action="bulk-register",
            kind="pe",
            records=records,
            if_version=req.if_version,
            idempotency_key=key,
            fingerprint=fingerprint,
        )
        return execute_write(self.app, user, cmd).response()

    def bulk_workflows(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        user = self.authenticated_user(request, params)
        req = BulkRegisterWorkflowsRequest.from_json(request.body)
        key = _effective_idempotency_key(request, req.idempotency_key)
        fingerprint = _fingerprint_if_keyed(
            key, "bulk-register", "workflow", "workflows:bulk", request
        )
        # same fast-path ordering as bulk_pes: replay and stale-CAS
        # checks run before any per-item embed work
        replay = _try_replay(self.app, user, key, fingerprint)
        if replay is not None:
            return replay.response()
        _check_bulk_version(self.app.registry, req.if_version)
        records = [
            build_workflow_record(
                self.app,
                entry_point=item.entry_point,
                code=item.code,
                workflow_name=item.workflow_name,
                description=item.description,
                source=item.source,
                pe_ids=item.pe_ids,
                desc_embedding=item.desc_embedding,
            )
            for item in req.items
        ]
        cmd = WriteCommand(
            action="bulk-register",
            kind="workflow",
            records=records,
            if_version=req.if_version,
            idempotency_key=key,
            fingerprint=fingerprint,
        )
        return execute_write(self.app, user, cmd).response()

    def delete_pe(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        req = DeleteRequest.from_json(request.body)
        key = _effective_idempotency_key(request, req.idempotency_key)
        cmd = WriteCommand(
            action="delete",
            kind="pe",
            target_name=params["name"],
            if_version=req.if_version,
            idempotency_key=key,
            fingerprint=_fingerprint_if_keyed(
                key, "delete", "pe", params["name"], request
            ),
        )
        return execute_write(self.app, user, cmd).response()

    def delete_workflow(
        self, request: Request, params: dict[str, str]
    ) -> Response:
        user = self.authenticated_user(request, params)
        req = DeleteRequest.from_json(request.body)
        key = _effective_idempotency_key(request, req.idempotency_key)
        cmd = WriteCommand(
            action="delete",
            kind="workflow",
            target_name=params["name"],
            if_version=req.if_version,
            idempotency_key=key,
            fingerprint=_fingerprint_if_keyed(
                key, "delete", "workflow", params["name"], request
            ),
        )
        return execute_write(self.app, user, cmd).response()
