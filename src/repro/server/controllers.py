"""Controller layer (paper §3.2.1): one controller per system part.

Controllers translate requests into service-layer calls and JSON
responses.  They own *no* business logic — ownership rules live in
:class:`~repro.registry.service.RegistryService`, enactment in the
engine, ranking in the search package.

The endpoint set matches Table 3 of the paper exactly; see
``LaminarServer._install_routes`` for the wiring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.engine import ExecutionRequest
from repro.errors import AuthenticationError, ValidationError
from repro.net.transport import Request, Response
from repro.registry.entities import UserRecord
from repro.serialization.imports import merge_requirements

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.app import LaminarServer


class BaseController:
    """Common helpers: authentication and parameter parsing."""

    def __init__(self, app: "LaminarServer") -> None:
        self.app = app

    # ------------------------------------------------------------------
    def authenticated_user(
        self, request: Request, params: dict[str, str]
    ) -> UserRecord:
        """Resolve the ``{user}`` path parameter and verify the token."""
        user_name = params["user"]
        token_user = self.app.token_user(request.token)
        if token_user is None:
            raise AuthenticationError(
                "missing or invalid auth token; call /auth/login first",
                params={"user": user_name},
            )
        if token_user != user_name:
            raise AuthenticationError(
                f"token does not belong to user {user_name!r}",
                params={"user": user_name, "tokenUser": token_user},
            )
        return self.app.registry.get_user(user_name)

    def token_principal(self, request: Request) -> UserRecord:
        """Resolve the caller from the token alone (routes without a
        ``{user}`` path segment, e.g. ``/v1/jobs``)."""
        token_user = self.app.token_user(request.token)
        if token_user is None:
            raise AuthenticationError(
                "missing or invalid auth token; call /auth/login first"
            )
        return self.app.registry.get_user(token_user)

    @staticmethod
    def int_param(params: dict[str, str], key: str) -> int:
        try:
            return int(params[key])
        except (KeyError, ValueError):
            raise ValidationError(
                f"path parameter {key!r} must be an integer",
                params={key: params.get(key)},
            ) from None


class UserController(BaseController):
    """/auth endpoints (Table 3, User controller)."""

    def register(self, request: Request, params: dict[str, str]) -> Response:
        body = request.body
        user = self.app.registry.register_user(
            str(body.get("userName", "")), str(body.get("password", ""))
        )
        return Response(201, user.to_json())

    def login(self, request: Request, params: dict[str, str]) -> Response:
        body = request.body
        user = self.app.registry.authenticate(
            str(body.get("userName", "")), str(body.get("password", ""))
        )
        token = self.app.issue_token(user.user_name)
        return Response(
            200,
            {"token": token, "userId": user.user_id, "userName": user.user_name},
        )

    def all_users(self, request: Request, params: dict[str, str]) -> Response:
        users = [user.to_json() for user in self.app.registry.all_users()]
        return Response(200, {"users": users})


class PEController(BaseController):
    """/registry/{user}/pe endpoints (Table 3, PE controller)."""

    @staticmethod
    def _embedding(body: dict[str, Any], key: str) -> np.ndarray | None:
        data = body.get(key)
        if data is None:
            return None
        return np.asarray(data, dtype=np.float32)

    def add(self, request: Request, params: dict[str, str]) -> Response:
        """Legacy Table-3 PE registration — a thin adapter over the v1
        write core.

        Validation order, the §3.1.1 summarize/embed fallbacks, the 201
        body (the stored record, no envelope) and every error shape are
        byte-identical to the historical handler; the actual write runs
        through the same serialized
        :func:`~repro.server.v1_write.execute_write` path the versioned
        endpoints use.
        """
        from repro.server.v1_write import (
            WriteCommand,
            build_pe_record,
            execute_write,
        )

        user = self.authenticated_user(request, params)
        body = request.body
        if not body.get("peName"):
            raise ValidationError("peName is required", params={"keys": sorted(body)})
        if not body.get("peCode"):
            raise ValidationError("peCode is required", params={"pe": body.get("peName")})
        record = build_pe_record(
            self.app,
            name=str(body["peName"]),
            code=str(body["peCode"]),
            description=str(body.get("description") or ""),
            origin=str(body.get("descriptionOrigin", "user")),
            source=str(body.get("peSource", "")),
            imports=list(body.get("peImports", [])),
            desc_embedding=self._embedding(body, "descEmbedding"),
            code_embedding=self._embedding(body, "codeEmbedding"),
        )
        outcome = execute_write(
            self.app, user, WriteCommand(action="register", kind="pe", record=record)
        )
        return Response(201, outcome.records[0].to_json())

    def all_pes(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        records = [pe.to_json() for pe in self.app.registry.user_pes(user)]
        return Response(200, {"pes": records})

    def by_id(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        record = self.app.registry.get_pe_by_id(user, self.int_param(params, "id"))
        return Response(200, record.to_json())

    def by_name(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        record = self.app.registry.get_pe_by_name(user, params["name"])
        return Response(200, record.to_json())

    def remove_by_id(self, request: Request, params: dict[str, str]) -> Response:
        from repro.server.v1_write import WriteCommand, execute_write

        user = self.authenticated_user(request, params)
        execute_write(
            self.app,
            user,
            WriteCommand(
                action="delete", kind="pe", target_id=self.int_param(params, "id")
            ),
        )
        return Response(200, {"removed": True})

    def remove_by_name(self, request: Request, params: dict[str, str]) -> Response:
        from repro.server.v1_write import WriteCommand, execute_write

        user = self.authenticated_user(request, params)
        execute_write(
            self.app,
            user,
            WriteCommand(action="delete", kind="pe", target_name=params["name"]),
        )
        return Response(200, {"removed": True})


class WorkflowController(BaseController):
    """/registry/{user}/workflow endpoints (Table 3, Workflow controller)."""

    def add(self, request: Request, params: dict[str, str]) -> Response:
        """Legacy Table-3 workflow registration — thin adapter over the
        v1 write core (see :meth:`PEController.add`)."""
        from repro.server.v1_write import (
            WriteCommand,
            build_workflow_record,
            execute_write,
        )

        user = self.authenticated_user(request, params)
        body = request.body
        if not body.get("entryPoint"):
            raise ValidationError(
                "entryPoint is required", params={"keys": sorted(body)}
            )
        if not body.get("workflowCode"):
            raise ValidationError(
                "workflowCode is required", params={"workflow": body.get("entryPoint")}
            )
        desc_embedding = body.get("descEmbedding")
        if desc_embedding is not None:
            desc_embedding = np.asarray(desc_embedding, dtype=np.float32)
        record = build_workflow_record(
            self.app,
            entry_point=str(body["entryPoint"]),
            code=str(body["workflowCode"]),
            workflow_name=str(body.get("workflowName", body["entryPoint"])),
            description=str(body.get("description") or ""),
            source=str(body.get("workflowSource", "")),
            pe_ids=[int(x) for x in body.get("peIds", [])],
            desc_embedding=desc_embedding,
        )
        outcome = execute_write(
            self.app,
            user,
            WriteCommand(action="register", kind="workflow", record=record),
        )
        return Response(201, outcome.records[0].to_json())

    def all_workflows(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        records = [wf.to_json() for wf in self.app.registry.user_workflows(user)]
        return Response(200, {"workflows": records})

    def by_id(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        record = self.app.registry.get_workflow_by_id(
            user, self.int_param(params, "id")
        )
        return Response(200, record.to_json())

    def by_name(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        record = self.app.registry.get_workflow_by_name(user, params["name"])
        return Response(200, record.to_json())

    def pes_by_id(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        records = self.app.registry.workflow_pes(user, self.int_param(params, "id"))
        return Response(200, {"pes": [pe.to_json() for pe in records]})

    def pes_by_name(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        records = self.app.registry.workflow_pes_by_name(user, params["name"])
        return Response(200, {"pes": [pe.to_json() for pe in records]})

    def remove_by_id(self, request: Request, params: dict[str, str]) -> Response:
        from repro.server.v1_write import WriteCommand, execute_write

        user = self.authenticated_user(request, params)
        execute_write(
            self.app,
            user,
            WriteCommand(
                action="delete",
                kind="workflow",
                target_id=self.int_param(params, "id"),
            ),
        )
        return Response(200, {"removed": True})

    def remove_by_name(self, request: Request, params: dict[str, str]) -> Response:
        from repro.server.v1_write import WriteCommand, execute_write

        user = self.authenticated_user(request, params)
        execute_write(
            self.app,
            user,
            WriteCommand(
                action="delete", kind="workflow", target_name=params["name"]
            ),
        )
        return Response(200, {"removed": True})

    def link_pe(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        # a registry write like any other: linking bumps the workflow's
        # revision and the mutation counter, so it must serialize with
        # the v1 write core or it would race every ifVersion CAS
        with self.app.write_lock:
            record = self.app.registry.link_pe_to_workflow(
                user,
                self.int_param(params, "workflowId"),
                self.int_param(params, "peId"),
            )
        return Response(200, record.to_json())


class ExecutionController(BaseController):
    """/execution/{user}/run (Table 3, Execution controller)."""

    def run(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        body = dict(request.body)

        # resolve a registry reference into a shipped payload
        ref = body.pop("workflowRef", None)
        if ref is not None:
            if "id" in ref:
                record = self.app.registry.get_workflow_by_id(user, int(ref["id"]))
            elif "name" in ref:
                record = self.app.registry.get_workflow_by_name(
                    user, str(ref["name"])
                )
            else:
                raise ValidationError(
                    "workflowRef must contain 'id' or 'name'",
                    params={"workflowRef": ref},
                )
            body.setdefault("workflowCode", record.workflow_code)
            body.setdefault("workflowName", record.entry_point)
            pes = self.app.registry.workflow_pes(user, record.workflow_id)
            sources = [record.workflow_source] + [pe.pe_source for pe in pes]
            imports = set(body.get("imports", []))
            imports.update(merge_requirements(sources))
            for pe in pes:
                imports.update(pe.pe_imports)
            body["imports"] = sorted(imports)

        engine_name = body.pop("engine", None)
        outcome = self.app.engines.execute(
            ExecutionRequest.from_json(body), engine_name=engine_name
        )
        return Response(200, outcome.to_json())


class EngineController(BaseController):
    """/engines endpoints — the §3.3/§8 multiple-engine extension.

    Not part of the paper's Table 3 (which predates the feature); the
    endpoint style follows the same conventions.
    """

    def all_engines(self, request: Request, params: dict[str, str]) -> Response:
        self.authenticated_user(request, params)
        return Response(200, {"engines": self.app.engines.stats()})

    def register(self, request: Request, params: dict[str, str]) -> Response:
        self.authenticated_user(request, params)
        body = request.body
        name = str(body.get("engineName", "")).strip()
        if not name:
            raise ValidationError("engineName is required")
        entry = self.app.engines.create(
            name,
            install_scale=float(body.get("installScale", 0.0)),
            latency_preset=body.get("latencyPreset"),
            description=str(body.get("description", "")),
        )
        return Response(201, entry.stats())

    def remove(self, request: Request, params: dict[str, str]) -> Response:
        self.authenticated_user(request, params)
        self.app.engines.remove(params["name"])
        return Response(200, {"removed": True})


class RegistryController(BaseController):
    """/registry/{user}/all and /registry/{user}/search (Table 3)."""

    def all_items(self, request: Request, params: dict[str, str]) -> Response:
        user = self.authenticated_user(request, params)
        return Response(
            200,
            {
                "pes": [pe.to_json() for pe in self.app.registry.user_pes(user)],
                "workflows": [
                    wf.to_json() for wf in self.app.registry.user_workflows(user)
                ],
            },
        )

    def search(self, request: Request, params: dict[str, str]) -> Response:
        """Legacy Table-3 search — a thin adapter over the v1 core.

        Parameter parsing, validation order, error envelopes and the
        response body shape are kept byte-identical to the historical
        handler; the actual ranking runs through the same
        :func:`~repro.server.v1.execute_search` decision tree the
        versioned endpoint uses, pinned to the exact backend.
        """
        from repro.server.schema import SearchRequest
        from repro.server.v1 import execute_search

        user = self.authenticated_user(request, params)
        search = params["search"]
        search_type = params["type"].lower()
        if search_type not in ("pe", "workflow", "both"):
            raise ValidationError(
                f"unknown search type {search_type!r}",
                params={"type": search_type},
                details="expected 'pe', 'workflow' or 'both'",
            )
        body = request.body or {}
        query_type = str(body.get("queryType", "text")).lower()
        k = body.get("k")
        k = int(k) if k is not None else None
        query_embedding = body.get("queryEmbedding")
        if query_type not in ("text", "semantic", "code"):
            raise ValidationError(
                f"unknown query type {query_type!r}",
                params={"queryType": query_type},
                details="expected 'text', 'semantic' or 'code'",
            )
        req = SearchRequest(
            query=search,
            kind=search_type,
            query_type=query_type,
            backend="exact",
            k=k,
            query_embedding=query_embedding,
        )
        # legacy_text pins the historical LIKE+Python-scorer text
        # pipeline — this route's contract is byte-identical output
        search_kind, hits = execute_search(
            self.app, user, req, legacy_text=True
        )
        return Response(200, {"searchKind": search_kind, "hits": hits})
