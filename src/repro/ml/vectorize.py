"""Hashed feature vectorization (vectorized NumPy throughout).

Feature lists become dense float32 vectors via the hashing trick: each
feature string hashes (blake2b, salted by the model name so different
models occupy independent spaces) to an index and a sign.  An optional
:class:`IdfWeighter` supplies inverse-document-frequency weights — the
"fitting" step that stands in for fine-tuning in this reproduction.

Following the HPC guides, similarity math downstream is pure matrix
algebra on contiguous float32 arrays; this module is the only place that
loops over Python strings, and feature hashing is cached.
"""

from __future__ import annotations

import hashlib
import math
from functools import lru_cache
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import ValidationError


@lru_cache(maxsize=1_000_000)
def _hash_feature(feature: str, salt: str) -> tuple[int, float]:
    digest = hashlib.blake2b(
        feature.encode("utf-8", "replace"),
        digest_size=8,
        person=salt.encode("utf-8")[:16],
    ).digest()
    value = int.from_bytes(digest, "big")
    return value >> 1, 1.0 if value & 1 else -1.0


class HashingVectorizer:
    """Map feature-string lists to dense hashed count vectors."""

    def __init__(self, dim: int = 2048, salt: str = "default") -> None:
        if dim <= 0:
            raise ValidationError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.salt = salt

    def transform_one(
        self,
        features: Sequence[str],
        weights: Mapping[str, float] | None = None,
        feature_weight: float = 1.0,
    ) -> np.ndarray:
        """Vector for one document; optionally IDF- and family-weighted."""
        vec = np.zeros(self.dim, dtype=np.float32)
        for feature in features:
            index, sign = _hash_feature(feature, self.salt)
            weight = feature_weight
            if weights is not None:
                weight *= weights.get(feature, 1.0)
            vec[index % self.dim] += sign * weight
        return vec

    def transform(
        self,
        documents: Sequence[Sequence[str]],
        weights: Mapping[str, float] | None = None,
    ) -> np.ndarray:
        out = np.zeros((len(documents), self.dim), dtype=np.float32)
        for i, features in enumerate(documents):
            out[i] = self.transform_one(features, weights)
        return out


class IdfWeighter:
    """Inverse document frequency weighting, fitted on a corpus.

    ``fit`` counts document frequencies; ``weight(feature)`` returns
    ``log(1 + N / (1 + df))``.  Unseen features get the maximum weight
    (they are maximally discriminative).
    """

    def __init__(self) -> None:
        self._df: dict[str, int] = {}
        self._n_docs = 0

    @property
    def is_fitted(self) -> bool:
        return self._n_docs > 0

    def fit(self, documents: Iterable[Sequence[str]]) -> "IdfWeighter":
        for features in documents:
            self._n_docs += 1
            for feature in set(features):
                self._df[feature] = self._df.get(feature, 0) + 1
        return self

    def weight(self, feature: str) -> float:
        if not self.is_fitted:
            return 1.0
        df = self._df.get(feature, 0)
        return math.log(1.0 + self._n_docs / (1.0 + df))

    def as_mapping(self) -> "_IdfMapping":
        return _IdfMapping(self)


class _IdfMapping(Mapping[str, float]):
    """Lazy mapping view so vectorizers can treat IDF like a dict."""

    def __init__(self, weighter: IdfWeighter) -> None:
        self._weighter = weighter

    def __getitem__(self, feature: str) -> float:
        return self._weighter.weight(feature)

    def get(self, feature: str, default: float = 1.0) -> float:  # type: ignore[override]
        return self._weighter.weight(feature)

    def __iter__(self):
        return iter(self._weighter._df)

    def __len__(self) -> int:
        return len(self._weighter._df)


def l2_normalize(matrix: np.ndarray) -> np.ndarray:
    """Row-wise L2 normalization; zero rows stay zero (never NaN)."""
    if matrix.ndim == 1:
        norm = float(np.linalg.norm(matrix))
        return matrix / norm if norm > 0 else matrix
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms
