"""Code summarization — the ``codet5-base-multi-sum`` substitute (§2.5).

Laminar stores a natural-language description for every PE; when the
user does not provide one, the Client auto-generates it from the code.
Offline we replace the CodeT5 generator with an AST-driven template
summarizer: docstrings win, then leading comments, then a phrase
composed from API-idiom mining and identifier subtokens.  The output is
a short imperative sentence ("Generate a random number and stream it
out"), the same register as the paper's Figure 7 auto-descriptions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.ml.ast_features import parse_lenient
from repro.ml.tokenize import split_subtokens

#: verbs that commonly lead identifier names; used to phrase summaries
_VERBS = {
    "get", "set", "read", "load", "download", "fetch", "parse", "filter",
    "compute", "calc", "calculate", "check", "count", "print", "find",
    "search", "sort", "make", "build", "gen", "generate", "produce",
    "write", "save", "send", "stream", "sum", "merge", "split", "extract",
    "transform", "convert", "normalize", "update", "remove", "delete",
    "select", "apply", "run", "process", "emit", "collect", "reverse",
    "encode", "decode", "validate", "measure", "detect", "classify",
}

#: API call -> phrase fragments mined from the body
_CALL_IDIOMS: dict[str, str] = {
    "randint": "generates random integers",
    "random": "generates random values",
    "uniform": "generates random values",
    "choice": "picks random elements",
    "print": "prints its input",
    "append": "accumulates items",
    "sum": "sums values",
    "sorted": "sorts data",
    "sort": "sorts data",
    "len": "measures lengths",
    "open": "reads a file",
    "readlines": "reads file lines",
    "split": "splits text",
    "join": "joins text",
    "match": "matches regular expressions",
    "findall": "matches regular expressions",
    "sub": "rewrites text",
    "sqrt": "computes square roots",
    "mean": "averages values",
    "dot": "multiplies matrices",
    "urlopen": "downloads data",
    "get": "retrieves data",
    "loads": "parses serialized data",
    "dumps": "serializes data",
    "lower": "normalizes case",
    "strip": "trims whitespace",
    "count": "counts occurrences",
    "max": "finds maxima",
    "min": "finds minima",
    "write": "writes output",
    "zip": "pairs sequences",
}


@dataclass
class CodeSummary:
    """A generated summary with its provenance."""

    text: str
    source: str  # "docstring" | "comment" | "template"

    def __str__(self) -> str:
        return self.text


def _first_comment(source: str) -> str | None:
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            comment = stripped.lstrip("#").strip()
            if len(comment.split()) >= 2:
                return comment
    return None


def _name_phrase(name: str) -> str | None:
    subtokens = list(split_subtokens(name))
    if not subtokens:
        return None
    if subtokens[0] == "is" and len(subtokens) > 1:
        return "checks whether the input is " + " ".join(subtokens[1:])
    if subtokens[0] in _VERBS:
        verb = subtokens[0]
        rest = " ".join(subtokens[1:])
        verb_s = verb if verb.endswith("s") else verb + "s"
        return f"{verb_s} {rest}".strip()
    if subtokens[-1] in ("producer", "generator", "source"):
        return "produces " + " ".join(subtokens[:-1]) + " data"
    if subtokens[-1] in ("consumer", "sink", "printer", "writer"):
        return "consumes " + " ".join(subtokens[:-1]) + " data"
    if subtokens[-1] in ("counter",):
        return "counts " + " ".join(subtokens[:-1])
    return None


def _called_idioms(tree: ast.AST) -> list[str]:
    phrases: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name and name in _CALL_IDIOMS:
                phrase = _CALL_IDIOMS[name]
                if phrase not in phrases:
                    phrases.append(phrase)
    return phrases


def _primary_definition(tree: ast.AST) -> ast.AST | None:
    """The node to summarize: `_process` inside a PE class, else the
    first function, else the whole module."""
    classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
    for cls in classes:
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) and item.name == "_process":
                return item
    functions = [
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        and not n.name.startswith("__")
    ]
    if functions:
        return functions[0]
    return tree


def _definition_name(tree: ast.AST, fallback: str | None) -> str | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            return node.name
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                return node.name
    return fallback


def summarize_code(source: str, name: str | None = None) -> CodeSummary:
    """Generate a one-sentence NL summary of ``source``.

    ``name`` optionally supplies the entity name (PE class name) when the
    source is a fragment without its own definition.
    """
    tree = parse_lenient(source)

    # 1. docstring of the main definition
    if tree is not None:
        target = _primary_definition(tree)
        doc = None
        if isinstance(
            target, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            doc = ast.get_docstring(target)
        if not doc and not isinstance(target, ast.Module):
            doc = ast.get_docstring(tree) if isinstance(tree, ast.Module) else None
        if doc:
            first = doc.strip().splitlines()[0].rstrip(".")
            return CodeSummary(first + ".", "docstring")

    # 2. leading comment in the (processing) body
    comment = _first_comment(source)
    if comment:
        text = comment[0].upper() + comment[1:]
        return CodeSummary(text.rstrip(".") + ".", "comment")

    # 3. template: name phrase + API idioms
    clauses: list[str] = []
    entity = _definition_name(tree, name) if tree is not None else name
    if entity:
        phrase = _name_phrase(entity)
        if phrase:
            clauses.append(phrase)
    if tree is not None:
        idioms = _called_idioms(tree)
        clauses.extend(p for p in idioms[:2] if p not in clauses)
    if not clauses:
        if entity:
            words = " ".join(split_subtokens(entity)) or entity
            clauses.append(f"processes {words} data")
        else:
            clauses.append("processes streaming data")
    body = " and ".join(clauses)
    return CodeSummary(f"A PE that {body}.", "template")


class CodeT5Summarizer:
    """Drop-in object with the interface the Client expects.

    Mirrors how Laminar wraps ``codet5-base-multi-sum``: a ``summarize``
    method taking source text and returning the description string stored
    in the Registry's ``description`` property.
    """

    name = "codet5-base-multi-sum"

    def summarize(self, source: str, name: str | None = None) -> str:
        return summarize_code(source, name).text

    def __repr__(self) -> str:
        return f"<CodeT5Summarizer {self.name!r}>"
