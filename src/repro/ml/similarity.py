"""Cosine-similarity retrieval, fully vectorized.

Embeddings are L2-normalized, so cosine similarity is a single matrix
product — the one hot spot of every search, kept as one BLAS call per
query batch as the HPC guides prescribe (no Python-level loops over the
corpus).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


def cosine_similarity_matrix(queries: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """(nq, d) x (nc, d) -> (nq, nc) similarity matrix.

    Inputs must already be row-normalized (all embedders in this package
    guarantee that), making this exactly ``queries @ corpus.T``.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    corpus = np.atleast_2d(np.asarray(corpus, dtype=np.float32))
    if queries.shape[1] != corpus.shape[1]:
        raise ValidationError(
            f"dimension mismatch: queries d={queries.shape[1]} vs "
            f"corpus d={corpus.shape[1]}"
        )
    return queries @ corpus.T


def cosine_topk(
    query: np.ndarray, corpus: np.ndarray, k: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k most similar corpus rows for one query vector.

    Returns ``(indices, scores)`` sorted by descending similarity.  Uses
    ``argpartition`` for O(n) selection before sorting only the winners.
    """
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    sims = cosine_similarity_matrix(query, corpus)[0]
    k = min(k, sims.shape[0])
    if k == sims.shape[0]:
        order = np.argsort(-sims)
    else:
        part = np.argpartition(-sims, k - 1)[:k]
        order = part[np.argsort(-sims[part])]
    return order, sims[order]


def rank_of(query: np.ndarray, corpus: np.ndarray, target_index: int) -> int:
    """1-based rank of ``target_index`` when ranking corpus by similarity.

    Ties are resolved pessimistically (equal scores ahead of the target
    count against it), making metrics conservative and deterministic.
    """
    sims = cosine_similarity_matrix(query, corpus)[0]
    target_score = sims[target_index]
    ahead = int(np.sum(sims > target_score))
    ties_before = int(np.sum(sims[:target_index] == target_score))
    return ahead + ties_before + 1
