"""The model bundle Laminar ships with (paper §4).

Groups the three models the framework integrates — the fine-tuned
code-search embedder (semantic search, §4.2), the ReACC-style retriever
(code completion, §4.3) and the CodeT5-style summarizer (§3.1.1) — and
fits the embedders' IDF weights on the built-in code corpus, standing in
for the fine-tuning the paper performed on AdvTest (§2.x, 6 hours on an
NVIDIA A40; here: a frequency pass over the synthetic corpus).

Both the Client and the Server hold a bundle: the Client embeds at
registration/query time, the Server can re-embed as a fallback when a
request omits embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ml.models import ReACCRetriever, UnixCoderCodeSearch
from repro.ml.summarize import CodeT5Summarizer


@dataclass
class ModelBundle:
    """The trio of models wired into the Laminar stack."""

    code_search: UnixCoderCodeSearch = field(default_factory=UnixCoderCodeSearch)
    completion: ReACCRetriever = field(default_factory=ReACCRetriever)
    summarizer: CodeT5Summarizer = field(default_factory=CodeT5Summarizer)

    @classmethod
    def default(cls, fit: bool = True) -> "ModelBundle":
        """Construct the standard bundle, optionally IDF-fitted.

        Fitting uses the built-in synthetic code bank (the AdvTest-like
        corpus of this reproduction); when the datasets package is not
        importable the bundle degrades gracefully to unfitted models.
        """
        bundle = cls()
        if fit:
            try:
                from repro.datasets.codebank import all_canonical_sources

                corpus = all_canonical_sources()
            except Exception:
                corpus = []
            if corpus:
                bundle.code_search.fit(corpus, kind="code")
                bundle.completion.fit(corpus, kind="code")
        return bundle
