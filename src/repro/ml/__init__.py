"""Language-model substrate (paper §2.3/2.4/2.5).

The paper integrates pretrained transformer encoders (UnixCoder, ReACC,
CodeBERT, GraphCodeBERT, BGE, GTE) and a generation model (CodeT5) via
HuggingFace.  Pretrained weights are unavailable offline, so this
subpackage implements the closest synthetic equivalents from scratch
(DESIGN.md §5): deterministic feature embedders sharing the bi-encoder
interface the paper's models are used through —

    ``EmbeddingModel.embed(texts) -> (n, d) float32, L2-normalized rows``

with cosine similarity over stored embeddings for retrieval.  Each paper
model maps to one embedder class whose featurization mirrors what makes
that model comparatively strong or weak (AST structure vs. token
sequences vs. plain text), so the relative orderings of Tables 6 and 7
are reproduced by mechanism, not by fiat.

Code summarization (CodeT5's role) is an AST-driven template summarizer;
code completion (ReACC's role) is retrieval + suffix alignment.
"""

from repro.ml.embedding import BiEncoder, CrossEncoder, EmbeddingModel
from repro.ml.models import (
    BGELargeSim,
    CodeBERTSim,
    GTELargeSim,
    GraphCodeBERTSim,
    ReACCRetriever,
    UnixCoderBase,
    UnixCoderCloneDetection,
    UnixCoderCodeSearch,
    get_model,
    MODEL_REGISTRY,
)
from repro.ml.similarity import cosine_similarity_matrix, cosine_topk
from repro.ml.summarize import CodeT5Summarizer, summarize_code
from repro.ml.completion import CodeCompleter, CompletionMatch

__all__ = [
    "EmbeddingModel",
    "BiEncoder",
    "CrossEncoder",
    "UnixCoderBase",
    "UnixCoderCodeSearch",
    "UnixCoderCloneDetection",
    "ReACCRetriever",
    "CodeBERTSim",
    "GraphCodeBERTSim",
    "BGELargeSim",
    "GTELargeSim",
    "get_model",
    "MODEL_REGISTRY",
    "cosine_topk",
    "cosine_similarity_matrix",
    "CodeT5Summarizer",
    "summarize_code",
    "CodeCompleter",
    "CompletionMatch",
]
