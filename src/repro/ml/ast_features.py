"""AST feature extraction — the structural view of code.

UnixCoder's distinguishing trait (paper §2.3) is converting Abstract
Syntax Trees into sequential text so the encoder sees structure as well
as surface tokens.  This module provides the equivalent hand-rolled
features:

* :func:`ast_sequence` — a flattened pre-order serialization of node
  types (the "AST as a sentence" view).
* :func:`structural_features` — parent>child node-type bigrams, call
  targets, literal kinds, control-flow shape.  These are *identifier
  independent*, which is what lets AST-based models find renamed clones.
* :func:`dataflow_pairs` — normalized variable def-use chains, the
  GraphCodeBERT-style dataflow signal.

All functions tolerate partial code: if the text does not parse as a
module we retry with common fragment repairs and fall back to empty
features rather than raising.
"""

from __future__ import annotations

import ast
import textwrap


def parse_lenient(source: str) -> ast.AST | None:
    """Parse ``source``, tolerating indentation and trailing fragments.

    Attempts, in order: as-is, dedented, wrapped in a function (for bare
    ``return``/``yield`` fragments), and progressively truncated to the
    longest parsable line prefix (for partial-code completion queries).
    Returns ``None`` if nothing parses.
    """
    candidates = [source, textwrap.dedent(source)]
    wrapped = "def __fragment__():\n" + textwrap.indent(
        textwrap.dedent(source) or "pass", "    "
    )
    candidates.append(wrapped)
    for candidate in candidates:
        try:
            return ast.parse(candidate)
        except SyntaxError:
            continue
    # longest parsable prefix, useful for cut-off partial code
    lines = textwrap.dedent(source).splitlines()
    for end in range(len(lines) - 1, 0, -1):
        prefix = "\n".join(lines[:end])
        for candidate in (
            prefix,
            "def __fragment__():\n" + textwrap.indent(prefix or "pass", "    "),
        ):
            try:
                return ast.parse(candidate)
            except SyntaxError:
                continue
    return None


def ast_sequence(source: str) -> list[str]:
    """Pre-order node-type sequence (UnixCoder's AST serialization)."""
    tree = parse_lenient(source)
    if tree is None:
        return []
    sequence: list[str] = []

    def visit(node: ast.AST) -> None:
        name = type(node).__name__
        if name not in ("Load", "Store", "Del"):  # ctx noise
            sequence.append(name)
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(tree)
    return sequence


def structural_features(source: str) -> list[str]:
    """Identifier-independent structural features.

    Feature families (prefixed to keep hash spaces disjoint):

    * ``ast2:Parent>Child`` — node-type bigrams along tree edges
    * ``call:name`` — called function/attribute names (API usage is a
      strong clone signal that survives local-variable renames)
    * ``op:Kind`` — operator node kinds (Add, Mod, Pow, ...)
    * ``shape:...`` — control-flow summary (loop depth, branch count)
    """
    tree = parse_lenient(source)
    if tree is None:
        return []
    features: list[str] = []
    max_depth = 0
    n_loops = n_branches = 0

    def call_name(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def visit(node: ast.AST, depth: int) -> None:
        nonlocal max_depth, n_loops, n_branches
        max_depth = max(max_depth, depth)
        parent_name = type(node).__name__
        if isinstance(node, (ast.For, ast.While)):
            n_loops += 1
        if isinstance(node, ast.If):
            n_branches += 1
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name:
                features.append(f"call:{name}")
        if isinstance(node, (ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare)):
            if isinstance(node, ast.Compare):
                for op in node.ops:
                    features.append(f"op:{type(op).__name__}")
            elif isinstance(node, ast.BoolOp):
                features.append(f"op:{type(node.op).__name__}")
            else:
                features.append(f"op:{type(node.op).__name__}")
        for child in ast.iter_child_nodes(node):
            child_name = type(child).__name__
            if child_name not in ("Load", "Store", "Del"):
                features.append(f"ast2:{parent_name}>{child_name}")
            visit(child, depth + 1)

    visit(tree, 0)
    features.append(f"shape:depth={min(max_depth, 12)}")
    features.append(f"shape:loops={min(n_loops, 6)}")
    features.append(f"shape:branches={min(n_branches, 6)}")
    return features


def dataflow_pairs(source: str) -> list[str]:
    """Normalized def-use dataflow edges (GraphCodeBERT's extra signal).

    Variables are renamed to slots (``v0``, ``v1``, ...) in first-definition
    order, making the features invariant under consistent identifier
    renaming.  Each feature is ``df:<def-slot>-><use-context>``.
    """
    tree = parse_lenient(source)
    if tree is None:
        return []
    slots: dict[str, str] = {}

    def slot_of(name: str) -> str:
        if name not in slots:
            slots[name] = f"v{len(slots)}"
        return slots[name]

    features: list[str] = []

    class Visitor(ast.NodeVisitor):
        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        slot = slot_of(leaf.id)
                        features.append(
                            f"df:{slot}<-{type(node.value).__name__}"
                        )
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            if isinstance(node.target, ast.Name):
                slot = slot_of(node.target.id)
                features.append(f"df:{slot}<-aug{type(node.op).__name__}")
            self.generic_visit(node)

        def visit_For(self, node: ast.For) -> None:
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    features.append(f"df:{slot_of(leaf.id)}<-iter")
            self.generic_visit(node)

        def visit_arg(self, node: ast.arg) -> None:
            slot_of(node.arg)

        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, ast.Load) and node.id in slots:
                features.append(f"df:use:{slots[node.id]}")

    Visitor().visit(tree)
    return features


def docstring_of(source: str) -> str:
    """First docstring found in the module / its first def or class."""
    tree = parse_lenient(source)
    if tree is None:
        return ""
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            doc = ast.get_docstring(node)
            if doc:
                return doc
    return ""


def function_names(source: str) -> list[str]:
    """Names of defined functions/classes (entry-point identifiers)."""
    tree = parse_lenient(source)
    if tree is None:
        return []
    return [
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
