"""Retrieval-based code completion — the ReACC substitute (§2.5, §4.3).

Given a partial (or complete) code snippet, retrieve the most similar
registered PE codes by cosine similarity of ReACC-style embeddings, and
additionally align the query against the best match to extract the
*continuation* — the suffix of the retrieved code after the region that
matches the query.  This mirrors ReACC's retrieve-then-reuse design: the
retriever finds lexically/semantically similar code, and the reused
fragment completes the user's input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.embedding import EmbeddingModel
from repro.ml.models import ReACCRetriever
from repro.ml.similarity import cosine_topk

_TOKEN_SPANS = re.compile(
    r"'[^'\n]*'|\"[^\"\n]*\"|\d+(?:\.\d+)?|[A-Za-z_][A-Za-z0-9_]*"
    r"|==|!=|<=|>=|->|\*\*|//|[-+*/%<>=!&|^~@.,:;()\[\]{}]"
)


def _token_spans(source: str) -> list[tuple[str, int, int]]:
    return [
        (match.group(), match.start(), match.end())
        for match in _TOKEN_SPANS.finditer(source)
    ]


@dataclass
class CompletionMatch:
    """One retrieved candidate for a completion query."""

    name: str
    code: str
    score: float
    #: suggested continuation: candidate code following the aligned region
    continuation: str

    def __repr__(self) -> str:
        return f"<CompletionMatch {self.name} score={self.score:.3f}>"


def align_continuation(query: str, candidate: str, window: int = 8) -> str:
    """Suffix of ``candidate`` after its best alignment with ``query``.

    Slides the query's trailing ``window`` tokens over the candidate's
    token stream and picks the position with maximal token agreement; the
    continuation starts after the aligned region.  Falls back to the
    whole candidate when nothing aligns (the query may be functionality
    description-ish rather than a literal prefix).
    """
    query_tokens = [t for t, _s, _e in _token_spans(query)][-window:]
    if not query_tokens:
        return candidate
    cand_spans = _token_spans(candidate)
    if not cand_spans:
        return candidate
    cand_tokens = [t for t, _s, _e in cand_spans]
    best_score = 0
    best_end = 0  # character offset into candidate
    w = len(query_tokens)
    for start in range(len(cand_tokens)):
        stop = min(start + w, len(cand_tokens))
        agree = sum(
            1
            for i, token in enumerate(cand_tokens[start:stop])
            if token == query_tokens[i]
        )
        if agree > best_score:
            best_score = agree
            best_end = cand_spans[stop - 1][2]
    if best_score == 0:
        return candidate
    return candidate[best_end:].lstrip("\n")


class CodeCompleter:
    """Bi-encoder index over registered PE codes for completion queries."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self.model = model or ReACCRetriever()
        self._names: list[str] = []
        self._codes: list[str] = []
        self._matrix: np.ndarray | None = None

    def index(
        self, names: Sequence[str], codes: Sequence[str]
    ) -> "CodeCompleter":
        """(Re)build the index; embeddings computed once, stored densely."""
        if len(names) != len(codes):
            raise ValueError("names and codes must align")
        self._names = list(names)
        self._codes = list(codes)
        self._matrix = self.model.embed(self._codes, kind="code")
        return self

    @property
    def size(self) -> int:
        return len(self._names)

    def complete(self, partial_code: str, k: int = 5) -> list[CompletionMatch]:
        """Rank registered codes against ``partial_code``.

        Returns up to ``k`` matches, best first, each with its aligned
        continuation.
        """
        if self._matrix is None or not self._names:
            return []
        qvec = self.model.embed_one(partial_code, kind="code")
        indices, scores = cosine_topk(qvec, self._matrix, k)
        matches = []
        for index, score in zip(indices.tolist(), scores.tolist()):
            code = self._codes[index]
            matches.append(
                CompletionMatch(
                    name=self._names[index],
                    code=code,
                    score=float(score),
                    continuation=align_continuation(partial_code, code),
                )
            )
        return matches
