"""Embedding-model interface: the bi-encoder contract (paper §2.4).

Every model maps text — natural language or Python code — into a dense
L2-normalized vector space, independently per input, so embeddings can be
computed once at registration time, stored in the Registry, and compared
later with one cosine matrix product (the bi-encoder paradigm the paper
adopts).  A :class:`CrossEncoder` is provided for the accuracy/efficiency
ablation of §2.4: it attends to the (query, candidate) *pair* and cannot
precompute anything.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import Iterable, Literal, Sequence

import numpy as np

from repro.ml.vectorize import HashingVectorizer, IdfWeighter, l2_normalize

Kind = Literal["auto", "code", "text"]

#: weighted feature: (feature string, weight)
Feature = tuple[str, float]

_CODE_HINTS = re.compile(
    r"def |class |return |import |lambda |self\.|==|\(\)|:\n|=\s|\.append\(|\[|\]"
)


def looks_like_code(text: str) -> bool:
    """Heuristic: does this string look like Python rather than prose?"""
    if "\n" in text and re.search(r"\n\s+\S", text):
        return True
    hits = len(_CODE_HINTS.findall(text))
    words = max(1, len(text.split()))
    return hits >= 2 or hits / words > 0.2


class EmbeddingModel(ABC):
    """Base class for all embedders in the model zoo.

    Subclasses implement the two featurization views; everything else —
    hashing, optional IDF weighting ("fine-tuning"), normalization — is
    shared.  ``fit`` is this reproduction's stand-in for model training:
    it estimates feature document-frequencies on a corpus, which is the
    dominant retrieval-relevant effect of contrastive fine-tuning for
    bag-of-features models.
    """

    #: canonical name (matches the paper's model identifier)
    name: str = "embedding-model"

    #: when set, features hash into only this many leading dimensions —
    #: modelling the low effective rank (anisotropy) of embeddings from
    #: models never trained for retrieval: massive feature collisions
    #: compress all similarities together
    effective_dim: int | None = None

    def __init__(self, dim: int = 2048) -> None:
        self.dim = dim
        self._vectorizer = HashingVectorizer(dim=dim, salt=self.name)
        self._idf = IdfWeighter()

    # -- featurization ----------------------------------------------------
    @abstractmethod
    def code_features(self, text: str) -> list[Feature]:
        """Weighted features for a code fragment."""

    @abstractmethod
    def text_features(self, text: str) -> list[Feature]:
        """Weighted features for a natural-language string."""

    def features(self, text: str, kind: Kind = "auto") -> list[Feature]:
        if kind == "code" or (kind == "auto" and looks_like_code(text)):
            return self.code_features(text)
        return self.text_features(text)

    # -- fitting ("fine-tuning") -------------------------------------------
    def fit(self, corpus: Iterable[str], kind: Kind = "code") -> "EmbeddingModel":
        """Estimate IDF weights on a corpus; returns self for chaining."""
        self._idf.fit(
            [feature for feature, _w in self.features(doc, kind)]
            for doc in corpus
        )
        return self

    @property
    def is_fitted(self) -> bool:
        return self._idf.is_fitted

    # -- embedding ----------------------------------------------------------
    def _vector(self, features: list[Feature]) -> np.ndarray:
        vec = np.zeros(self.dim, dtype=np.float32)
        use_idf = self._idf.is_fitted
        for feature, weight in features:
            if use_idf:
                weight *= self._idf.weight(feature)
            index, sign = self._vectorizer_hash(feature)
            vec[index] += sign * weight
        return vec

    def _vectorizer_hash(self, feature: str) -> tuple[int, float]:
        from repro.ml.vectorize import _hash_feature

        index, sign = _hash_feature(feature, self._vectorizer.salt)
        space = self.effective_dim or self.dim
        return index % space, sign

    def embed(self, texts: Sequence[str], kind: Kind = "auto") -> np.ndarray:
        """Embed a batch; rows are L2-normalized float32."""
        out = np.zeros((len(texts), self.dim), dtype=np.float32)
        for i, text in enumerate(texts):
            out[i] = self._vector(self.features(text, kind))
        return l2_normalize(out)

    def embed_one(self, text: str, kind: Kind = "auto") -> np.ndarray:
        return self.embed([text], kind)[0]

    def embed_many(self, texts: Sequence[str], kind: Kind = "auto") -> np.ndarray:
        """Embed a batch of query texts in one call.

        The cross-request batching entry point used by the search
        micro-batcher: one call vectorizes a whole batch's distinct
        queries.  Rows are computed independently (per-text featurize,
        hash, row-wise normalize), so ``embed_many(texts)[i]`` is
        bitwise identical to ``embed_one(texts[i])``.
        """
        return self.embed(list(texts), kind)

    def __repr__(self) -> str:
        fitted = "fitted" if self.is_fitted else "zero-shot"
        return f"<{type(self).__name__} {self.name!r} dim={self.dim} {fitted}>"


class BiEncoder:
    """Query-side + corpus-side encoders with precomputed corpus matrix.

    The efficiency half of the §2.4 trade-off: corpus embeddings are
    computed once (e.g. at PE registration) and every query costs one
    ``embed`` plus one matrix-vector product.
    """

    def __init__(
        self,
        model: EmbeddingModel,
        *,
        query_kind: Kind = "text",
        corpus_kind: Kind = "code",
    ) -> None:
        self.model = model
        self.query_kind: Kind = query_kind
        self.corpus_kind: Kind = corpus_kind
        self._corpus: list[str] = []
        self._matrix: np.ndarray | None = None

    def index(self, corpus: Sequence[str]) -> "BiEncoder":
        self._corpus = list(corpus)
        self._matrix = self.model.embed(self._corpus, self.corpus_kind)
        return self

    @property
    def corpus_matrix(self) -> np.ndarray:
        if self._matrix is None:
            raise RuntimeError("call index() before querying")
        return self._matrix

    def search(self, query: str, k: int = 10) -> list[tuple[int, float]]:
        from repro.ml.similarity import cosine_topk

        qvec = self.model.embed_one(query, self.query_kind)
        indices, scores = cosine_topk(qvec, self.corpus_matrix, k)
        return list(zip(indices.tolist(), scores.tolist()))


class CrossEncoder:
    """Pairwise scorer (the accuracy half of the §2.4 trade-off).

    Scores each (query, candidate) pair with IDF-weighted soft token
    overlap computed *jointly* — more precise than independent embeddings
    (exact-match evidence is not lost to hashing collisions or vector
    compression) but requires touching every candidate at query time, so
    there is nothing to precompute or store in the Registry.
    """

    def __init__(self, model: EmbeddingModel) -> None:
        self.model = model

    def score_pair(self, query: str, candidate: str, kind: Kind = "code") -> float:
        q_feats = self.model.features(query, "text")
        c_feats = self.model.features(candidate, kind)
        q_weights: dict[str, float] = {}
        for feature, weight in q_feats:
            if self.model.is_fitted:
                weight *= self.model._idf.weight(feature)
            q_weights[feature] = q_weights.get(feature, 0.0) + weight
        c_weights: dict[str, float] = {}
        for feature, weight in c_feats:
            if self.model.is_fitted:
                weight *= self.model._idf.weight(feature)
            c_weights[feature] = c_weights.get(feature, 0.0) + weight
        shared = set(q_weights) & set(c_weights)
        overlap = sum(min(q_weights[f], c_weights[f]) for f in shared)
        denom = (
            sum(q_weights.values()) ** 0.5 * sum(c_weights.values()) ** 0.5
        )
        return overlap / denom if denom > 0 else 0.0

    def rank(
        self, query: str, candidates: Sequence[str], kind: Kind = "code"
    ) -> list[tuple[int, float]]:
        scored = [
            (i, self.score_pair(query, candidate, kind))
            for i, candidate in enumerate(candidates)
        ]
        scored.sort(key=lambda pair: -pair[1])
        return scored
