"""The model zoo: one embedder per paper model (DESIGN.md §5).

Offline substitution for the HuggingFace checkpoints used by Laminar.
Each class's featurization encodes the *mechanism* that makes the
corresponding model comparatively strong or weak at the paper's two
evaluation tasks, so Tables 6 and 7 reproduce by construction:

===========================  ==============================================
paper model                  distinguishing featurization here
===========================  ==============================================
unixcoder-base               whole tokens only; no subtoken split, no IDF
unixcoder-code-search        subtoken split + synonyms/stemming + light AST,
                             IDF fitted on an AdvTest-like corpus
unixcoder-clone-detection    AST-structure dominant + dataflow, IDF fitted
                             on a clone-pair corpus
ReACC-py-retriever           order-aware token n-grams (raw + slotted),
                             IDF fitted on a Python code corpus
CodeBERT                     lowercased word bag, keywords included, no IDF
GraphCodeBERT                CodeBERT bag + normalized def-use dataflow
BAAI/bge-large-en            word + char-4-gram text features, IDF on text
thenlper/gte-large           char-3-grams only
===========================  ==============================================
"""

from __future__ import annotations

import re

from repro.errors import ValidationError
from repro.ml.ast_features import (
    dataflow_pairs,
    docstring_of,
    structural_features,
)
from repro.ml.embedding import EmbeddingModel, Feature
from repro.ml.tokenize import (
    PYTHON_KEYWORDS,
    char_ngrams,
    identifier_subtokens,
    split_subtokens,
    stem,
    token_ngrams,
    tokenize_code,
    tokenize_text,
)

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class UnixCoderBase(EmbeddingModel):
    """``unixcoder-base`` — the not-fine-tuned baseline of Table 6.

    Sees only whole surface tokens: ``is_prime`` and the query word
    "prime" never meet, which is exactly why the base model trails its
    fine-tuned variant on zero-shot text-to-code search.
    """

    name = "unixcoder-base"

    def code_features(self, text: str) -> list[Feature]:
        feats: list[Feature] = [
            (f"tok:{t}", 1.0) for t in tokenize_code(text)
        ]
        doc = docstring_of(text)
        if doc:
            feats.extend(
                (f"tok:{w}", 1.0)
                for w in tokenize_text(doc, synonyms=False, stemming=False)
            )
        return feats

    def text_features(self, text: str) -> list[Feature]:
        return [
            (f"tok:{w}", 1.0)
            for w in tokenize_text(text, synonyms=False, stemming=False)
        ]


class UnixCoderCodeSearch(EmbeddingModel):
    """``unixcoder-code-search`` — fine-tuned for text-to-code retrieval.

    Subtoken splitting, stemming and the NL->code synonym bridge align
    query vocabulary with identifier vocabulary; light AST features add
    robustness; IDF (fitted on the AdvTest-like corpus) suppresses
    boilerplate.  This mirrors what contrastive fine-tuning on
    (documentation, function) pairs buys the real model.
    """

    name = "unixcoder-code-search"

    def code_features(self, text: str) -> list[Feature]:
        feats: list[Feature] = [
            (f"sub:{stem(s)}", 1.0) for s in identifier_subtokens(text)
        ]
        doc = docstring_of(text)
        if doc:
            feats.extend(
                (f"sub:{w}", 1.5) for w in tokenize_text(doc)
            )
        # UnixCoder sees the AST during pretraining: a moderate structural
        # view keeps its code-code similarity sane under renaming
        feats.extend((f, 0.5) for f in structural_features(text))
        return feats

    def text_features(self, text: str) -> list[Feature]:
        return [(f"sub:{w}", 1.0) for w in tokenize_text(text)]


class UnixCoderCloneDetection(EmbeddingModel):
    """``unixcoder-clone-detection`` — fine-tuned on clone pairs.

    Identifier-independent structure dominates (AST bigrams, call
    targets, operators, dataflow), because clone pairs teach the model
    that naming is noise.  Recovers *all* solutions of a problem —
    including algorithmically different ones — hence the best MAP@100 in
    Table 7; but structure alone is less precise at rank 1 than exact
    sequence overlap, hence the lower Precision@1 than ReACC.
    """

    name = "unixcoder-clone-detection"

    _LITERAL = re.compile(r"\d+(?:\.\d+)?|'[^'\n]*'|\"[^\"\n]*\"")

    #: per-family weights: clone-pair fine-tuning teaches the model that
    #: *problem-level* evidence (which APIs are called, which operators
    #: and constants appear) outranks the exact statement layout — that is
    #: what lets it retrieve algorithmically different solutions of the
    #: same problem (the MAP@100 strength of Table 7)
    _FAMILY_WEIGHTS = {
        "call:": 4.0,
        "op:": 1.5,
        "ast2:": 1.4,
        "shape:": 1.0,
    }

    def code_features(self, text: str) -> list[Feature]:
        feats: list[Feature] = []
        for feature in structural_features(text):
            for prefix, weight in self._FAMILY_WEIGHTS.items():
                if feature.startswith(prefix):
                    feats.append((feature, weight))
                    break
        feats.extend((f, 1.0) for f in dataflow_pairs(text))
        # clone pairs teach the model that constants carry semantics even
        # when every identifier changes
        feats.extend(
            (f"lit:{m.group()}", 2.5) for m in self._LITERAL.finditer(text)
        )
        feats.extend(
            (f"sub:{stem(s)}", 0.2) for s in identifier_subtokens(text)
        )
        return feats

    def text_features(self, text: str) -> list[Feature]:
        return [(f"sub:{w}", 1.0) for w in tokenize_text(text)]


class ReACCRetriever(EmbeddingModel):
    """``ReACC-py-retriever`` — dual-encoder for partial-code retrieval.

    Order-aware token n-grams in two alphabets: raw (exact statement
    fragments — what makes the nearest clone of a *partial* query
    unambiguous, giving the best Precision@1 of Table 7) and slotted
    (identifiers abstracted to ``ID``, surviving renames).  Unigram
    subtokens provide a weak fallback.
    """

    name = "reacc-py-retriever"

    _LITERAL = re.compile(r"\d+(?:\.\d+)?|'[^'\n]*'|\"[^\"\n]*\"")

    @staticmethod
    def _slotted(tokens: list[str]) -> list[str]:
        out = []
        for token in tokens:
            if token.startswith("<"):
                out.append(token)
            elif (token[0].isalpha() or token[0] == "_") and token not in PYTHON_KEYWORDS:
                out.append("ID")
            else:
                out.append(token)
        return out

    def code_features(self, text: str) -> list[Feature]:
        tokens = tokenize_code(text)
        feats: list[Feature] = [
            (f"raw2:{g}", 1.0) for g in token_ngrams(tokens, 2)
        ]
        feats.extend((f"raw3:{g}", 1.5) for g in token_ngrams(tokens, 3))
        slotted = self._slotted(tokens)
        feats.extend((f"slot3:{g}", 0.8) for g in token_ngrams(slotted, 3))
        feats.extend((f"slot4:{g}", 0.5) for g in token_ngrams(slotted, 4))
        # literal values survive renaming: a strong near-clone signal that
        # a sequence retriever exploits (exact constants, format strings)
        feats.extend(
            (f"lit:{m.group()}", 0.3) for m in self._LITERAL.finditer(text)
        )
        return feats

    def text_features(self, text: str) -> list[Feature]:
        words = tokenize_text(text)
        feats: list[Feature] = [(f"sub:{w}", 1.0) for w in words]
        feats.extend((f"raw2:{g}", 0.5) for g in token_ngrams(words, 2))
        return feats


class CodeBERTSim(EmbeddingModel):
    """``CodeBERT`` — NL/PL masked-LM without retrieval fine-tuning.

    Zero-shot its embeddings are dominated by ubiquitous surface words
    (``def``/``return``/``self``) with no frequency correction — which is
    why the real model placed last in the paper's Table 7.  Emulated as a
    keyword/builtin histogram: identifier *content* is reduced to a
    4-character wordpiece prefix at low weight, so nearly all similarity
    mass sits on syntax words every program shares.
    """

    name = "codebert"

    #: zero-shot BERT-style embeddings have very low effective rank
    #: (anisotropy): emulated by hashing every feature into a tiny
    #: subspace, where identifier-noise collisions pollute the keyword
    #: signal and compress all similarities together
    effective_dim = 32

    #: a dominant common direction shared by every input
    _CLS_BIAS = 2.0

    def code_features(self, text: str) -> list[Feature]:
        feats: list[Feature] = [("bias:cls", self._CLS_BIAS)]
        for match in _WORD.finditer(text):
            word = match.group().lower()
            if word in PYTHON_KEYWORDS:
                feats.append((f"w:{word}", 1.0))
            else:
                feats.append((f"wp:{word[:4]}", 1.0))
        return feats

    def text_features(self, text: str) -> list[Feature]:
        feats: list[Feature] = [("bias:cls", self._CLS_BIAS)]
        feats.extend(
            (f"w:{w}", 1.0)
            for w in tokenize_text(text, synonyms=False, stemming=False)
        )
        return feats


class GraphCodeBERTSim(CodeBERTSim):
    """``GraphCodeBERT`` — CodeBERT plus dataflow pretraining.

    Inherits the weak word bag but adds normalized def-use dataflow
    edges, the rename-invariant signal that lifts it well above CodeBERT
    in Table 7 while staying below the purpose-built retrievers.
    """

    name = "graphcodebert"

    #: dataflow pretraining raises the effective rank well above plain
    #: CodeBERT, though still far below the retrieval-tuned models
    effective_dim = 256

    def code_features(self, text: str) -> list[Feature]:
        feats = super().code_features(text)
        # dataflow pretraining: a real, rename-invariant signal strong
        # enough to rise above the anisotropic common direction
        feats.extend((f, 3.0) for f in dataflow_pairs(text))
        return feats


class BGELargeSim(EmbeddingModel):
    """``BAAI/bge-large-en`` — a strong general-purpose text embedder.

    Word features with stemming (but no code-specific synonym bridge or
    subtoken splitting) plus char-4-grams, IDF fitted on generic text.
    Competitive mid-field on code-to-code, as in Table 7.
    """

    name = "bge-large-en"

    def _features(self, text: str) -> list[Feature]:
        # BPE-style subword splitting falls out of large-scale text
        # pretraining: snake_case/camelCase identifiers split naturally;
        # character n-grams keep the (rename-invariant) operator skeleton
        feats: list[Feature] = []
        for match in _WORD.finditer(text):
            for sub in split_subtokens(match.group()):
                feats.append((f"w:{stem(sub)}", 1.0))
        feats.extend((f"c4:{g}", 1.2) for g in char_ngrams(text.lower(), 4))
        feats.extend((f"c5:{g}", 0.8) for g in char_ngrams(text.lower(), 5))
        return feats

    def code_features(self, text: str) -> list[Feature]:
        return self._features(text)

    def text_features(self, text: str) -> list[Feature]:
        return self._features(text)


class GTELargeSim(EmbeddingModel):
    """``thenlper/gte-large`` — generic text embedder, character view.

    Char-3-grams of the raw text only: renaming identifiers or changing
    formatting destroys most of the signal, matching its weak Table 7
    showing on code clones.
    """

    name = "gte-large"

    #: generic text encoders truncate long inputs to their context window
    _CONTEXT_CHARS = 384

    def _features(self, text: str) -> list[Feature]:
        # prose view of code: the text is cleaned like natural language
        # (punctuation/operators stripped — precisely the tokens that
        # survive renaming), then reduced to character trigrams
        window = re.sub(r"[^a-z0-9 ]+", " ", text[: self._CONTEXT_CHARS].lower())
        return [(f"c3:{g}", 1.0) for g in char_ngrams(window, 3)]

    def code_features(self, text: str) -> list[Feature]:
        return self._features(text)

    def text_features(self, text: str) -> list[Feature]:
        return self._features(text)


#: canonical name -> class; includes the paper's exact identifiers
MODEL_REGISTRY: dict[str, type[EmbeddingModel]] = {
    "unixcoder-base": UnixCoderBase,
    "unixcoder-code-search": UnixCoderCodeSearch,
    "unixcoder-clone-detection": UnixCoderCloneDetection,
    "reacc-py-retriever": ReACCRetriever,
    "codebert": CodeBERTSim,
    "graphcodebert": GraphCodeBERTSim,
    "bge-large-en": BGELargeSim,
    "gte-large": GTELargeSim,
}

#: aliases accepted by :func:`get_model` (paper spellings)
_ALIASES = {
    "reacc-retriever-py": "reacc-py-retriever",
    "baai/bge-large-en": "bge-large-en",
    "thenlper/gte-large": "gte-large",
    "microsoft/unixcoder-base": "unixcoder-base",
}


def get_model(name: str, dim: int = 2048) -> EmbeddingModel:
    """Instantiate a zoo model by (paper) name."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in MODEL_REGISTRY:
        raise ValidationError(
            f"unknown model {name!r}",
            params={"model": name},
            details=f"available: {sorted(MODEL_REGISTRY)}",
        )
    return MODEL_REGISTRY[key](dim=dim)
