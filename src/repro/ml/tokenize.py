"""Tokenizers for code and natural language.

Three views of text feed the embedders:

* :func:`tokenize_code` — a regex lexer producing identifier / number /
  operator / string tokens.  Regex rather than :mod:`tokenize` because
  code-completion queries are *partial* programs that need not parse.
* :func:`split_subtokens` — camelCase / snake_case / digit-boundary
  splitting (``readRaDec`` -> ``read ra dec``), the normalization that
  separates the "fine-tuned" code-search model from its base variant.
* :func:`tokenize_text` — lowercase word tokens with light stemming and a
  small programming-synonym table, for natural-language queries.
"""

from __future__ import annotations

import re
from functools import lru_cache

_IDENTIFIER = r"[A-Za-z_][A-Za-z0-9_]*"
_NUMBER = r"\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"
_STRING = r"(?:'[^'\n]*'|\"[^\"\n]*\")"
_OPERATOR = r"(?:==|!=|<=|>=|->|\*\*|//|[-+*/%<>=!&|^~@.,:;()\[\]{}])"

_CODE_TOKEN = re.compile(
    rf"(?P<string>{_STRING})|(?P<number>{_NUMBER})"
    rf"|(?P<name>{_IDENTIFIER})|(?P<op>{_OPERATOR})"
)

_WORD = re.compile(r"[A-Za-z]+")

#: Python keywords — kept by the lexer but filterable by embedders
PYTHON_KEYWORDS = frozenset(
    """False None True and as assert async await break class continue def
    del elif else except finally for from global if import in is lambda
    nonlocal not or pass raise return try while with yield self cls
    print len range int str float list dict set tuple""".split()
)

#: small synonym table mapping NL query vocabulary onto code vocabulary —
#: the lexical bridge a contrastively trained code-search model learns.
PROGRAMMING_SYNONYMS: dict[str, str] = {
    "integer": "int",
    "integers": "int",
    "number": "num",
    "numbers": "num",
    "numeric": "num",
    "string": "str",
    "strings": "str",
    "text": "str",
    "array": "list",
    "arrays": "list",
    "lists": "list",
    "dictionary": "dict",
    "dictionaries": "dict",
    "mapping": "dict",
    "boolean": "bool",
    "calculate": "compute",
    "calculates": "compute",
    "calculating": "compute",
    "computes": "compute",
    "computing": "compute",
    "determine": "check",
    "determines": "check",
    "verify": "check",
    "verifies": "check",
    "checks": "check",
    "checking": "check",
    "test": "check",
    "tests": "check",
    "produce": "generate",
    "produces": "generate",
    "create": "generate",
    "creates": "generate",
    "generates": "generate",
    "generating": "generate",
    "output": "print",
    "display": "print",
    "show": "print",
    "prints": "print",
    "maximum": "max",
    "minimum": "min",
    "largest": "max",
    "smallest": "min",
    "biggest": "max",
    "average": "mean",
    "reverse": "invert",
    "reversed": "invert",
    "sorted": "sort",
    "sorting": "sort",
    "sorts": "sort",
    "frequency": "count",
    "frequencies": "count",
    "occurrences": "count",
    "counts": "count",
    "counting": "count",
    "find": "search",
    "finds": "search",
    "locate": "search",
    "lookup": "search",
    "retrieve": "get",
    "retrieves": "get",
    "fetch": "get",
    "fetches": "get",
    "remove": "delete",
    "removes": "delete",
    "whether": "check",
}

_SUFFIXES = ("ing", "ed", "es", "s")


def tokenize_code(source: str) -> list[str]:
    """Lex ``source`` into code tokens; never raises on partial code."""
    tokens: list[str] = []
    for match in _CODE_TOKEN.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind == "string":
            tokens.append("<str>")
            inner = text[1:-1]
            tokens.extend(word.lower() for word in _WORD.findall(inner))
        elif kind == "number":
            tokens.append("<num>")
        else:
            tokens.append(text)
    return tokens


@lru_cache(maxsize=65536)
def split_subtokens(identifier: str) -> tuple[str, ...]:
    """Split an identifier into lowercase subtokens.

    Handles snake_case, camelCase, PascalCase, ALLCAPS runs and digit
    boundaries: ``getVoTable`` -> ``('get', 'vo', 'table')``,
    ``read_ra_dec2`` -> ``('read', 'ra', 'dec')``.
    """
    parts: list[str] = []
    for chunk in identifier.split("_"):
        if not chunk:
            continue
        # split camelCase / PascalCase / ALLCAPSWord boundaries
        for piece in re.findall(
            r"[A-Z]+(?=[A-Z][a-z])|[A-Z]?[a-z]+|[A-Z]+|\d+", chunk
        ):
            if piece.isdigit():
                continue
            parts.append(piece.lower())
    return tuple(parts)


def stem(word: str) -> str:
    """Very light suffix stripping (enough to merge plural/gerund forms)."""
    lowered = word.lower()
    for suffix in _SUFFIXES:
        if lowered.endswith(suffix) and len(lowered) - len(suffix) >= 3:
            return lowered[: -len(suffix)]
    return lowered


def tokenize_text(
    text: str, *, synonyms: bool = True, stemming: bool = True
) -> list[str]:
    """Lowercase word tokens for natural-language text.

    ``synonyms``/``stemming`` apply the normalizations a fine-tuned
    text-to-code encoder effectively learns; the *base* models run with
    both disabled.
    """
    tokens: list[str] = []
    for word in _WORD.findall(text):
        lowered = word.lower()
        if synonyms and lowered in PROGRAMMING_SYNONYMS:
            lowered = PROGRAMMING_SYNONYMS[lowered]
        elif stemming:
            lowered = stem(lowered)
        tokens.append(lowered)
    return tokens


def code_identifiers(source: str) -> list[str]:
    """All identifier tokens in order, keywords excluded."""
    return [
        token
        for token in tokenize_code(source)
        if token[0].isalpha() or token[0] == "_"
        if token not in PYTHON_KEYWORDS and not token.startswith("<")
    ]


def identifier_subtokens(source: str) -> list[str]:
    """Flattened subtokens of every identifier in ``source``."""
    out: list[str] = []
    for name in code_identifiers(source):
        out.extend(split_subtokens(name))
    return out


def char_ngrams(text: str, n: int = 3) -> list[str]:
    """Character n-grams of the raw text (whitespace collapsed)."""
    collapsed = re.sub(r"\s+", " ", text.strip())
    if len(collapsed) < n:
        return [collapsed] if collapsed else []
    return [collapsed[i : i + n] for i in range(len(collapsed) - n + 1)]


def token_ngrams(tokens: list[str], n: int = 2) -> list[str]:
    """Order-aware token n-grams (the sequence features ReACC-style
    retrieval depends on)."""
    if len(tokens) < n:
        return []
    return ["␟".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
