"""CoSQA-like dataset: noisy web queries against mixed-quality code.

CoSQA (paper §6.2.1) pairs real web search queries with code; queries
are short, under-specified and lexically distant from the code.  The
synthetic equivalent: the code bank's query phrasings degraded by word
dropout, paraphrase substitution and boilerplate suffixes, retrieved
against a corpus of fully renamed implementations where half the
docstrings are stripped.
"""

from __future__ import annotations

import random

from repro.datasets.codebank import PROBLEMS
from repro.datasets.mutate import rename_identifiers, strip_docstrings
from repro.datasets.retrieval import RetrievalDataset

#: web-query paraphrases: substitutions that *deviate* from code
#: vocabulary (the reverse of the synonym bridge fine-tuned models learn)
_PARAPHRASES: dict[str, list[str]] = {
    "check": ["determine", "verify", "see"],
    "compute": ["work out", "calculate", "get"],
    "list": ["array", "collection"],
    "number": ["value", "figure"],
    "string": ["text", "word"],
    "count": ["tally", "how many"],
    "find": ["locate", "look up"],
    "remove": ["drop", "eliminate"],
    "convert": ["turn", "change"],
    "reverse": ["flip", "invert"],
    "sort": ["order", "arrange"],
    "generate": ["make", "produce"],
    "extract": ["pull", "grab"],
}

_SUFFIXES = ["", "", "", " in python", " python example", " code snippet"]


def _noisy_query(query: str, rng: random.Random) -> str:
    words = query.split()
    out: list[str] = []
    dropped = 0
    for word in words:
        lower = word.lower()
        if lower in _PARAPHRASES and rng.random() < 0.45:
            out.append(rng.choice(_PARAPHRASES[lower]))
        elif dropped < 2 and len(words) > 4 and rng.random() < 0.12:
            dropped += 1
            continue
        else:
            out.append(word)
    return " ".join(out) + rng.choice(_SUFFIXES)


def build_cosqa(
    seed: int = 11,
    *,
    queries_per_problem: int = 3,
    corpus_variants: int = 2,
) -> RetrievalDataset:
    """Build the CoSQA-like retrieval dataset.

    Corpus: ``corpus_variants`` fully renamed variants per problem, with
    ~half the docstrings stripped (web code is inconsistently documented).
    Queries: noisy phrasings; every corpus item of the same problem is
    relevant.
    """
    rng = random.Random(seed)
    corpus: list[str] = []
    corpus_keys: list[str] = []
    relevant_of: dict[str, set[int]] = {}
    for problem in PROBLEMS:
        indices: set[int] = set()
        for v in range(corpus_variants):
            variant = problem.variants[v % len(problem.variants)]
            code = variant
            if rng.random() < 0.5:
                code = strip_docstrings(code)
            style = rng.choice(("snake", "camel", "abbrev"))
            code = rename_identifiers(code, rng, style)
            indices.add(len(corpus))
            corpus.append(code)
            corpus_keys.append(problem.key)
        relevant_of[problem.key] = indices

    queries: list[str] = []
    relevant: list[set[int]] = []
    for problem in PROBLEMS:
        for q in range(min(queries_per_problem, len(problem.queries))):
            queries.append(_noisy_query(problem.queries[q], rng))
            relevant.append(set(relevant_of[problem.key]))

    return RetrievalDataset(
        name="cosqa-like",
        queries=queries,
        corpus=corpus,
        relevant=relevant,
        corpus_keys=corpus_keys,
    )
