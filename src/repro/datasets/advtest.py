"""AdvTest-like fine-tuning corpus (paper §2.x / §4.2).

AdvTest pairs documentation with functions whose identifiers have been
*normalized* — the adversarial twist that forces models to learn more
than name matching.  The synthetic equivalent: (docstring, function)
pairs from the code bank with all identifiers renamed to the generic
``var0``/``var1`` style.

This corpus is what the "fine-tuned" models of Tables 6 and 7 are fitted
on in this reproduction (IDF estimation standing in for contrastive
fine-tuning; see DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.datasets.codebank import PROBLEMS
from repro.datasets.mutate import rename_identifiers, strip_docstrings


@dataclass
class AdvTestPair:
    """One (documentation, normalized function) fine-tuning pair."""

    doc: str
    code: str
    problem_key: str


def build_advtest(seed: int = 19) -> list[AdvTestPair]:
    """All (doc, normalized-code) pairs across the bank's variants."""
    rng = random.Random(seed)
    pairs: list[AdvTestPair] = []
    for problem in PROBLEMS:
        for variant in problem.variants:
            normalized = rename_identifiers(
                strip_docstrings(variant), rng, "generic"
            )
            pairs.append(
                AdvTestPair(
                    doc=problem.docstring,
                    code=normalized,
                    problem_key=problem.key,
                )
            )
    return pairs


def fitting_corpus(seed: int = 19) -> list[str]:
    """Code-side corpus used to fit the fine-tuned models' IDF weights.

    Includes both the normalized and the original variants so frequency
    estimates cover both naming regimes.
    """
    pairs = build_advtest(seed)
    originals = [variant for problem in PROBLEMS for variant in problem.variants]
    return [pair.code for pair in pairs] + originals
