"""CSN-like dataset: clean docstring queries against curated code.

The CSN benchmark (paper §6.2.1) is CodeSearchNet with low-quality
queries filtered out: queries are well-formed documentation sentences
and functions keep meaningful names.  Synthetic equivalent: docstring
text as the query; corpus functions keep their entry-point names (only
locals renamed) but have the docstring itself removed so the match is
never trivially exact.
"""

from __future__ import annotations

import random

from repro.datasets.codebank import PROBLEMS
from repro.datasets.mutate import (
    collect_renameable,
    rename_identifiers,
    strip_docstrings,
)
from repro.datasets.retrieval import RetrievalDataset


def _entry_names(code: str) -> set[str]:
    """The function-definition names to protect from renaming."""
    import ast

    try:
        tree = ast.parse(code)
    except SyntaxError:
        return set()
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def build_csn(
    seed: int = 13,
    *,
    corpus_variants: int = 2,
) -> RetrievalDataset:
    """Build the CSN-like retrieval dataset.

    One query per problem (the canonical docstring); corpus keeps
    function names, renames locals, strips docstrings.
    """
    rng = random.Random(seed)
    corpus: list[str] = []
    corpus_keys: list[str] = []
    relevant_of: dict[str, set[int]] = {}
    for problem in PROBLEMS:
        indices: set[int] = set()
        for v in range(corpus_variants):
            variant = problem.variants[v % len(problem.variants)]
            # curated corpus = real code as its author named it: CSN does
            # not rename anything, it only withholds the docstring
            code = strip_docstrings(variant)
            indices.add(len(corpus))
            corpus.append(code)
            corpus_keys.append(problem.key)
        relevant_of[problem.key] = indices
    _ = rng, _entry_names, rename_identifiers  # kept for ablation variants

    queries = [problem.docstring for problem in PROBLEMS]
    relevant = [set(relevant_of[problem.key]) for problem in PROBLEMS]
    # guard: renaming must never have leaked the docstring back in
    assert all('"""' not in code for code in corpus)
    _ = collect_renameable  # imported for doc purposes; silence linters

    return RetrievalDataset(
        name="csn-like",
        queries=queries,
        corpus=corpus,
        relevant=relevant,
        corpus_keys=corpus_keys,
    )
