"""Synthetic galaxy coordinate catalogs (the ``coordinates.txt`` input).

The Internal Extinction workflow reads right-ascension/declination pairs
from a resources file (Listing 7: ``resources/coordinates.txt``).  These
generators produce deterministic catalogs of the same shape as the AMIGA
CIG sample the paper's workflow processes (~1050 isolated galaxies).
"""

from __future__ import annotations

import random
from pathlib import Path


def generate_coordinates(n: int, seed: int = 23) -> list[tuple[float, float]]:
    """``n`` (ra, dec) pairs: ra in [0, 360), dec in (-90, 90)."""
    rng = random.Random(seed)
    coords = []
    for _ in range(n):
        ra = round(rng.uniform(0.0, 360.0), 6)
        # uniform on the sphere: dec = asin(u), u in [-1, 1]
        import math

        dec = round(math.degrees(math.asin(rng.uniform(-1.0, 1.0))), 6)
        coords.append((ra, dec))
    return coords


def render_coordinates(coords: list[tuple[float, float]]) -> str:
    """The coordinates.txt format: one ``ra<TAB>dec`` pair per line."""
    return "\n".join(f"{ra}\t{dec}" for ra, dec in coords) + "\n"


def parse_coordinates(text: str) -> list[tuple[float, float]]:
    """Parse the coordinates.txt format back into (ra, dec) pairs."""
    coords = []
    for line_no, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.replace(",", " ").split()
        if len(parts) < 2:
            raise ValueError(
                f"line {line_no}: expected 'ra dec', got {stripped!r}"
            )
        coords.append((float(parts[0]), float(parts[1])))
    return coords


def write_coordinates_file(
    path: str | Path, n: int, seed: int = 23
) -> Path:
    """Write a synthetic catalog to ``path``; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_coordinates(generate_coordinates(n, seed)))
    return target
