"""Semantics-preserving code mutations for corpus fabrication.

The clone clusters of the CodeNet-like dataset and the corpus diversity
of the CoSQA/CSN-like datasets come from applying these mutations to the
code bank's reference implementations:

* :func:`rename_identifiers` — consistent renaming of user-defined
  identifiers (function names, parameters, locals) in one of several
  naming styles; attribute names, builtins and imports are preserved, so
  mutated code still runs.
* :func:`strip_docstrings` / :func:`strip_comments` — remove the NL
  signal (CodeNet submissions rarely carry documentation).
* :func:`truncate_code` — keep the leading fraction of lines, producing
  the partial-code queries of the clone-detection evaluation.
"""

from __future__ import annotations

import ast
import builtins
import random
import re

_BUILTIN_NAMES = frozenset(dir(builtins))

#: naming-style pools for renaming
_SNAKE_WORDS = (
    "value", "item", "total", "result", "current", "entry", "record",
    "element", "number", "bucket", "accum", "cursor", "piece", "chunk",
    "sample", "token", "figure", "slot", "probe", "datum", "cell",
)
_CAMEL_WORDS = (
    "Value", "Item", "Total", "Result", "Current", "Entry", "Record",
    "Element", "Number", "Bucket", "Accum", "Cursor", "Piece", "Chunk",
)
_ABBREVS = (
    "a", "b", "c", "d", "x", "y", "z", "p", "q", "r", "s", "t", "u", "v",
    "n1", "n2", "k1", "k2", "m1", "m2",
)


def collect_renameable(source: str) -> list[str]:
    """User-defined identifiers safe to rename, in first-seen order.

    Includes function definition names, parameters, assigned locals and
    loop/comprehension targets; excludes builtins, imported names and
    anything only ever read (likely a global/builtin reference).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    imported: set[str] = set()
    defined: list[str] = []
    seen: set[str] = set()

    def mark(name: str) -> None:
        if (
            name
            and name not in seen
            and name not in _BUILTIN_NAMES
            and not name.startswith("__")
        ):
            seen.add(name)
            defined.append(name)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                imported.add(alias.asname or alias.name)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mark(node.name)
            for arg in (
                list(node.args.args)
                + list(node.args.posonlyargs)
                + list(node.args.kwonlyargs)
            ):
                mark(arg.arg)
            if node.args.vararg:
                mark(node.args.vararg.arg)
            if node.args.kwarg:
                mark(node.args.kwarg.arg)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            mark(node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    mark(leaf.id)
    return [name for name in defined if name not in imported]


def _style_name(style: str, index: int, rng: random.Random, used: set[str]) -> str:
    for _attempt in range(50):
        if style == "snake":
            name = rng.choice(_SNAKE_WORDS) + "_" + rng.choice(_SNAKE_WORDS)
        elif style == "camel":
            name = rng.choice(_SNAKE_WORDS) + rng.choice(_CAMEL_WORDS)
        elif style == "abbrev":
            name = rng.choice(_ABBREVS)
        else:  # generic (AdvTest-style normalization)
            name = f"var{index}"
        if name not in used and name not in _BUILTIN_NAMES:
            used.add(name)
            return name
    name = f"ident{index}_{rng.randrange(1000)}"
    used.add(name)
    return name


def rename_identifiers(
    source: str, rng: random.Random, style: str = "snake",
    keep: set[str] | None = None,
) -> str:
    """Consistently rename user identifiers in the given naming style.

    ``keep`` protects selected names (e.g. the function's own name when a
    CSN-style dataset should preserve entry-point naming).  Occurrences
    after a dot (attributes) are never touched.
    """
    names = [n for n in collect_renameable(source) if not keep or n not in keep]
    if not names:
        return source
    used: set[str] = set(names) | (keep or set())
    mapping = {
        name: _style_name(style, i, rng, used) for i, name in enumerate(names)
    }
    out = source
    for old, new in mapping.items():
        out = re.sub(rf"(?<![\w.]){re.escape(old)}\b", new, out)
    return out


def strip_docstrings(source: str) -> str:
    """Remove module/function/class docstrings, keeping code lines."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source
    doomed: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                stmt = body[0]
                doomed.append((stmt.lineno, stmt.end_lineno or stmt.lineno))
    if not doomed:
        return source
    lines = source.splitlines()
    dead = {
        line_no
        for start, end in doomed
        for line_no in range(start, end + 1)
    }
    kept = [line for i, line in enumerate(lines, 1) if i not in dead]
    return "\n".join(kept) + ("\n" if source.endswith("\n") else "")


def strip_comments(source: str) -> str:
    """Remove ``#`` comments (outside string literals), keep code."""
    out_lines = []
    for line in source.splitlines():
        result = []
        quote: str | None = None
        i = 0
        while i < len(line):
            char = line[i]
            if quote:
                result.append(char)
                if char == quote and (i == 0 or line[i - 1] != "\\"):
                    quote = None
            elif char in ("'", '"'):
                quote = char
                result.append(char)
            elif char == "#":
                break
            else:
                result.append(char)
            i += 1
        text = "".join(result).rstrip()
        if text or not line.strip().startswith("#"):
            out_lines.append(text)
    return "\n".join(out_lines) + ("\n" if source.endswith("\n") else "")


def truncate_code(source: str, fraction: float = 0.5, min_lines: int = 2) -> str:
    """Keep the leading ``fraction`` of non-empty lines (partial code)."""
    lines = [line for line in source.splitlines() if line.strip()]
    keep = max(min_lines, int(round(len(lines) * fraction)))
    return "\n".join(lines[:keep]) + "\n"


def make_clone(
    source: str,
    rng: random.Random,
    *,
    style: str | None = None,
    strip_doc: bool = True,
    strip_com: bool = True,
    keep: set[str] | None = None,
) -> str:
    """One mutated clone: optional doc/comment strip + style renaming."""
    out = source
    if strip_doc:
        out = strip_docstrings(out)
    if strip_com:
        out = strip_comments(out)
    chosen = style or rng.choice(("snake", "camel", "abbrev", "generic"))
    return rename_identifiers(out, rng, chosen, keep=keep)
