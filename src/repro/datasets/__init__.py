"""Synthetic evaluation datasets (substitutes for CoSQA/CSN/CodeNet/AdvTest).

The paper evaluates its models on public corpora that cannot be
downloaded offline.  This subpackage generates deterministic synthetic
corpora with the same *structure*:

* :mod:`repro.datasets.codebank` — a bank of coding problems, each with
  natural-language query phrasings, a canonical docstring and several
  genuinely different reference implementations.
* :mod:`repro.datasets.mutate` — semantics-preserving code mutations
  (consistent identifier renaming in several styles, docstring/comment
  stripping) used to fabricate clones and corpus diversity.
* :mod:`repro.datasets.cosqa` — CoSQA-like labeled (web query, code)
  retrieval pairs with query noise.
* :mod:`repro.datasets.csn` — CodeSearchNet-like (docstring, code) pairs
  with clean queries.
* :mod:`repro.datasets.codenet` — CodeNet-like clone clusters (many
  solutions per problem) with partial-code queries for the zero-shot
  clone-detection evaluation (Table 7).
* :mod:`repro.datasets.advtest` — AdvTest-like (documentation, function)
  pairs with normalized identifiers, used to "fine-tune" (fit) models.
* :mod:`repro.datasets.votable` / :mod:`repro.datasets.galaxies` — the
  synthetic Virtual Observatory service and galaxy catalog behind the
  Internal Extinction workflow (§5.2, Table 5).

All generators take an explicit seed and are fully deterministic.
"""

from repro.datasets.codebank import CodeProblem, PROBLEMS, all_canonical_sources
from repro.datasets.cosqa import build_cosqa
from repro.datasets.csn import build_csn
from repro.datasets.codenet import build_codenet
from repro.datasets.advtest import build_advtest
from repro.datasets.retrieval import RetrievalDataset

__all__ = [
    "CodeProblem",
    "PROBLEMS",
    "all_canonical_sources",
    "RetrievalDataset",
    "build_cosqa",
    "build_csn",
    "build_codenet",
    "build_advtest",
]
