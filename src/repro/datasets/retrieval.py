"""Common container for retrieval evaluation datasets."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RetrievalDataset:
    """A (queries, corpus, relevance) triple for ranking evaluation.

    ``relevant[i]`` is the set of corpus indices considered correct for
    query ``i``.  ``exclude[i]`` optionally names one corpus index to be
    masked during ranking — used by the clone-detection dataset to hide
    the program a partial query was cut from (retrieving your own source
    is not clone detection).
    """

    name: str
    queries: list[str]
    corpus: list[str]
    relevant: list[set[int]]
    corpus_keys: list[str] = field(default_factory=list)
    exclude: list[int | None] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.queries) != len(self.relevant):
            raise ValueError("queries and relevant must align")
        if self.exclude and len(self.exclude) != len(self.queries):
            raise ValueError("exclude must align with queries")
        if not self.exclude:
            self.exclude = [None] * len(self.queries)
        for i, rel in enumerate(self.relevant):
            bad = [j for j in rel if not 0 <= j < len(self.corpus)]
            if bad:
                raise ValueError(f"query {i}: relevant indices out of range: {bad}")

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    @property
    def n_corpus(self) -> int:
        return len(self.corpus)

    def describe(self) -> str:
        sizes = [len(r) for r in self.relevant]
        avg = sum(sizes) / len(sizes) if sizes else 0.0
        return (
            f"{self.name}: {self.n_queries} queries over {self.n_corpus} "
            f"corpus items, avg {avg:.1f} relevant/query"
        )
