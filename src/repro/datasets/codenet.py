"""CodeNet-like clone clusters for zero-shot clone detection (Table 7).

CodeNet collects many independent submissions per programming problem.
The synthetic equivalent builds, per code-bank problem, a cluster of
solutions: every algorithmic variant appears under several naming styles
with documentation stripped.  Queries are *partial* solutions (the
leading ~half of a randomly chosen cluster member, as in ReACC's
evaluation); the member itself is masked from the ranking and the
remaining cluster members are the relevant set.

Cluster structure deliberately mixes two clone species:

* **near clones** — same algorithm, different identifiers (sequence
  models excel at retrieving these at rank 1);
* **semantic clones** — different algorithm, same problem (structural
  models are needed to retrieve these, which drives MAP@100).
"""

from __future__ import annotations

import random

from repro.datasets.codebank import PROBLEMS
from repro.datasets.mutate import make_clone, truncate_code
from repro.datasets.retrieval import RetrievalDataset

_STYLES = ("snake", "camel", "abbrev", "generic")


def build_codenet(
    seed: int = 17,
    *,
    clones_per_variant: int = 2,
    queries_per_problem: int = 2,
    query_fraction: float = 0.55,
) -> RetrievalDataset:
    """Build the CodeNet-like clone-detection dataset.

    With the default 42-problem bank and 2-3 variants per problem this
    yields a corpus of ~170 solutions in ~42 clusters and ~84 partial-code
    queries.  ``clones_per_variant=2`` keeps the relevance sets dominated
    by *cross-variant* (semantic) clones, the regime where structural and
    sequence models genuinely differ.
    """
    rng = random.Random(seed)
    corpus: list[str] = []
    corpus_keys: list[str] = []
    cluster_of: dict[str, list[int]] = {}

    for problem in PROBLEMS:
        members: list[int] = []
        for vi, variant in enumerate(problem.variants):
            for c in range(clones_per_variant):
                style = _STYLES[(vi + c) % len(_STYLES)]
                clone = make_clone(
                    variant,
                    rng,
                    style=style,
                    strip_doc=True,
                    strip_com=True,
                )
                members.append(len(corpus))
                corpus.append(clone)
                corpus_keys.append(problem.key)
        cluster_of[problem.key] = members

    queries: list[str] = []
    relevant: list[set[int]] = []
    exclude: list[int | None] = []
    for problem in PROBLEMS:
        members = cluster_of[problem.key]
        chosen = rng.sample(members, min(queries_per_problem, len(members)))
        for source_index in chosen:
            queries.append(
                truncate_code(corpus[source_index], fraction=query_fraction)
            )
            relevant.append(set(members) - {source_index})
            exclude.append(source_index)

    return RetrievalDataset(
        name="codenet-like",
        queries=queries,
        corpus=corpus,
        relevant=relevant,
        corpus_keys=corpus_keys,
        exclude=exclude,
    )
