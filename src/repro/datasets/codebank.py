'''The synthetic code bank: coding problems with multiple reference
implementations.

Each :class:`CodeProblem` bundles

* ``queries`` — web-search-style natural-language phrasings (CoSQA view),
* ``docstring`` — the canonical documentation sentence (CSN view),
* ``variants`` — two or more *genuinely different* implementations
  (different algorithms/idioms), the raw material for CodeNet-like clone
  clusters once :mod:`repro.datasets.mutate` renames identifiers.

The bank intentionally contains families of structurally similar
problems (several accumulate-in-a-loop problems, several recursive
problems, several regex problems...) so that purely structural models
face real confusion between different problems — the property that
separates MAP@100 from Precision@1 in Table 7.
'''

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CodeProblem:
    """One coding problem with NL views and implementation variants."""

    key: str
    title: str
    queries: tuple[str, ...]
    docstring: str
    tags: tuple[str, ...]
    variants: tuple[str, ...]


def _p(
    key: str,
    title: str,
    queries: list[str],
    docstring: str,
    tags: list[str],
    *variants: str,
) -> CodeProblem:
    cleaned = tuple(v.strip("\n") + "\n" for v in variants)
    return CodeProblem(
        key=key,
        title=title,
        queries=tuple(queries),
        docstring=docstring,
        tags=tuple(tags),
        variants=cleaned,
    )


PROBLEMS: list[CodeProblem] = [
    _p(
        "is_prime",
        "primality test",
        [
            "check if a number is prime",
            "python function to test whether an integer is prime",
            "determine if n is a prime number",
        ],
        "Check whether the given integer is a prime number.",
        ["math", "loop"],
        '''
def is_prime(num):
    """Check whether the given integer is a prime number."""
    if num < 2:
        return False
    for divisor in range(2, int(num ** 0.5) + 1):
        if num % divisor == 0:
            return False
    return True
''',
        '''
def is_prime(num):
    """Check whether the given integer is a prime number."""
    if num < 2:
        return False
    return all(num % candidate != 0 for candidate in range(2, num))
''',
        '''
def is_prime(num):
    """Check whether the given integer is a prime number."""
    if num in (2, 3):
        return True
    if num < 2 or num % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= num:
        if num % divisor == 0:
            return False
        divisor += 2
    return True
''',
    ),
    _p(
        "gcd",
        "greatest common divisor",
        [
            "compute the greatest common divisor of two numbers",
            "python gcd of two integers",
            "euclidean algorithm implementation",
        ],
        "Return the greatest common divisor of two integers.",
        ["math", "loop"],
        '''
def gcd(first, second):
    """Return the greatest common divisor of two integers."""
    while second:
        first, second = second, first % second
    return first
''',
        '''
def gcd(first, second):
    """Return the greatest common divisor of two integers."""
    if second == 0:
        return first
    return gcd(second, first % second)
''',
    ),
    _p(
        "fibonacci",
        "fibonacci numbers",
        [
            "generate the first n fibonacci numbers",
            "python fibonacci sequence function",
            "compute fibonacci series up to n terms",
        ],
        "Return a list with the first n Fibonacci numbers.",
        ["math", "sequence"],
        '''
def fibonacci(count):
    """Return a list with the first n Fibonacci numbers."""
    sequence = []
    current, following = 0, 1
    for _ in range(count):
        sequence.append(current)
        current, following = following, current + following
    return sequence
''',
        '''
def fibonacci(count):
    """Return a list with the first n Fibonacci numbers."""
    if count <= 0:
        return []
    if count == 1:
        return [0]
    sequence = [0, 1]
    while len(sequence) < count:
        sequence.append(sequence[-1] + sequence[-2])
    return sequence
''',
    ),
    _p(
        "factorial",
        "factorial",
        [
            "calculate the factorial of a number",
            "python factorial function without math module",
            "compute n factorial recursively",
        ],
        "Return the factorial of a non-negative integer.",
        ["math", "recursion"],
        '''
def factorial(num):
    """Return the factorial of a non-negative integer."""
    result = 1
    for factor in range(2, num + 1):
        result *= factor
    return result
''',
        '''
def factorial(num):
    """Return the factorial of a non-negative integer."""
    if num <= 1:
        return 1
    return num * factorial(num - 1)
''',
    ),
    _p(
        "collatz",
        "collatz sequence length",
        [
            "length of the collatz sequence for n",
            "python collatz conjecture steps counter",
            "how many steps until collatz reaches one",
        ],
        "Count the steps for n to reach 1 in the Collatz process.",
        ["math", "loop"],
        '''
def collatz_steps(num):
    """Count the steps for n to reach 1 in the Collatz process."""
    steps = 0
    while num != 1:
        if num % 2 == 0:
            num //= 2
        else:
            num = 3 * num + 1
        steps += 1
    return steps
''',
        '''
def collatz_steps(num):
    """Count the steps for n to reach 1 in the Collatz process."""
    if num == 1:
        return 0
    if num % 2 == 0:
        return 1 + collatz_steps(num // 2)
    return 1 + collatz_steps(3 * num + 1)
''',
    ),
    _p(
        "prime_factors",
        "prime factorization",
        [
            "find the prime factors of an integer",
            "python prime factorization of a number",
            "decompose n into prime factors",
        ],
        "Return the list of prime factors of n in ascending order.",
        ["math", "loop"],
        '''
def prime_factors(num):
    """Return the list of prime factors of n in ascending order."""
    factors = []
    divisor = 2
    while divisor * divisor <= num:
        while num % divisor == 0:
            factors.append(divisor)
            num //= divisor
        divisor += 1
    if num > 1:
        factors.append(num)
    return factors
''',
        '''
def prime_factors(num):
    """Return the list of prime factors of n in ascending order."""
    factors = []
    candidate = 2
    while num > 1:
        if num % candidate == 0:
            factors.append(candidate)
            num //= candidate
        else:
            candidate += 1
    return factors
''',
    ),
    _p(
        "is_palindrome",
        "palindrome check",
        [
            "check if a string is a palindrome",
            "python palindrome test ignoring case",
            "determine whether text reads the same backwards",
        ],
        "Check whether the given string is a palindrome, ignoring case.",
        ["string"],
        '''
def is_palindrome(text):
    """Check whether the given string is a palindrome, ignoring case."""
    cleaned = text.lower()
    return cleaned == cleaned[::-1]
''',
        '''
def is_palindrome(text):
    """Check whether the given string is a palindrome, ignoring case."""
    cleaned = text.lower()
    left, right = 0, len(cleaned) - 1
    while left < right:
        if cleaned[left] != cleaned[right]:
            return False
        left += 1
        right -= 1
    return True
''',
    ),
    _p(
        "count_vowels",
        "vowel counting",
        [
            "count the vowels in a string",
            "python count how many vowels a sentence has",
            "number of vowels in text",
        ],
        "Count the vowels appearing in the given text.",
        ["string", "loop"],
        '''
def count_vowels(text):
    """Count the vowels appearing in the given text."""
    total = 0
    for char in text.lower():
        if char in "aeiou":
            total += 1
    return total
''',
        '''
def count_vowels(text):
    """Count the vowels appearing in the given text."""
    return sum(1 for char in text.lower() if char in "aeiou")
''',
    ),
    _p(
        "word_count",
        "word frequency count",
        [
            "count word frequencies in a text",
            "python word occurrence counter from string",
            "build a histogram of words",
        ],
        "Return a dictionary mapping each word to its frequency.",
        ["string", "dict"],
        '''
def word_count(text):
    """Return a dictionary mapping each word to its frequency."""
    counts = {}
    for word in text.lower().split():
        counts[word] = counts.get(word, 0) + 1
    return counts
''',
        '''
def word_count(text):
    """Return a dictionary mapping each word to its frequency."""
    from collections import defaultdict
    counts = defaultdict(int)
    for word in text.lower().split():
        counts[word] += 1
    return dict(counts)
''',
    ),
    _p(
        "reverse_words",
        "reverse word order",
        [
            "reverse the order of words in a sentence",
            "python reverse words but not letters",
            "flip sentence word order",
        ],
        "Return the sentence with its word order reversed.",
        ["string"],
        '''
def reverse_words(sentence):
    """Return the sentence with its word order reversed."""
    return " ".join(sentence.split()[::-1])
''',
        '''
def reverse_words(sentence):
    """Return the sentence with its word order reversed."""
    words = sentence.split()
    reversed_words = []
    while words:
        reversed_words.append(words.pop())
    return " ".join(reversed_words)
''',
    ),
    _p(
        "is_anagram",
        "anagram check",
        [
            "check if two strings are anagrams",
            "python anagram detector for two words",
            "determine whether two words use the same letters",
        ],
        "Check whether the two given strings are anagrams of each other.",
        ["string", "dict"],
        '''
def is_anagram(first, second):
    """Check whether the two given strings are anagrams of each other."""
    return sorted(first.lower()) == sorted(second.lower())
''',
        '''
def is_anagram(first, second):
    """Check whether the two given strings are anagrams of each other."""
    counts = {}
    for char in first.lower():
        counts[char] = counts.get(char, 0) + 1
    for char in second.lower():
        counts[char] = counts.get(char, 0) - 1
    return all(value == 0 for value in counts.values())
''',
    ),
    _p(
        "caesar_cipher",
        "caesar cipher",
        [
            "encrypt text with a caesar cipher",
            "python caesar cipher shift letters",
            "simple letter substitution cipher with shift",
        ],
        "Encrypt the text by shifting each letter by the given amount.",
        ["string", "loop"],
        '''
def caesar_cipher(text, shift):
    """Encrypt the text by shifting each letter by the given amount."""
    encrypted = []
    for char in text:
        if char.isalpha():
            base = ord("a") if char.islower() else ord("A")
            encrypted.append(chr((ord(char) - base + shift) % 26 + base))
        else:
            encrypted.append(char)
    return "".join(encrypted)
''',
        '''
def caesar_cipher(text, shift):
    """Encrypt the text by shifting each letter by the given amount."""
    def rotate(char):
        if not char.isalpha():
            return char
        base = ord("a") if char.islower() else ord("A")
        return chr((ord(char) - base + shift) % 26 + base)
    return "".join(rotate(char) for char in text)
''',
    ),
    _p(
        "levenshtein",
        "edit distance",
        [
            "compute the levenshtein distance between two strings",
            "python edit distance dynamic programming",
            "minimum edits to transform one word into another",
        ],
        "Compute the Levenshtein edit distance between two strings.",
        ["string", "dp"],
        '''
def levenshtein(first, second):
    """Compute the Levenshtein edit distance between two strings."""
    rows = len(first) + 1
    cols = len(second) + 1
    table = [[0] * cols for _ in range(rows)]
    for row in range(rows):
        table[row][0] = row
    for col in range(cols):
        table[0][col] = col
    for row in range(1, rows):
        for col in range(1, cols):
            cost = 0 if first[row - 1] == second[col - 1] else 1
            table[row][col] = min(
                table[row - 1][col] + 1,
                table[row][col - 1] + 1,
                table[row - 1][col - 1] + cost,
            )
    return table[-1][-1]
''',
        '''
def levenshtein(first, second):
    """Compute the Levenshtein edit distance between two strings."""
    previous = list(range(len(second) + 1))
    for row, left_char in enumerate(first, 1):
        current = [row]
        for col, right_char in enumerate(second, 1):
            cost = 0 if left_char == right_char else 1
            current.append(min(previous[col] + 1, current[-1] + 1, previous[col - 1] + cost))
        previous = current
    return previous[-1]
''',
    ),
    _p(
        "find_max",
        "maximum element",
        [
            "find the largest number in a list",
            "python maximum of a list without max builtin",
            "get the biggest element of an array",
        ],
        "Return the largest value in a non-empty list.",
        ["list", "loop"],
        '''
def find_max(values):
    """Return the largest value in a non-empty list."""
    largest = values[0]
    for value in values[1:]:
        if value > largest:
            largest = value
    return largest
''',
        '''
def find_max(values):
    """Return the largest value in a non-empty list."""
    largest = None
    for value in values:
        if largest is None or value > largest:
            largest = value
    return largest
''',
    ),
    _p(
        "moving_average",
        "moving average",
        [
            "compute the moving average of a list",
            "python sliding window mean over values",
            "rolling average with window size",
        ],
        "Return the moving averages of the values for the given window.",
        ["list", "numeric"],
        '''
def moving_average(values, window):
    """Return the moving averages of the values for the given window."""
    averages = []
    for start in range(len(values) - window + 1):
        chunk = values[start:start + window]
        averages.append(sum(chunk) / window)
    return averages
''',
        '''
def moving_average(values, window):
    """Return the moving averages of the values for the given window."""
    averages = []
    running = sum(values[:window])
    averages.append(running / window)
    for index in range(window, len(values)):
        running += values[index] - values[index - window]
        averages.append(running / window)
    return averages
''',
    ),
    _p(
        "flatten",
        "flatten nested list",
        [
            "flatten a nested list of lists",
            "python flatten arbitrarily nested lists",
            "turn nested lists into a flat list",
        ],
        "Flatten an arbitrarily nested list into a flat list.",
        ["list", "recursion"],
        '''
def flatten(nested):
    """Flatten an arbitrarily nested list into a flat list."""
    flat = []
    for item in nested:
        if isinstance(item, list):
            flat.extend(flatten(item))
        else:
            flat.append(item)
    return flat
''',
        '''
def flatten(nested):
    """Flatten an arbitrarily nested list into a flat list."""
    flat = []
    stack = list(nested)
    while stack:
        item = stack.pop(0)
        if isinstance(item, list):
            stack = list(item) + stack
        else:
            flat.append(item)
    return flat
''',
    ),
    _p(
        "chunk_list",
        "chunk a list",
        [
            "split a list into chunks of size n",
            "python partition list into equal sized chunks",
            "break an array into groups of n elements",
        ],
        "Split the list into consecutive chunks of the given size.",
        ["list"],
        '''
def chunk_list(values, size):
    """Split the list into consecutive chunks of the given size."""
    return [values[start:start + size] for start in range(0, len(values), size)]
''',
        '''
def chunk_list(values, size):
    """Split the list into consecutive chunks of the given size."""
    chunks = []
    current = []
    for value in values:
        current.append(value)
        if len(current) == size:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)
    return chunks
''',
    ),
    _p(
        "dedupe",
        "remove duplicates",
        [
            "remove duplicates from a list keeping order",
            "python deduplicate list preserve first occurrence",
            "unique elements of an array in order",
        ],
        "Remove duplicate items from the list, keeping first occurrences.",
        ["list", "set"],
        '''
def dedupe(values):
    """Remove duplicate items from the list, keeping first occurrences."""
    seen = set()
    unique = []
    for value in values:
        if value not in seen:
            seen.add(value)
            unique.append(value)
    return unique
''',
        '''
def dedupe(values):
    """Remove duplicate items from the list, keeping first occurrences."""
    unique = []
    for value in values:
        if value not in unique:
            unique.append(value)
    return unique
''',
    ),
    _p(
        "merge_sorted",
        "merge sorted lists",
        [
            "merge two sorted lists into one sorted list",
            "python merge step of merge sort",
            "combine two ordered arrays keeping order",
        ],
        "Merge two sorted lists into a single sorted list.",
        ["list", "loop"],
        '''
def merge_sorted(left, right):
    """Merge two sorted lists into a single sorted list."""
    merged = []
    i = j = 0
    while i < len(left) and j < len(right):
        if left[i] <= right[j]:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return merged
''',
        '''
def merge_sorted(left, right):
    """Merge two sorted lists into a single sorted list."""
    merged = []
    left_copy = list(left)
    right_copy = list(right)
    while left_copy and right_copy:
        if left_copy[0] <= right_copy[0]:
            merged.append(left_copy.pop(0))
        else:
            merged.append(right_copy.pop(0))
    return merged + left_copy + right_copy
''',
    ),
    _p(
        "binary_search",
        "binary search",
        [
            "binary search for a value in a sorted list",
            "python binary search return index",
            "find element position in sorted array logarithmic",
        ],
        "Return the index of the target in a sorted list, or -1.",
        ["list", "search"],
        '''
def binary_search(values, target):
    """Return the index of the target in a sorted list, or -1."""
    low, high = 0, len(values) - 1
    while low <= high:
        mid = (low + high) // 2
        if values[mid] == target:
            return mid
        if values[mid] < target:
            low = mid + 1
        else:
            high = mid - 1
    return -1
''',
        '''
def binary_search(values, target, low=0, high=None):
    """Return the index of the target in a sorted list, or -1."""
    if high is None:
        high = len(values) - 1
    if low > high:
        return -1
    mid = (low + high) // 2
    if values[mid] == target:
        return mid
    if values[mid] < target:
        return binary_search(values, target, mid + 1, high)
    return binary_search(values, target, low, mid - 1)
''',
    ),
    _p(
        "quicksort",
        "quicksort",
        [
            "sort a list with quicksort",
            "python quicksort implementation",
            "recursive partition based sorting",
        ],
        "Sort the list in ascending order using quicksort.",
        ["list", "sort", "recursion"],
        '''
def quicksort(values):
    """Sort the list in ascending order using quicksort."""
    if len(values) <= 1:
        return list(values)
    pivot = values[len(values) // 2]
    smaller = [value for value in values if value < pivot]
    equal = [value for value in values if value == pivot]
    larger = [value for value in values if value > pivot]
    return quicksort(smaller) + equal + quicksort(larger)
''',
        '''
def quicksort(values):
    """Sort the list in ascending order using quicksort."""
    items = list(values)
    if len(items) <= 1:
        return items
    pivot = items.pop()
    smaller = [value for value in items if value <= pivot]
    larger = [value for value in items if value > pivot]
    return quicksort(smaller) + [pivot] + quicksort(larger)
''',
    ),
    _p(
        "bubble_sort",
        "bubble sort",
        [
            "sort a list with bubble sort",
            "python bubble sort swap adjacent elements",
            "simple quadratic sorting algorithm",
        ],
        "Sort the list in ascending order using bubble sort.",
        ["list", "sort", "loop"],
        '''
def bubble_sort(values):
    """Sort the list in ascending order using bubble sort."""
    items = list(values)
    for end in range(len(items) - 1, 0, -1):
        for index in range(end):
            if items[index] > items[index + 1]:
                items[index], items[index + 1] = items[index + 1], items[index]
    return items
''',
        '''
def bubble_sort(values):
    """Sort the list in ascending order using bubble sort."""
    items = list(values)
    swapped = True
    while swapped:
        swapped = False
        for index in range(len(items) - 1):
            if items[index] > items[index + 1]:
                items[index], items[index + 1] = items[index + 1], items[index]
                swapped = True
    return items
''',
    ),
    _p(
        "rotate_list",
        "rotate a list",
        [
            "rotate a list to the right by k positions",
            "python rotate array elements",
            "cyclic shift of list items",
        ],
        "Rotate the list to the right by the given number of positions.",
        ["list"],
        '''
def rotate_list(values, positions):
    """Rotate the list to the right by the given number of positions."""
    if not values:
        return []
    offset = positions % len(values)
    return values[-offset:] + values[:-offset] if offset else list(values)
''',
        '''
def rotate_list(values, positions):
    """Rotate the list to the right by the given number of positions."""
    items = list(values)
    for _ in range(positions % len(items) if items else 0):
        items.insert(0, items.pop())
    return items
''',
    ),
    _p(
        "invert_dict",
        "invert a dictionary",
        [
            "swap keys and values of a dictionary",
            "python invert dict mapping",
            "reverse a mapping so values become keys",
        ],
        "Invert the dictionary, mapping values back to their keys.",
        ["dict"],
        '''
def invert_dict(mapping):
    """Invert the dictionary, mapping values back to their keys."""
    return {value: key for key, value in mapping.items()}
''',
        '''
def invert_dict(mapping):
    """Invert the dictionary, mapping values back to their keys."""
    inverted = {}
    for key in mapping:
        inverted[mapping[key]] = key
    return inverted
''',
    ),
    _p(
        "group_by_key",
        "group records by key",
        [
            "group a list of pairs by their first element",
            "python group records by key into lists",
            "bucket items by a key function",
        ],
        "Group (key, value) pairs into a dict of key to value list.",
        ["dict", "loop"],
        '''
def group_by_key(pairs):
    """Group (key, value) pairs into a dict of key to value list."""
    groups = {}
    for key, value in pairs:
        groups.setdefault(key, []).append(value)
    return groups
''',
        '''
def group_by_key(pairs):
    """Group (key, value) pairs into a dict of key to value list."""
    from collections import defaultdict
    groups = defaultdict(list)
    for key, value in pairs:
        groups[key].append(value)
    return dict(groups)
''',
    ),
    _p(
        "most_common",
        "most common element",
        [
            "find the most common element in a list",
            "python mode of a list of values",
            "element with the highest frequency",
        ],
        "Return the most frequently occurring element of the list.",
        ["dict", "count"],
        '''
def most_common(values):
    """Return the most frequently occurring element of the list."""
    counts = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    best = None
    best_count = -1
    for value, count in counts.items():
        if count > best_count:
            best, best_count = value, count
    return best
''',
        '''
def most_common(values):
    """Return the most frequently occurring element of the list."""
    from collections import Counter
    counter = Counter(values)
    return counter.most_common(1)[0][0]
''',
    ),
    _p(
        "read_lines",
        "read file lines",
        [
            "read all lines from a text file",
            "python read file into list of stripped lines",
            "load a file line by line",
        ],
        "Read the file and return a list of stripped lines.",
        ["io"],
        '''
def read_lines(path):
    """Read the file and return a list of stripped lines."""
    with open(path) as handle:
        return [line.strip() for line in handle]
''',
        '''
def read_lines(path):
    """Read the file and return a list of stripped lines."""
    lines = []
    handle = open(path)
    try:
        for line in handle:
            lines.append(line.strip())
    finally:
        handle.close()
    return lines
''',
    ),
    _p(
        "count_lines",
        "count file lines",
        [
            "count the number of lines in a file",
            "python line counter for text files",
            "how many lines does a file contain",
        ],
        "Count the number of lines in the given file.",
        ["io", "count"],
        '''
def count_lines(path):
    """Count the number of lines in the given file."""
    with open(path) as handle:
        return sum(1 for _ in handle)
''',
        '''
def count_lines(path):
    """Count the number of lines in the given file."""
    total = 0
    with open(path) as handle:
        for _ in handle:
            total += 1
    return total
''',
    ),
    _p(
        "parse_json_field",
        "extract a json field",
        [
            "parse json and extract a field",
            "python load json string and read a key",
            "get value from json text by key",
        ],
        "Parse a JSON string and return the value stored under the key.",
        ["io", "json"],
        '''
def parse_json_field(payload, key):
    """Parse a JSON string and return the value stored under the key."""
    import json
    document = json.loads(payload)
    return document.get(key)
''',
        '''
def parse_json_field(payload, key):
    """Parse a JSON string and return the value stored under the key."""
    import json
    try:
        return json.loads(payload)[key]
    except KeyError:
        return None
''',
    ),
    _p(
        "celsius_to_fahrenheit",
        "temperature conversion",
        [
            "convert celsius to fahrenheit",
            "python temperature conversion function",
            "celsius fahrenheit formula code",
        ],
        "Convert a temperature from Celsius to Fahrenheit.",
        ["numeric"],
        '''
def celsius_to_fahrenheit(celsius):
    """Convert a temperature from Celsius to Fahrenheit."""
    return celsius * 9 / 5 + 32
''',
        '''
def celsius_to_fahrenheit(celsius):
    """Convert a temperature from Celsius to Fahrenheit."""
    ratio = 9 / 5
    return celsius * ratio + 32
''',
    ),
    _p(
        "std_dev",
        "standard deviation",
        [
            "compute the standard deviation of a list",
            "python population standard deviation",
            "spread of values around the mean",
        ],
        "Compute the population standard deviation of the values.",
        ["numeric", "math"],
        '''
def std_dev(values):
    """Compute the population standard deviation of the values."""
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return variance ** 0.5
''',
        '''
def std_dev(values):
    """Compute the population standard deviation of the values."""
    count = len(values)
    mean = sum(values) / count
    total = 0.0
    for value in values:
        total += (value - mean) * (value - mean)
    return (total / count) ** 0.5
''',
    ),
    _p(
        "dot_product",
        "dot product",
        [
            "compute the dot product of two vectors",
            "python inner product of two lists",
            "sum of elementwise products",
        ],
        "Compute the dot product of two equal-length vectors.",
        ["numeric", "math"],
        '''
def dot_product(left, right):
    """Compute the dot product of two equal-length vectors."""
    return sum(a * b for a, b in zip(left, right))
''',
        '''
def dot_product(left, right):
    """Compute the dot product of two equal-length vectors."""
    total = 0
    for index in range(len(left)):
        total += left[index] * right[index]
    return total
''',
    ),
    _p(
        "transpose",
        "matrix transpose",
        [
            "transpose a matrix represented as nested lists",
            "python swap rows and columns of a matrix",
            "matrix transposition without numpy",
        ],
        "Transpose a matrix given as a list of rows.",
        ["numeric", "list"],
        '''
def transpose(matrix):
    """Transpose a matrix given as a list of rows."""
    return [list(row) for row in zip(*matrix)]
''',
        '''
def transpose(matrix):
    """Transpose a matrix given as a list of rows."""
    rows = len(matrix)
    cols = len(matrix[0]) if matrix else 0
    result = [[None] * rows for _ in range(cols)]
    for r in range(rows):
        for c in range(cols):
            result[c][r] = matrix[r][c]
    return result
''',
    ),
    _p(
        "roman_numerals",
        "integer to roman numerals",
        [
            "convert an integer to roman numerals",
            "python number to roman numeral string",
            "roman numeral encoder",
        ],
        "Convert a positive integer into its Roman numeral string.",
        ["string", "math"],
        '''
def to_roman(num):
    """Convert a positive integer into its Roman numeral string."""
    table = [
        (1000, "M"), (900, "CM"), (500, "D"), (400, "CD"),
        (100, "C"), (90, "XC"), (50, "L"), (40, "XL"),
        (10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I"),
    ]
    pieces = []
    for value, symbol in table:
        while num >= value:
            pieces.append(symbol)
            num -= value
    return "".join(pieces)
''',
        '''
def to_roman(num):
    """Convert a positive integer into its Roman numeral string."""
    values = (1000, 900, 500, 400, 100, 90, 50, 40, 10, 9, 5, 4, 1)
    symbols = ("M", "CM", "D", "CD", "C", "XC", "L", "XL", "X", "IX", "V", "IV", "I")
    output = ""
    for index, value in enumerate(values):
        count, num = divmod(num, value)
        output += symbols[index] * count
    return output
''',
    ),
    _p(
        "leap_year",
        "leap year check",
        [
            "check whether a year is a leap year",
            "python leap year rule implementation",
            "is the given year a leap year",
        ],
        "Check whether the given year is a leap year.",
        ["math"],
        '''
def is_leap_year(year):
    """Check whether the given year is a leap year."""
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)
''',
        '''
def is_leap_year(year):
    """Check whether the given year is a leap year."""
    if year % 400 == 0:
        return True
    if year % 100 == 0:
        return False
    return year % 4 == 0
''',
    ),
    _p(
        "find_emails",
        "extract email addresses",
        [
            "extract email addresses from text",
            "python regex to find emails in a string",
            "scan text for e-mail addresses",
        ],
        "Extract all email addresses appearing in the text.",
        ["string", "regex"],
        '''
def find_emails(text):
    """Extract all email addresses appearing in the text."""
    import re
    return re.findall(r"[\\w.+-]+@[\\w-]+\\.[\\w.]+", text)
''',
        '''
def find_emails(text):
    """Extract all email addresses appearing in the text."""
    import re
    pattern = re.compile(r"[\\w.+-]+@[\\w-]+\\.[\\w.]+")
    return [match.group() for match in pattern.finditer(text)]
''',
    ),
    _p(
        "slugify",
        "slugify a title",
        [
            "convert a title into a url slug",
            "python slugify string lowercase hyphens",
            "make text url friendly",
        ],
        "Convert the text into a lowercase hyphen-separated URL slug.",
        ["string", "regex"],
        '''
def slugify(text):
    """Convert the text into a lowercase hyphen-separated URL slug."""
    import re
    lowered = text.lower()
    cleaned = re.sub(r"[^a-z0-9]+", "-", lowered)
    return cleaned.strip("-")
''',
        '''
def slugify(text):
    """Convert the text into a lowercase hyphen-separated URL slug."""
    pieces = []
    word = []
    for char in text.lower():
        if char.isalnum():
            word.append(char)
        elif word:
            pieces.append("".join(word))
            word = []
    if word:
        pieces.append("".join(word))
    return "-".join(pieces)
''',
    ),
    _p(
        "running_total",
        "cumulative sums",
        [
            "compute the running total of a list",
            "python cumulative sum without numpy",
            "prefix sums of an array",
        ],
        "Return the list of running totals (prefix sums) of the values.",
        ["list", "numeric"],
        '''
def running_total(values):
    """Return the list of running totals (prefix sums) of the values."""
    totals = []
    accumulator = 0
    for value in values:
        accumulator += value
        totals.append(accumulator)
    return totals
''',
        '''
def running_total(values):
    """Return the list of running totals (prefix sums) of the values."""
    from itertools import accumulate
    return list(accumulate(values))
''',
    ),
    _p(
        "second_largest",
        "second largest value",
        [
            "find the second largest number in a list",
            "python second maximum of an array",
            "runner up value in a list",
        ],
        "Return the second largest distinct value in the list.",
        ["list", "loop"],
        '''
def second_largest(values):
    """Return the second largest distinct value in the list."""
    largest = runner_up = None
    for value in values:
        if largest is None or value > largest:
            runner_up = largest
            largest = value
        elif value != largest and (runner_up is None or value > runner_up):
            runner_up = value
    return runner_up
''',
        '''
def second_largest(values):
    """Return the second largest distinct value in the list."""
    distinct = sorted(set(values))
    return distinct[-2] if len(distinct) >= 2 else None
''',
    ),
    _p(
        "is_armstrong",
        "armstrong number check",
        [
            "check if a number is an armstrong number",
            "python narcissistic number test",
            "sum of digit powers equals the number",
        ],
        "Check whether the number equals the sum of its digits raised to the digit count.",
        ["math", "digits"],
        '''
def is_armstrong(num):
    """Check whether the number equals the sum of its digits raised to the digit count."""
    digits = str(num)
    power = len(digits)
    return num == sum(int(digit) ** power for digit in digits)
''',
        '''
def is_armstrong(num):
    """Check whether the number equals the sum of its digits raised to the digit count."""
    remaining = num
    digits = []
    while remaining > 0:
        digits.append(remaining % 10)
        remaining //= 10
    power = len(digits)
    total = 0
    for digit in digits:
        total += digit ** power
    return total == num
''',
    ),
    _p(
        "digit_sum",
        "sum of digits",
        [
            "sum the digits of an integer",
            "python digit sum of a number",
            "add up all digits in n",
        ],
        "Return the sum of the decimal digits of the number.",
        ["math", "digits"],
        '''
def digit_sum(num):
    """Return the sum of the decimal digits of the number."""
    return sum(int(digit) for digit in str(abs(num)))
''',
        '''
def digit_sum(num):
    """Return the sum of the decimal digits of the number."""
    remaining = abs(num)
    total = 0
    while remaining:
        total += remaining % 10
        remaining //= 10
    return total
''',
    ),
    _p(
        "swap_case",
        "swap letter case",
        [
            "swap uppercase and lowercase in a string",
            "python invert character case",
            "toggle case of every letter",
        ],
        "Return the string with the case of every letter swapped.",
        ["string"],
        '''
def swap_case(text):
    """Return the string with the case of every letter swapped."""
    return "".join(
        char.lower() if char.isupper() else char.upper() for char in text
    )
''',
        '''
def swap_case(text):
    """Return the string with the case of every letter swapped."""
    swapped = []
    for char in text:
        if char.isupper():
            swapped.append(char.lower())
        else:
            swapped.append(char.upper())
    return "".join(swapped)
''',
    ),
    _p(
        "clamp",
        "clamp a value",
        [
            "clamp a number between a minimum and maximum",
            "python clip value into range",
            "bound a value to an interval",
        ],
        "Clamp the value into the inclusive range [low, high].",
        ["numeric"],
        '''
def clamp(value, low, high):
    """Clamp the value into the inclusive range [low, high]."""
    return max(low, min(high, value))
''',
        '''
def clamp(value, low, high):
    """Clamp the value into the inclusive range [low, high]."""
    if value < low:
        return low
    if value > high:
        return high
    return value
''',
    ),
    _p(
        "histogram_bins",
        "histogram binning",
        [
            "bin values into equal width histogram buckets",
            "python histogram counts without numpy",
            "count values per interval",
        ],
        "Count how many values fall into each of n equal-width bins.",
        ["numeric", "count"],
        '''
def histogram_bins(values, n_bins, low, high):
    """Count how many values fall into each of n equal-width bins."""
    width = (high - low) / n_bins
    counts = [0] * n_bins
    for value in values:
        index = int((value - low) / width)
        if index == n_bins:
            index -= 1
        if 0 <= index < n_bins:
            counts[index] += 1
    return counts
''',
        '''
def histogram_bins(values, n_bins, low, high):
    """Count how many values fall into each of n equal-width bins."""
    counts = [0 for _ in range(n_bins)]
    span = high - low
    for value in values:
        if low <= value <= high:
            position = (value - low) / span
            index = min(int(position * n_bins), n_bins - 1)
            counts[index] += 1
    return counts
''',
    ),
    _p(
        "max_subarray",
        "maximum subarray sum",
        [
            "find the maximum sum of a contiguous subarray",
            "python kadane algorithm implementation",
            "largest contiguous sum in an array",
        ],
        "Return the maximum sum over all contiguous subarrays.",
        ["list", "dp"],
        '''
def max_subarray(values):
    """Return the maximum sum over all contiguous subarrays."""
    best = values[0]
    current = values[0]
    for value in values[1:]:
        current = max(value, current + value)
        best = max(best, current)
    return best
''',
        '''
def max_subarray(values):
    """Return the maximum sum over all contiguous subarrays."""
    best = None
    for start in range(len(values)):
        total = 0
        for end in range(start, len(values)):
            total += values[end]
            if best is None or total > best:
                best = total
    return best
''',
    ),
    _p(
        "binary_to_decimal",
        "binary string to integer",
        [
            "convert a binary string to a decimal number",
            "python parse base two representation",
            "binary to integer without int builtin",
        ],
        "Convert a binary digit string into its decimal value.",
        ["string", "math"],
        '''
def binary_to_decimal(bits):
    """Convert a binary digit string into its decimal value."""
    value = 0
    for bit in bits:
        value = value * 2 + (1 if bit == "1" else 0)
    return value
''',
        '''
def binary_to_decimal(bits):
    """Convert a binary digit string into its decimal value."""
    total = 0
    for position, bit in enumerate(reversed(bits)):
        if bit == "1":
            total += 2 ** position
    return total
''',
    ),
    _p(
        "common_elements",
        "intersection of two lists",
        [
            "find the common elements of two lists",
            "python intersection of two arrays keeping order",
            "shared items between two sequences",
        ],
        "Return the elements of the first list that also occur in the second.",
        ["list", "set"],
        '''
def common_elements(first, second):
    """Return the elements of the first list that also occur in the second."""
    lookup = set(second)
    return [value for value in first if value in lookup]
''',
        '''
def common_elements(first, second):
    """Return the elements of the first list that also occur in the second."""
    shared = []
    for value in first:
        for candidate in second:
            if value == candidate:
                shared.append(value)
                break
    return shared
''',
    ),
    _p(
        "title_case",
        "title case a sentence",
        [
            "capitalize the first letter of every word",
            "python title case without str title",
            "make each word start with a capital letter",
        ],
        "Capitalize the first letter of every word in the sentence.",
        ["string"],
        '''
def title_case(sentence):
    """Capitalize the first letter of every word in the sentence."""
    return " ".join(
        word[:1].upper() + word[1:] for word in sentence.split(" ")
    )
''',
        '''
def title_case(sentence):
    """Capitalize the first letter of every word in the sentence."""
    words = []
    for word in sentence.split(" "):
        if word:
            words.append(word[0].upper() + word[1:])
        else:
            words.append(word)
    return " ".join(words)
''',
    ),
]


#: quick lookup by problem key
PROBLEM_INDEX: dict[str, CodeProblem] = {p.key: p for p in PROBLEMS}


def all_canonical_sources() -> list[str]:
    """Every variant of every problem — the fitting/"pretraining" corpus."""
    return [variant for problem in PROBLEMS for variant in problem.variants]


def problems_with_tag(tag: str) -> list[CodeProblem]:
    return [p for p in PROBLEMS if tag in p.tags]
