"""Synthetic Virtual Observatory VOTable service (paper §5.2 substitute).

The Internal Extinction workflow downloads VOTables from the Virtual
Observatory and parses them with astropy.  Both are unavailable offline,
so this module provides:

* :func:`render_votable` / :func:`parse_votable` — a minimal but real
  VOTable 1.3 XML writer/parser (the astropy substitute, exercising an
  actual XML parse on every stream element);
* :class:`VOTableService` — a deterministic fake of the AMIGA/VO
  catalog: galaxy properties are derived from the query coordinates via
  seeded hashing, and every query charges a configurable service latency
  (the knob behind Table 5's I/O-bound behaviour).

Galaxy properties follow the AMIGA internal-extinction inputs: the
morphological (Hubble) type ``t`` and the log axis ratio ``logr25``.
"""

from __future__ import annotations

import hashlib
import random
import time
import xml.etree.ElementTree as ET
from dataclasses import dataclass

from repro.errors import ValidationError

#: VOTable fields served for every coordinate query
FIELDS: tuple[tuple[str, str], ...] = (
    ("name", "char"),
    ("ra", "double"),
    ("dec", "double"),
    ("t", "double"),
    ("logr25", "double"),
)


def render_votable(rows: list[dict[str, object]]) -> str:
    """Serialize rows into VOTable XML (subset of the 1.3 schema)."""
    votable = ET.Element("VOTABLE", version="1.3")
    resource = ET.SubElement(votable, "RESOURCE")
    table = ET.SubElement(resource, "TABLE")
    for name, datatype in FIELDS:
        ET.SubElement(table, "FIELD", name=name, datatype=datatype)
    data = ET.SubElement(table, "DATA")
    tabledata = ET.SubElement(data, "TABLEDATA")
    for row in rows:
        tr = ET.SubElement(tabledata, "TR")
        for name, _datatype in FIELDS:
            td = ET.SubElement(tr, "TD")
            td.text = str(row.get(name, ""))
    return ET.tostring(votable, encoding="unicode")


def parse_votable(xml_text: str) -> list[dict[str, object]]:
    """Parse VOTable XML into a list of row dicts (astropy substitute).

    Numeric fields (datatype double) are converted to float; raises
    :class:`ValidationError` on malformed documents.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise ValidationError(
            "malformed VOTable document", details=str(exc)
        ) from exc
    fields: list[tuple[str, str]] = [
        (field.get("name", ""), field.get("datatype", "char"))
        for field in root.iter("FIELD")
    ]
    if not fields:
        raise ValidationError("VOTable has no FIELD declarations")
    rows: list[dict[str, object]] = []
    for tr in root.iter("TR"):
        cells = [td.text or "" for td in tr.findall("TD")]
        if len(cells) != len(fields):
            raise ValidationError(
                f"VOTable row has {len(cells)} cells for {len(fields)} fields"
            )
        row: dict[str, object] = {}
        for (name, datatype), cell in zip(fields, cells):
            row[name] = float(cell) if datatype == "double" else cell
        rows.append(row)
    return rows


@dataclass
class VOTableService:
    """Deterministic synthetic Virtual Observatory endpoint.

    ``query(ra, dec)`` returns a VOTable XML string for the galaxy at the
    given coordinates after sleeping ``latency_s`` seconds (the modelled
    service round trip).  Properties are a pure function of
    (ra, dec, seed), so repeated runs and different mappings see
    identical catalogs.
    """

    latency_s: float = 0.0
    seed: int = 42

    def _rng_for(self, ra: float, dec: float) -> random.Random:
        digest = hashlib.blake2b(
            f"{self.seed}:{ra:.6f}:{dec:.6f}".encode(), digest_size=8
        ).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def query(self, ra: float, dec: float) -> str:
        """One catalog lookup -> VOTable XML (charges the latency)."""
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        rng = self._rng_for(ra, dec)
        row = {
            "name": f"CIG{rng.randrange(1, 1051):04d}",
            "ra": round(ra, 6),
            "dec": round(dec, 6),
            # Hubble morphological type: mostly spirals (3..7)
            "t": float(rng.choices(
                population=[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
                weights=[2, 4, 10, 14, 16, 14, 10, 5, 3, 2],
            )[0]),
            # log10 of the major/minor axis ratio, 0 .. ~0.9
            "logr25": round(rng.uniform(0.0, 0.9), 4),
        }
        return render_votable([row])


#: AMIGA-style gamma coefficients by Hubble type t (1..10): the slope of
#: internal extinction vs axis-ratio for each morphology.
_GAMMA_BY_TYPE: dict[int, float] = {
    1: 0.20, 2: 0.43, 3: 0.64, 4: 0.84, 5: 1.02,
    6: 1.18, 7: 1.32, 8: 1.44, 9: 1.54, 10: 1.62,
}


def internal_extinction(t: float, logr25: float) -> float:
    """The §5.2 computation: internal dust extinction of a galaxy.

    ``A_int = gamma(t) * logr25`` with the morphology-dependent slope
    above; types outside 1..10 are clamped, as catalog pipelines do.
    """
    key = min(10, max(1, int(round(t))))
    return _GAMMA_BY_TYPE[key] * float(logr25)
