"""Data Access Object layer (paper §3.2.3).

CRUD against the data store.  Two interchangeable backends:

* :class:`InMemoryDAO` — dict-based, used by tests and ephemeral stacks.
* :class:`SqliteDAO` — durable storage standing in for the paper's
  remote MySQL web service; embeddings stored as float32 BLOBs.

The DAO layer knows nothing about ownership/dedup rules — that is the
service layer's job — it only persists and retrieves records.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.errors import NotFoundError
from repro.registry.entities import PERecord, UserRecord, WorkflowRecord


class RegistryDAO(ABC):
    """Abstract CRUD interface over users, PEs and workflows."""

    # -- users ------------------------------------------------------------
    @abstractmethod
    def insert_user(self, name: str, password_hash: str) -> UserRecord: ...

    @abstractmethod
    def get_user_by_name(self, name: str) -> UserRecord | None: ...

    @abstractmethod
    def all_users(self) -> list[UserRecord]: ...

    # -- PEs ---------------------------------------------------------------
    @abstractmethod
    def insert_pe(self, record: PERecord) -> PERecord: ...

    @abstractmethod
    def update_pe(self, record: PERecord) -> None: ...

    @abstractmethod
    def get_pe(self, pe_id: int) -> PERecord | None: ...

    @abstractmethod
    def find_pe_by_name(self, name: str) -> list[PERecord]: ...

    @abstractmethod
    def all_pes(self) -> list[PERecord]: ...

    @abstractmethod
    def delete_pe(self, pe_id: int) -> None: ...

    # -- workflows -----------------------------------------------------------
    @abstractmethod
    def insert_workflow(self, record: WorkflowRecord) -> WorkflowRecord: ...

    @abstractmethod
    def update_workflow(self, record: WorkflowRecord) -> None: ...

    @abstractmethod
    def get_workflow(self, workflow_id: int) -> WorkflowRecord | None: ...

    @abstractmethod
    def find_workflow_by_entry_point(
        self, entry_point: str
    ) -> list[WorkflowRecord]: ...

    @abstractmethod
    def all_workflows(self) -> list[WorkflowRecord]: ...

    @abstractmethod
    def delete_workflow(self, workflow_id: int) -> None: ...


class InMemoryDAO(RegistryDAO):
    """Dict-backed DAO; thread-safe for the in-process server."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._users: dict[int, UserRecord] = {}
        self._pes: dict[int, PERecord] = {}
        self._workflows: dict[int, WorkflowRecord] = {}
        self._next_user = 1
        self._next_pe = 1
        self._next_workflow = 1

    # -- users ------------------------------------------------------------
    def insert_user(self, name: str, password_hash: str) -> UserRecord:
        with self._lock:
            record = UserRecord(self._next_user, name, password_hash)
            self._users[record.user_id] = record
            self._next_user += 1
            return record

    def get_user_by_name(self, name: str) -> UserRecord | None:
        with self._lock:
            for user in self._users.values():
                if user.user_name == name:
                    return user
            return None

    def all_users(self) -> list[UserRecord]:
        with self._lock:
            return sorted(self._users.values(), key=lambda u: u.user_id)

    # -- PEs ---------------------------------------------------------------
    def insert_pe(self, record: PERecord) -> PERecord:
        with self._lock:
            record.pe_id = self._next_pe
            self._next_pe += 1
            self._pes[record.pe_id] = record
            return record

    def update_pe(self, record: PERecord) -> None:
        with self._lock:
            if record.pe_id not in self._pes:
                raise NotFoundError(
                    f"PE id {record.pe_id} not found", params={"peId": record.pe_id}
                )
            self._pes[record.pe_id] = record

    def get_pe(self, pe_id: int) -> PERecord | None:
        with self._lock:
            return self._pes.get(pe_id)

    def find_pe_by_name(self, name: str) -> list[PERecord]:
        with self._lock:
            return [pe for pe in self._pes.values() if pe.pe_name == name]

    def all_pes(self) -> list[PERecord]:
        with self._lock:
            return sorted(self._pes.values(), key=lambda p: p.pe_id)

    def delete_pe(self, pe_id: int) -> None:
        with self._lock:
            if pe_id not in self._pes:
                raise NotFoundError(f"PE id {pe_id} not found", params={"peId": pe_id})
            del self._pes[pe_id]
            for workflow in self._workflows.values():
                if pe_id in workflow.pe_ids:
                    workflow.pe_ids.remove(pe_id)

    # -- workflows -----------------------------------------------------------
    def insert_workflow(self, record: WorkflowRecord) -> WorkflowRecord:
        with self._lock:
            record.workflow_id = self._next_workflow
            self._next_workflow += 1
            self._workflows[record.workflow_id] = record
            return record

    def update_workflow(self, record: WorkflowRecord) -> None:
        with self._lock:
            if record.workflow_id not in self._workflows:
                raise NotFoundError(
                    f"workflow id {record.workflow_id} not found",
                    params={"workflowId": record.workflow_id},
                )
            self._workflows[record.workflow_id] = record

    def get_workflow(self, workflow_id: int) -> WorkflowRecord | None:
        with self._lock:
            return self._workflows.get(workflow_id)

    def find_workflow_by_entry_point(self, entry_point: str) -> list[WorkflowRecord]:
        with self._lock:
            return [
                wf
                for wf in self._workflows.values()
                if wf.entry_point == entry_point
            ]

    def all_workflows(self) -> list[WorkflowRecord]:
        with self._lock:
            return sorted(self._workflows.values(), key=lambda w: w.workflow_id)

    def delete_workflow(self, workflow_id: int) -> None:
        with self._lock:
            if workflow_id not in self._workflows:
                raise NotFoundError(
                    f"workflow id {workflow_id} not found",
                    params={"workflowId": workflow_id},
                )
            del self._workflows[workflow_id]


_SCHEMA = """
CREATE TABLE IF NOT EXISTS users (
    user_id INTEGER PRIMARY KEY AUTOINCREMENT,
    user_name TEXT UNIQUE NOT NULL,
    password_hash TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS pes (
    pe_id INTEGER PRIMARY KEY AUTOINCREMENT,
    pe_name TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    description_origin TEXT NOT NULL DEFAULT 'user',
    pe_code TEXT NOT NULL,
    pe_source TEXT NOT NULL DEFAULT '',
    pe_imports TEXT NOT NULL DEFAULT '[]',
    code_embedding BLOB,
    desc_embedding BLOB,
    owners TEXT NOT NULL DEFAULT '[]'
);
CREATE TABLE IF NOT EXISTS workflows (
    workflow_id INTEGER PRIMARY KEY AUTOINCREMENT,
    workflow_name TEXT NOT NULL,
    entry_point TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    workflow_code TEXT NOT NULL,
    workflow_source TEXT NOT NULL DEFAULT '',
    pe_ids TEXT NOT NULL DEFAULT '[]',
    desc_embedding BLOB,
    owners TEXT NOT NULL DEFAULT '[]'
);
CREATE INDEX IF NOT EXISTS idx_pes_name ON pes(pe_name);
CREATE INDEX IF NOT EXISTS idx_wf_entry ON workflows(entry_point);
"""


def _blob(vec: np.ndarray | None) -> bytes | None:
    if vec is None:
        return None
    return np.asarray(vec, dtype=np.float32).tobytes()


def _unblob(raw: bytes | None) -> np.ndarray | None:
    if raw is None:
        return None
    return np.frombuffer(raw, dtype=np.float32).copy()


class SqliteDAO(RegistryDAO):
    """SQLite-backed DAO (the durable stand-in for the web MySQL service)."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        self._lock = threading.RLock()
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        self._conn.close()

    # -- users ------------------------------------------------------------
    def insert_user(self, name: str, password_hash: str) -> UserRecord:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO users (user_name, password_hash) VALUES (?, ?)",
                (name, password_hash),
            )
            return UserRecord(int(cursor.lastrowid), name, password_hash)

    def get_user_by_name(self, name: str) -> UserRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM users WHERE user_name = ?", (name,)
            ).fetchone()
        if row is None:
            return None
        return UserRecord(row["user_id"], row["user_name"], row["password_hash"])

    def all_users(self) -> list[UserRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM users ORDER BY user_id"
            ).fetchall()
        return [
            UserRecord(r["user_id"], r["user_name"], r["password_hash"])
            for r in rows
        ]

    # -- PEs ---------------------------------------------------------------
    @staticmethod
    def _pe_from_row(row: sqlite3.Row) -> PERecord:
        return PERecord(
            pe_id=row["pe_id"],
            pe_name=row["pe_name"],
            description=row["description"],
            description_origin=row["description_origin"],
            pe_code=row["pe_code"],
            pe_source=row["pe_source"],
            pe_imports=json.loads(row["pe_imports"]),
            code_embedding=_unblob(row["code_embedding"]),
            desc_embedding=_unblob(row["desc_embedding"]),
            owners=set(json.loads(row["owners"])),
        )

    def insert_pe(self, record: PERecord) -> PERecord:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                """INSERT INTO pes (pe_name, description, description_origin,
                   pe_code, pe_source, pe_imports, code_embedding,
                   desc_embedding, owners)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)""",
                (
                    record.pe_name,
                    record.description,
                    record.description_origin,
                    record.pe_code,
                    record.pe_source,
                    json.dumps(record.pe_imports),
                    _blob(record.code_embedding),
                    _blob(record.desc_embedding),
                    json.dumps(sorted(record.owners)),
                ),
            )
            record.pe_id = int(cursor.lastrowid)
            return record

    def update_pe(self, record: PERecord) -> None:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                """UPDATE pes SET pe_name=?, description=?,
                   description_origin=?, pe_code=?, pe_source=?,
                   pe_imports=?, code_embedding=?, desc_embedding=?, owners=?
                   WHERE pe_id=?""",
                (
                    record.pe_name,
                    record.description,
                    record.description_origin,
                    record.pe_code,
                    record.pe_source,
                    json.dumps(record.pe_imports),
                    _blob(record.code_embedding),
                    _blob(record.desc_embedding),
                    json.dumps(sorted(record.owners)),
                    record.pe_id,
                ),
            )
            if cursor.rowcount == 0:
                raise NotFoundError(
                    f"PE id {record.pe_id} not found", params={"peId": record.pe_id}
                )

    def get_pe(self, pe_id: int) -> PERecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM pes WHERE pe_id = ?", (pe_id,)
            ).fetchone()
        return None if row is None else self._pe_from_row(row)

    def find_pe_by_name(self, name: str) -> list[PERecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM pes WHERE pe_name = ? ORDER BY pe_id", (name,)
            ).fetchall()
        return [self._pe_from_row(r) for r in rows]

    def all_pes(self) -> list[PERecord]:
        with self._lock:
            rows = self._conn.execute("SELECT * FROM pes ORDER BY pe_id").fetchall()
        return [self._pe_from_row(r) for r in rows]

    def delete_pe(self, pe_id: int) -> None:
        with self._lock, self._conn:
            cursor = self._conn.execute("DELETE FROM pes WHERE pe_id=?", (pe_id,))
            if cursor.rowcount == 0:
                raise NotFoundError(f"PE id {pe_id} not found", params={"peId": pe_id})
            rows = self._conn.execute("SELECT * FROM workflows").fetchall()
            for row in rows:
                pe_ids = json.loads(row["pe_ids"])
                if pe_id in pe_ids:
                    pe_ids.remove(pe_id)
                    self._conn.execute(
                        "UPDATE workflows SET pe_ids=? WHERE workflow_id=?",
                        (json.dumps(pe_ids), row["workflow_id"]),
                    )

    # -- workflows -----------------------------------------------------------
    @staticmethod
    def _wf_from_row(row: sqlite3.Row) -> WorkflowRecord:
        return WorkflowRecord(
            workflow_id=row["workflow_id"],
            workflow_name=row["workflow_name"],
            entry_point=row["entry_point"],
            description=row["description"],
            workflow_code=row["workflow_code"],
            workflow_source=row["workflow_source"],
            pe_ids=json.loads(row["pe_ids"]),
            desc_embedding=_unblob(row["desc_embedding"]),
            owners=set(json.loads(row["owners"])),
        )

    def insert_workflow(self, record: WorkflowRecord) -> WorkflowRecord:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                """INSERT INTO workflows (workflow_name, entry_point,
                   description, workflow_code, workflow_source, pe_ids,
                   desc_embedding, owners)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?)""",
                (
                    record.workflow_name,
                    record.entry_point,
                    record.description,
                    record.workflow_code,
                    record.workflow_source,
                    json.dumps(record.pe_ids),
                    _blob(record.desc_embedding),
                    json.dumps(sorted(record.owners)),
                ),
            )
            record.workflow_id = int(cursor.lastrowid)
            return record

    def update_workflow(self, record: WorkflowRecord) -> None:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                """UPDATE workflows SET workflow_name=?, entry_point=?,
                   description=?, workflow_code=?, workflow_source=?,
                   pe_ids=?, desc_embedding=?, owners=? WHERE workflow_id=?""",
                (
                    record.workflow_name,
                    record.entry_point,
                    record.description,
                    record.workflow_code,
                    record.workflow_source,
                    json.dumps(record.pe_ids),
                    _blob(record.desc_embedding),
                    json.dumps(sorted(record.owners)),
                    record.workflow_id,
                ),
            )
            if cursor.rowcount == 0:
                raise NotFoundError(
                    f"workflow id {record.workflow_id} not found",
                    params={"workflowId": record.workflow_id},
                )

    def get_workflow(self, workflow_id: int) -> WorkflowRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM workflows WHERE workflow_id = ?", (workflow_id,)
            ).fetchone()
        return None if row is None else self._wf_from_row(row)

    def find_workflow_by_entry_point(self, entry_point: str) -> list[WorkflowRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workflows WHERE entry_point = ? ORDER BY workflow_id",
                (entry_point,),
            ).fetchall()
        return [self._wf_from_row(r) for r in rows]

    def all_workflows(self) -> list[WorkflowRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workflows ORDER BY workflow_id"
            ).fetchall()
        return [self._wf_from_row(r) for r in rows]

    def delete_workflow(self, workflow_id: int) -> None:
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM workflows WHERE workflow_id=?", (workflow_id,)
            )
            if cursor.rowcount == 0:
                raise NotFoundError(
                    f"workflow id {workflow_id} not found",
                    params={"workflowId": workflow_id},
                )
